"""MutationFeed/MutationLog behavior, engine churn edge cases, and the
``partition()`` integration (``solver="inc"``, ``mutations=``,
``resume_from`` composition)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import obs
from repro.api import SolveOptions, partition
from repro.core.equilibrium import equilibrium_report
from repro.core.incremental import IncrementalRMGP
from repro.errors import ConfigurationError, DataError
from repro.streaming import (
    AddEdge,
    AddVertex,
    MutationFeed,
    RemoveVertex,
    UpdateCostRow,
    apply_mutations,
    random_mutation_stream,
)

from tests.streaming.conftest import as_batches, er_instance


def fresh_engine(seed: int = 0, **kwargs) -> IncrementalRMGP:
    # apply_mutations([]) clones deeply enough that the engine's in-place
    # graph churn cannot leak back into the shared fixture instance.
    return IncrementalRMGP(
        apply_mutations(er_instance(seed=seed), []), seed=seed, **kwargs
    )


class TestMutationFeed:
    def test_movement_accounting_matches_label_diff(self):
        engine = fresh_engine()
        feed = MutationFeed(engine)
        stream = random_mutation_stream(engine.instance, 16, seed=3)
        for batch in as_batches(stream, 8):
            _, stats = feed.apply(batch)
            labels = engine.instance.assignment_to_labels(engine.assignment)
            moved = sum(
                1 for node, label in labels.items()
                if repr(stats.baseline[node]) != repr(label)
            )
            assert stats.vertices_moved == moved

    def test_cumulative_totals_are_monotonic(self):
        engine = fresh_engine(seed=1)
        feed = MutationFeed(engine)
        stream = random_mutation_stream(engine.instance, 24, seed=1)
        previous = (0, 0.0)
        for batch in as_batches(stream, 6):
            _, stats = feed.apply(batch)
            assert stats.moved_total >= previous[0]
            assert stats.migration_cost_total >= previous[1] - 1e-12
            assert stats.moved_total >= stats.vertices_moved
            previous = (stats.moved_total, stats.migration_cost_total)

    def test_log_replays_the_streams_net_effect(self):
        base = er_instance(seed=2)
        engine = IncrementalRMGP(apply_mutations(base, []), seed=2)
        feed = MutationFeed(engine)
        stream = random_mutation_stream(base, 18, seed=2)
        for batch in as_batches(stream, 6):
            feed.apply(batch)
        replayed = feed.log.replay(base)
        assert list(replayed.node_ids) == list(engine.instance.node_ids)
        np.testing.assert_array_equal(
            replayed.indptr, engine.instance.indptr
        )
        np.testing.assert_array_equal(
            replayed.indices, engine.instance.indices
        )
        assert feed.log.num_mutations == 18
        assert len(feed.log) == 3
        assert feed.log.replay(base, upto=0).n == base.n

    def test_empty_batch_is_a_noop_resolve(self):
        engine = fresh_engine(seed=3)
        feed = MutationFeed(engine)
        result, stats = feed.apply([])
        assert stats.size == 0
        assert stats.vertices_moved == 0
        assert result.converged

    def test_churn_metrics_are_recorded(self):
        engine = fresh_engine(seed=4)
        with obs.recording() as record:
            feed = MutationFeed(engine)
            stream = random_mutation_stream(engine.instance, 8, seed=4)
            feed.apply(stream)
        assert record.metrics.counter("churn.mutations").value == 8
        assert record.metrics.counter("churn.batches").value == 1


class TestEngineChurnEdgeCases:
    def test_remove_sole_member_of_part(self):
        """Removing the only vertex of a class leaves that part empty —
        a valid partition; the equilibrium certificate must still hold."""
        engine = fresh_engine(seed=5)
        classes = np.asarray(engine.assignment)
        # Force a sole-member part: move player 0 to the least popular
        # class via a cost update making it dominant, then delete it.
        counts = np.bincount(classes, minlength=engine.instance.k)
        rare = int(counts.argmin())
        node = engine.instance.node_ids[0]
        row = [1.0] * engine.instance.k
        row[rare] = 0.001
        engine.update_player_costs(node, row)
        engine.resolve()
        lonely = [
            n for n, c in zip(engine.instance.node_ids, engine.assignment)
            if int(np.bincount(np.asarray(engine.assignment),
                               minlength=engine.instance.k)[c]) == 1
        ]
        if not lonely:
            lonely = [node]
        engine.remove_vertex(lonely[0])
        engine.resolve()
        report = equilibrium_report(
            apply_mutations(engine.instance, []), engine.assignment,
            tolerance=1e-9,
        )
        assert report.is_equilibrium

    def test_remove_down_to_empty_and_repopulate(self):
        engine = fresh_engine(seed=6)
        for node in list(engine.instance.node_ids):
            engine.remove_vertex(node)
        assert engine.instance.n == 0
        result = engine.resolve()
        assert result.converged
        engine.add_vertex("phoenix", [0.5, 0.1, 0.9, 0.7])
        engine.add_vertex("ashes", [0.2, 0.8, 0.3, 0.6],
                          edges=[("phoenix", 2.0)])
        engine.resolve()
        assert engine.instance.n == 2
        report = equilibrium_report(
            apply_mutations(engine.instance, []), engine.assignment,
            tolerance=1e-9,
        )
        assert report.is_equilibrium

    def test_add_edge_unknown_endpoint(self):
        engine = fresh_engine()
        with pytest.raises(ConfigurationError):
            engine.add_edge("ghost", engine.instance.node_ids[0], 1.0)

    def test_batch_defers_csr_rebuild(self):
        engine = fresh_engine(seed=7)
        nodes = list(engine.instance.node_ids)
        slots_before = int(engine.instance.indptr[-1])
        with engine.batch():
            engine.add_vertex("late", [0.3] * 4, edges=[(nodes[0], 1.0)])
            # Inside the batch the CSR is stale by design...
            assert engine._adjacency_stale
        # ...and flushed exactly once at batch exit.
        assert not engine._adjacency_stale
        assert int(engine.instance.indptr[-1]) == slots_before + 2

    def test_mutations_after_checkpoint_fail_fingerprint(self):
        """The documented ordering: restore first, replay mutations
        against the *restored* engine.  Mutating the instance before the
        restore changes its topology fingerprint and must hard-fail."""
        base = apply_mutations(er_instance(seed=8), [])
        engine = IncrementalRMGP(base, seed=8)
        checkpoint = engine.to_checkpoint()
        nodes = list(base.node_ids)
        mutated = apply_mutations(base, [AddVertex("intruder", (0.1,) * 4,
                                                   ((nodes[0], 1.0),))])
        with pytest.raises(DataError):
            IncrementalRMGP.from_checkpoint(mutated, checkpoint)

    def test_mutations_replayed_after_restore(self):
        base = apply_mutations(er_instance(seed=8), [])
        engine = IncrementalRMGP(base, seed=8)
        checkpoint = engine.to_checkpoint()
        restored = IncrementalRMGP.from_checkpoint(
            apply_mutations(base, []), checkpoint
        )
        stream = random_mutation_stream(base, 6, seed=8)
        with restored.batch():
            for mutation in stream:
                mutation.apply_to(restored)
        restored.resolve()
        report = equilibrium_report(
            apply_mutations(restored.instance, []), restored.assignment,
            tolerance=1e-9,
        )
        assert report.is_equilibrium

    def test_movement_penalty_reduces_churn(self):
        base = er_instance(seed=9)
        stream = random_mutation_stream(base, 16, seed=9)

        def moved_with(penalty):
            engine = IncrementalRMGP(apply_mutations(base, []), seed=9)
            feed = MutationFeed(engine)
            total = 0
            for batch in as_batches(stream, 8):
                _, stats = feed.apply(batch, movement_penalty=penalty)
                total += stats.vertices_moved
            return total

        assert moved_with(50.0) <= moved_with(None)


class TestPartitionIntegration:
    def test_inc_solver_reaches_an_equilibrium(self):
        inst = er_instance(seed=10)
        result = partition(apply_mutations(inst, []), solver="inc", seed=1)
        report = equilibrium_report(inst, result.assignment, tolerance=1e-9)
        assert report.is_equilibrium
        assert result.converged

    def test_mutations_kwarg_incremental_vs_pure(self):
        inst = er_instance(seed=11)
        nodes = list(inst.node_ids)
        mutations = [
            AddEdge(nodes[0], nodes[7], 2.0),
            UpdateCostRow(nodes[3], (0.9, 0.1, 0.5, 0.5)),
            RemoveVertex(nodes[5]),
        ]
        # "gt" pre-applies purely; "inc" replays live. Both must land on
        # an equilibrium of the same mutated instance.
        mutated = apply_mutations(inst, mutations)
        for solver in ("gt", "inc"):
            result = partition(
                apply_mutations(inst, []), solver=solver, seed=0,
                mutations=mutations,
            )
            report = equilibrium_report(
                mutated,
                mutated.labels_to_assignment(result.labels),
                tolerance=1e-9,
            )
            assert report.is_equilibrium, solver

    def test_mutations_compose_with_checkpointing(self, tmp_path):
        inst = er_instance(seed=12)
        nodes = list(inst.node_ids)
        path = os.fspath(tmp_path / "churn.ckpt")
        result = partition(
            apply_mutations(inst, []), solver="inc", seed=2,
            mutations=[AddEdge(nodes[0], nodes[9], 1.5)],
            deadline_seconds=30.0, checkpoint_every=1, checkpoint_path=path,
        )
        assert result.converged

    def test_resume_from_then_mutations(self):
        inst = apply_mutations(er_instance(seed=13), [])
        engine = IncrementalRMGP(apply_mutations(inst, []), seed=3)
        checkpoint = engine.to_checkpoint()
        nodes = list(inst.node_ids)
        result = partition(
            apply_mutations(inst, []), solver="inc",
            options=SolveOptions(resume_from=checkpoint),
            mutations=[AddEdge(nodes[1], nodes[4], 3.0)],
        )
        mutated = apply_mutations(inst, [AddEdge(nodes[1], nodes[4], 3.0)])
        report = equilibrium_report(
            mutated,
            mutated.labels_to_assignment(result.labels),
            tolerance=1e-9,
        )
        assert report.is_equilibrium

    def test_unknown_mutation_kwarg_still_rejected(self):
        inst = er_instance(seed=14)
        with pytest.raises(ConfigurationError):
            partition(inst, solver="gt", mutation=[])  # typo'd name
