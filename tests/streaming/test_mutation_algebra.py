"""The mutation algebra: pure application, inverses, and validation.

The pinned invariant: ``apply -> invert`` round-trips an
``RMGPInstance`` *byte-identically* at the CSR level — possible because
``_build_adjacency`` keeps a canonical per-row neighbor order, so equal
(node order, edge set, cost rows, alpha) implies equal flat arrays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RMGPInstance
from repro.errors import ConfigurationError, GraphError
from repro.streaming import (
    AddEdge,
    AddVertex,
    AlphaDrift,
    RemoveEdge,
    RemoveVertex,
    UpdateCostRow,
    apply_mutations,
    invert_stream,
    random_mutation_stream,
)

from tests.streaming.conftest import er_instance


def csr_snapshot(instance: RMGPInstance) -> dict:
    """Copies of every derived flat array (the published views alias
    reusable scratch buffers, so later rebuilds overwrite them)."""
    return {
        "node_ids": list(instance.node_ids),
        "indptr": instance.indptr.copy(),
        "indices": instance.indices.copy(),
        "weights": instance.weights.copy(),
        "half_weights": instance.half_weights.copy(),
        "half_strength": instance.half_strength.copy(),
        "max_social_cost": instance.max_social_cost.copy(),
        "cost": instance.cost.dense().copy(),
        "alpha": instance.alpha,
    }


def assert_identical(a: RMGPInstance, b: RMGPInstance) -> None:
    left, right = csr_snapshot(a), csr_snapshot(b)
    assert left["node_ids"] == right["node_ids"]
    assert left["alpha"] == right["alpha"]
    for name in ("indptr", "indices"):
        np.testing.assert_array_equal(left[name], right[name], err_msg=name)
    for name in ("weights", "half_weights", "half_strength",
                 "max_social_cost", "cost"):
        # Byte-identical, not merely close.
        np.testing.assert_array_equal(left[name], right[name], err_msg=name)


def roundtrip(instance: RMGPInstance, mutation) -> None:
    inverse = mutation.invert(instance)
    mutated = apply_mutations(instance, [mutation])
    restored = apply_mutations(mutated, [inverse])
    assert_identical(restored, instance)


class TestSingleMutationRoundTrips:
    def test_add_edge_new(self):
        inst = er_instance(seed=1)
        u, v = self._non_edge(inst)
        roundtrip(inst, AddEdge(u, v, 1.75))

    def test_add_edge_reweight(self):
        inst = er_instance(seed=1)
        u, v, _ = next(iter(inst.graph.edges()))
        roundtrip(inst, AddEdge(u, v, 9.5))

    def test_remove_edge(self):
        inst = er_instance(seed=2)
        u, v, _ = next(iter(inst.graph.edges()))
        roundtrip(inst, RemoveEdge(u, v))

    def test_add_vertex(self):
        inst = er_instance(seed=3)
        friends = list(inst.node_ids)[:3]
        mutation = AddVertex(
            "newcomer",
            (0.1, 0.2, 0.3, 0.4),
            tuple((f, 1.0 + i) for i, f in enumerate(friends)),
        )
        roundtrip(inst, mutation)

    def test_remove_vertex_restores_node_order(self):
        inst = er_instance(seed=4)
        # An interior vertex: its inverse must re-insert at the original
        # position, not append.
        victim = list(inst.node_ids)[len(inst.node_ids) // 2]
        roundtrip(inst, RemoveVertex(victim))

    def test_update_cost_row(self):
        inst = er_instance(seed=5)
        node = list(inst.node_ids)[0]
        roundtrip(inst, UpdateCostRow(node, (0.9, 0.8, 0.7, 0.6)))

    def test_alpha_drift(self):
        inst = er_instance(seed=6)
        roundtrip(inst, AlphaDrift(0.25))

    @staticmethod
    def _non_edge(instance: RMGPInstance):
        nodes = list(instance.node_ids)
        for u in nodes:
            for v in nodes:
                if u != v and not instance.graph.has_edge(u, v):
                    return u, v
        raise AssertionError("complete graph in test fixture")


class TestStreamRoundTrips:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_stream_inverts_byte_identically(self, seed):
        inst = er_instance(seed=seed)
        stream = random_mutation_stream(inst, 25, seed=seed)
        inverses, mutated = invert_stream(inst, stream)
        restored = apply_mutations(mutated, inverses)
        assert_identical(restored, inst)

    def test_apply_mutations_never_touches_input(self):
        inst = er_instance(seed=7)
        before = csr_snapshot(inst)
        stream = random_mutation_stream(inst, 20, seed=7)
        apply_mutations(inst, stream)
        after = csr_snapshot(inst)
        assert before["node_ids"] == after["node_ids"]
        for name in ("indptr", "indices", "weights", "half_weights", "cost"):
            np.testing.assert_array_equal(before[name], after[name])

    def test_replay_prefix_equals_incremental_prefix(self):
        inst = er_instance(seed=8)
        stream = random_mutation_stream(inst, 12, seed=8)
        step_by_step = inst
        for i, mutation in enumerate(stream):
            step_by_step = apply_mutations(step_by_step, [mutation])
            all_at_once = apply_mutations(inst, stream[: i + 1])
            assert_identical(step_by_step, all_at_once)


class TestValidation:
    def test_add_edge_unknown_endpoint(self):
        inst = er_instance()
        with pytest.raises(ConfigurationError):
            apply_mutations(inst, [AddEdge("ghost", list(inst.node_ids)[0])])

    def test_remove_missing_edge(self):
        inst = er_instance()
        u, v = TestSingleMutationRoundTrips._non_edge(inst)
        with pytest.raises(GraphError):
            apply_mutations(inst, [RemoveEdge(u, v)])

    def test_add_duplicate_vertex(self):
        inst = er_instance()
        node = list(inst.node_ids)[0]
        with pytest.raises(ConfigurationError):
            apply_mutations(inst, [AddVertex(node, (0.1,) * 4)])

    def test_add_vertex_bad_row_length(self):
        inst = er_instance()
        with pytest.raises(ConfigurationError):
            apply_mutations(inst, [AddVertex("x", (0.1, 0.2))])

    def test_add_vertex_negative_cost(self):
        inst = er_instance()
        with pytest.raises(ConfigurationError):
            apply_mutations(inst, [AddVertex("x", (-0.1, 0.2, 0.3, 0.4))])

    def test_add_vertex_self_loop(self):
        inst = er_instance()
        with pytest.raises(GraphError):
            apply_mutations(
                inst, [AddVertex("x", (0.1,) * 4, (("x", 1.0),))]
            )

    def test_add_vertex_index_out_of_range(self):
        inst = er_instance()
        with pytest.raises(ConfigurationError):
            apply_mutations(
                inst, [AddVertex("x", (0.1,) * 4, index=inst.n + 1)]
            )

    def test_remove_unknown_vertex(self):
        inst = er_instance()
        with pytest.raises(ConfigurationError):
            apply_mutations(inst, [RemoveVertex("ghost")])

    def test_update_costs_unknown_node(self):
        inst = er_instance()
        with pytest.raises(ConfigurationError):
            apply_mutations(inst, [UpdateCostRow("ghost", (0.1,) * 4)])

    def test_alpha_out_of_range(self):
        inst = er_instance()
        with pytest.raises(ConfigurationError):
            apply_mutations(inst, [AlphaDrift(1.0)])

    def test_invert_remove_vertex_needs_live_node(self):
        inst = er_instance()
        with pytest.raises(ConfigurationError):
            RemoveVertex("ghost").invert(inst)


class TestRandomStreams:
    def test_stream_is_reproducible(self):
        inst = er_instance(seed=9)
        assert random_mutation_stream(inst, 30, seed=4) == (
            random_mutation_stream(inst, 30, seed=4)
        )

    def test_stream_applies_cleanly(self):
        inst = er_instance(seed=9)
        for seed in range(6):
            stream = random_mutation_stream(inst, 40, seed=seed)
            assert len(stream) == 40
            apply_mutations(inst, stream)

    def test_weights_reshape_the_mix(self):
        inst = er_instance(seed=10)
        stream = random_mutation_stream(
            inst, 20, seed=0, weights={"update_costs": 1.0}
        )
        assert all(isinstance(m, UpdateCostRow) for m in stream)
