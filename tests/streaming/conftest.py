"""Instance families and stream helpers for the streaming tests.

The churn-equivalence suite runs over three structurally different
graph families (sparse random, preferential-attachment, community) so
the differential harness is exercised on dissimilar dirty-frontier
shapes.  Cost rows stay strictly positive (``COST_FLOOR``) so the
price-of-anarchy bound — the theory limit for randomized streams — is
finite.
"""

from __future__ import annotations

import random
from typing import List

import numpy as np

from repro.core import RMGPInstance
from repro.core.costs import MatrixCost
from repro.graph import barabasi_albert, erdos_renyi, planted_partition
from repro.streaming.mutations import COST_FLOOR


def _with_costs(graph, num_classes: int, alpha: float, seed: int) -> RMGPInstance:
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(COST_FLOOR, 1.0, (len(graph.nodes()), num_classes))
    return RMGPInstance(
        graph, list(range(num_classes)), MatrixCost(matrix), alpha=alpha
    )


def er_instance(seed: int = 0, n: int = 20, alpha: float = 0.5) -> RMGPInstance:
    graph = erdos_renyi(n, 0.2, random.Random(seed))
    return _with_costs(graph, 4, alpha, seed)


def ba_instance(seed: int = 0, n: int = 20, alpha: float = 0.5) -> RMGPInstance:
    graph = barabasi_albert(n, 3, random.Random(seed))
    return _with_costs(graph, 4, alpha, seed)


def community_instance(seed: int = 0, alpha: float = 0.5) -> RMGPInstance:
    graph, _ = planted_partition([5, 5, 5, 5], 0.5, 0.05, random.Random(seed))
    return _with_costs(graph, 4, alpha, seed)


#: name -> builder; the equivalence suite parametrizes over this.
INSTANCE_FAMILIES = {
    "erdos_renyi": er_instance,
    "barabasi_albert": ba_instance,
    "planted_partition": lambda seed=0: community_instance(seed),
}


def as_batches(stream: List, batch_size: int) -> List[List]:
    return [
        stream[i : i + batch_size] for i in range(0, len(stream), batch_size)
    ]
