"""The differential harness: incremental equilibria under churn.

Two layers of pinning (see ``repro/streaming/harness.py``):

* **Curated deterministic streams** — one per instance family, chosen
  with ample margin, checked against *every* registry solver with the
  tight :data:`DIFFERENTIAL_COST_RATIO` pin.
* **Property-based randomized streams** — hypothesis draws the family,
  seeds, stream length and batch size (all shrinkable), and the cost
  check uses the per-instance price-of-anarchy bound (``"poa"``), the
  sound limit for adversarial streams.

Every batch additionally requires the incremental assignment to be a
pure Nash equilibrium of the independently re-built mutated instance,
and the engine's movement accounting to match an independent
label-space diff — those two checks are unconditional.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming import (
    DIFFERENTIAL_COST_RATIO,
    differential_check,
    random_mutation_stream,
)

from tests.streaming.conftest import INSTANCE_FAMILIES, as_batches

#: every registry solver (short names), with the kwargs the constrained
#: variants need to accept arbitrary churn (capacities sized for growth,
#: minimum participation trivially satisfiable).
SOLVER_CASES = {
    "b": {},
    "se": {},
    "is": {},
    "gt": {},
    "all": {},
    "vec": {},
    "mg": {},
    "sync": {"damping": 0.7},
    "cap": {"capacities": [40] * 4},
    "minpart": {"min_participants": 1},
    "inc": {},
}

#: (family, instance seed, stream seed) triples with comfortable margin
#: under the pinned ratio for every solver above — chosen by sweeping
#: seeds 0-5 x 0-5 per family; worst observed ratio on these is < 1.35.
CURATED_STREAMS = [
    ("erdos_renyi", 2, 0),
    ("barabasi_albert", 4, 0),
    ("planted_partition", 2, 0),
]


def run_curated(family: str, instance_seed: int, stream_seed: int,
                solver: str, solver_kwargs: dict):
    instance = INSTANCE_FAMILIES[family](seed=instance_seed)
    stream = random_mutation_stream(instance, 24, seed=stream_seed)
    report = differential_check(
        instance,
        as_batches(stream, 8),
        solver=solver,
        seed=0,
        cost_ratio=DIFFERENTIAL_COST_RATIO,
        solver_kwargs=solver_kwargs,
    )
    assert report.ok, str(report)
    return report


class TestCuratedStreams:
    @pytest.mark.parametrize("solver", sorted(SOLVER_CASES))
    def test_every_registry_solver(self, solver):
        """The headline gate: incremental vs each solver, pinned ratio."""
        family, iseed, sseed = CURATED_STREAMS[0]
        run_curated(family, iseed, sseed, solver, SOLVER_CASES[solver])

    @pytest.mark.parametrize("family,iseed,sseed", CURATED_STREAMS)
    def test_every_instance_family(self, family, iseed, sseed):
        report = run_curated(family, iseed, sseed, "gt", {})
        assert all(check.is_equilibrium for check in report.checks)
        assert all(check.movement_consistent for check in report.checks)

    def test_report_carries_batch_numbers(self):
        family, iseed, sseed = CURATED_STREAMS[0]
        report = run_curated(family, iseed, sseed, "gt", {})
        assert len(report.checks) == 3
        assert [check.batch_index for check in report.checks] == [0, 1, 2]
        assert all(check.size == 8 for check in report.checks)
        assert "differential ok" in str(report)


class TestRandomizedStreams:
    @settings(max_examples=25, deadline=None)
    @given(
        family=st.sampled_from(sorted(INSTANCE_FAMILIES)),
        instance_seed=st.integers(0, 20),
        stream_seed=st.integers(0, 50),
        length=st.integers(4, 24),
        batch_size=st.sampled_from([4, 6, 8]),
    )
    def test_incremental_matches_scratch(
        self, family, instance_seed, stream_seed, length, batch_size
    ):
        instance = INSTANCE_FAMILIES[family](seed=instance_seed)
        stream = random_mutation_stream(instance, length, seed=stream_seed)
        report = differential_check(
            instance,
            as_batches(stream, batch_size),
            solver="gt",
            seed=instance_seed,
        )
        assert report.ok, str(report)

    @settings(max_examples=10, deadline=None)
    @given(
        solver=st.sampled_from(sorted(SOLVER_CASES)),
        stream_seed=st.integers(0, 50),
    )
    def test_random_solver_random_stream(self, solver, stream_seed):
        instance = INSTANCE_FAMILIES["erdos_renyi"](seed=stream_seed % 7)
        stream = random_mutation_stream(instance, 12, seed=stream_seed)
        report = differential_check(
            instance,
            as_batches(stream, 6),
            solver=solver,
            seed=0,
            solver_kwargs=SOLVER_CASES[solver],
        )
        assert report.ok, str(report)


class TestMovementPenalty:
    def test_penalty_skips_validity_but_keeps_cost_check(self):
        family, iseed, sseed = CURATED_STREAMS[0]
        instance = INSTANCE_FAMILIES[family](seed=iseed)
        stream = random_mutation_stream(instance, 24, seed=sseed)
        report = differential_check(
            instance,
            as_batches(stream, 8),
            solver="gt",
            cost_ratio="poa",
            movement_penalty=0.05,
        )
        assert report.ok, str(report)
        # Movement accounting must stay consistent even under penalty.
        assert all(check.movement_consistent for check in report.checks)

    def test_penalty_never_increases_movement(self):
        family, iseed, sseed = CURATED_STREAMS[0]
        instance = INSTANCE_FAMILIES[family](seed=iseed)
        stream = random_mutation_stream(instance, 24, seed=sseed)
        free = differential_check(
            instance, as_batches(stream, 8), solver="gt", cost_ratio="poa"
        )
        taxed = differential_check(
            instance,
            as_batches(stream, 8),
            solver="gt",
            cost_ratio="poa",
            movement_penalty=10.0,
        )
        moved_free = sum(check.vertices_moved for check in free.checks)
        moved_taxed = sum(check.vertices_moved for check in taxed.checks)
        assert moved_taxed <= moved_free
