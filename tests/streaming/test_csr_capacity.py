"""Property tests for the CSR scratch-buffer capacity contract.

The streaming layer's "bounded reallocation" promise
(:meth:`RMGPInstance._csr_buffer`): flat CSR arrays live in named
scratch buffers that grow geometrically (1.5x + slack), never shrink,
and are reused in place, so a long run of same-scale rebuilds performs
zero allocations.  These tests drive the contract with
hypothesis-generated edge-churn batches — the same shape of load the
mutation streams apply — and additionally pin `update_edge_weight`
behaviour when the published views sit *exactly* at buffer capacity,
where an off-by-one in the growth test would silently alias stale
memory.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RMGPInstance

from tests.streaming.conftest import INSTANCE_FAMILIES

FAMILIES = sorted(INSTANCE_FAMILIES)

# One churn step: endpoints are indices into node_ids; ``kind`` toggles
# add vs remove; ``weight`` is used only by adds (and stays strictly
# positive, as the graph substrate requires).
_STEP = st.tuples(
    st.integers(min_value=0, max_value=19),
    st.integers(min_value=0, max_value=19),
    st.sampled_from(["add", "remove"]),
    st.floats(min_value=0.05, max_value=3.0, allow_nan=False,
              allow_infinity=False),
)


def _apply_steps(instance: RMGPInstance, steps) -> int:
    """Mutate the underlying graph; return how many steps took effect."""
    applied = 0
    for iu, iv, kind, weight in steps:
        u, v = instance.node_ids[iu], instance.node_ids[iv]
        if u == v:
            continue
        if kind == "add":
            instance.graph.add_edge(u, v, weight)
            applied += 1
        elif instance.graph.has_edge(u, v):
            instance.graph.remove_edge(u, v)
            applied += 1
    return applied


def _fresh_twin(instance: RMGPInstance) -> RMGPInstance:
    """A from-scratch instance over the same graph/cost/alpha.

    Edge churn leaves the node set (hence the cost alignment) intact, so
    the mutated instance's CSR arrays must match this twin's exactly —
    the canonical-slot-order guarantee of ``_build_adjacency``.
    """
    return RMGPInstance(
        instance.graph.copy(), instance.classes, instance.cost,
        alpha=instance.alpha,
    )


def _assert_csr_equals_fresh(instance: RMGPInstance) -> None:
    fresh = _fresh_twin(instance)
    assert instance.indptr.tobytes() == fresh.indptr.tobytes()
    assert instance.indices.tobytes() == fresh.indices.tobytes()
    assert instance.weights.tobytes() == fresh.weights.tobytes()
    assert instance.half_weights.tobytes() == fresh.half_weights.tobytes()
    assert instance.edge_owner.tobytes() == fresh.edge_owner.tobytes()


class TestCapacityGrowth:
    @settings(max_examples=25, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        seed=st.integers(min_value=0, max_value=7),
        batches=st.lists(
            st.lists(_STEP, min_size=1, max_size=12),
            min_size=1, max_size=6,
        ),
    )
    def test_capacity_is_monotone_and_covers_slots(
        self, family, seed, batches
    ):
        # Capacity never decreases across batched rebuilds, always covers
        # the published view, and every growth lands on the documented
        # geometric schedule max(size + size//2, 8).
        instance = INSTANCE_FAMILIES[family](seed=seed)
        capacity = instance._csr_scratch["indices"].size
        assert capacity >= instance.indices.size
        for batch in batches:
            _apply_steps(instance, batch)
            instance.rebuild_adjacency()
            size = instance.indices.size
            new_capacity = instance._csr_scratch["indices"].size
            assert new_capacity >= capacity, "scratch buffers never shrink"
            assert new_capacity >= size
            if new_capacity != capacity:
                assert new_capacity == max(size + (size >> 1), 8)
            capacity = new_capacity
        _assert_csr_equals_fresh(instance)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_steady_state_rebuilds_do_not_reallocate(self, family):
        # Same-scale rebuilds must reuse the very same buffer objects —
        # zero allocations in steady state, and the published views alias
        # the scratch storage rather than copies of it.
        instance = INSTANCE_FAMILIES[family]()
        before = {
            name: buf for name, buf in instance._csr_scratch.items()
        }
        for _ in range(5):
            instance.rebuild_adjacency()
            for name, buf in before.items():
                assert instance._csr_scratch[name] is buf
        assert instance.indices.base is before["indices"] or (
            instance.indices is before["indices"]
        )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=7),
        removals=st.lists(_STEP, min_size=1, max_size=20),
    )
    def test_shrinking_churn_keeps_capacity(self, seed, removals):
        # Removing edges shrinks the published views but never the
        # backing buffers — capacity is a high-water mark.
        instance = INSTANCE_FAMILIES["erdos_renyi"](seed=seed)
        capacity = instance._csr_scratch["indices"].size
        steps = [(iu, iv, "remove", w) for iu, iv, _, w in removals]
        _apply_steps(instance, steps)
        instance.rebuild_adjacency()
        assert instance._csr_scratch["indices"].size == capacity
        assert instance.indices.size <= capacity
        _assert_csr_equals_fresh(instance)


def _pin_buffers_at_capacity(instance: RMGPInstance) -> int:
    """Trim scratch buffers so ``view.size == buffer.size`` exactly.

    Reproduces the boundary a freshly attached (e.g. unpickled or
    shm-round-tripped) instance can sit at: zero slack.  The rebuild
    afterwards must accept the exact fit (``buffer.size < size`` is the
    growth test, not ``<=``) without reallocating.
    """
    size = instance.indices.size
    for name in ("indices", "weights", "half_weights"):
        instance._csr_scratch[name] = (
            instance._csr_scratch[name][:size].copy()
        )
    instance.rebuild_adjacency()
    assert instance._csr_scratch["indices"].size == size
    return size


class TestCapacityBoundary:
    @settings(max_examples=20, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        seed=st.integers(min_value=0, max_value=7),
        picks=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10 ** 6),
                st.floats(min_value=0.05, max_value=3.0, allow_nan=False,
                          allow_infinity=False),
            ),
            min_size=1, max_size=10,
        ),
    )
    def test_update_edge_weight_at_exact_capacity(self, family, seed, picks):
        # Weight patches touch existing slots only, so they must be safe
        # with zero slack — and leave the CSR state byte-identical to a
        # fresh build over the updated graph (no drift, no stale slots).
        instance = INSTANCE_FAMILIES[family](seed=seed)
        _pin_buffers_at_capacity(instance)
        edges = [(u, v) for u, v, _ in instance.graph.edges()]
        for pick, weight in picks:
            u, v = edges[pick % len(edges)]
            instance.update_edge_weight(u, v, weight)
        _assert_csr_equals_fresh(instance)
        fresh = _fresh_twin(instance)
        # half_strength is maintained incrementally; agreement with the
        # recomputed sum is the one place a (tiny) float tolerance is due.
        np.testing.assert_allclose(
            instance.max_social_cost, fresh.max_social_cost,
            rtol=0, atol=1e-9,
        )

    def test_growth_from_exact_capacity(self):
        # One added edge at zero slack must trigger a geometric grow and
        # still produce a canonical layout.
        instance = INSTANCE_FAMILIES["erdos_renyi"](seed=3)
        size = _pin_buffers_at_capacity(instance)
        nodes = instance.node_ids
        added = False
        for u in nodes:
            for v in nodes:
                if u != v and not instance.graph.has_edge(u, v):
                    instance.graph.add_edge(u, v, 1.25)
                    added = True
                    break
            if added:
                break
        assert added
        instance.rebuild_adjacency()
        new_size = instance.indices.size
        assert new_size == size + 2
        assert instance._csr_scratch["indices"].size == max(
            new_size + (new_size >> 1), 8
        )
        _assert_csr_equals_fresh(instance)


class TestChurnConsistency:
    @settings(max_examples=20, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        seed=st.integers(min_value=0, max_value=7),
        batches=st.lists(
            st.lists(_STEP, min_size=1, max_size=10),
            min_size=1, max_size=5,
        ),
        patches=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10 ** 6),
                st.floats(min_value=0.05, max_value=3.0, allow_nan=False,
                          allow_infinity=False),
            ),
            max_size=6,
        ),
    )
    def test_batched_churn_with_weight_patches_matches_fresh(
        self, family, seed, batches, patches
    ):
        # The concurrent-batch shape of the streaming engine: structural
        # edits land per batch followed by one rebuild, with O(deg)
        # weight patches interleaved between batches.  At every
        # settlement point the CSR arrays must equal a from-scratch
        # build — layout is a pure function of node order + edge set.
        instance = INSTANCE_FAMILIES[family](seed=seed)
        patches = list(patches)
        for batch in batches:
            _apply_steps(instance, batch)
            instance.rebuild_adjacency()
            _assert_csr_equals_fresh(instance)
            if patches and instance.graph.num_edges:
                pick, weight = patches.pop()
                edges = [(u, v) for u, v, _ in instance.graph.edges()]
                u, v = edges[pick % len(edges)]
                instance.update_edge_weight(u, v, weight)
                _assert_csr_equals_fresh(instance)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=7),
        steps=st.lists(_STEP, min_size=1, max_size=25),
    )
    def test_mutation_and_inverse_round_trip_bytes(self, seed, steps):
        # Applying a churn sequence and then undoing it restores the flat
        # arrays byte-for-byte — the property the incremental engine's
        # rollback path depends on.
        instance = INSTANCE_FAMILIES["planted_partition"](seed=seed)
        instance.rebuild_adjacency()
        snapshot = {
            "indptr": instance.indptr.tobytes(),
            "indices": instance.indices.tobytes(),
            "weights": instance.weights.tobytes(),
            "half_weights": instance.half_weights.tobytes(),
        }
        undo = []
        for iu, iv, kind, weight in steps:
            u, v = instance.node_ids[iu], instance.node_ids[iv]
            if u == v:
                continue
            if kind == "add":
                if instance.graph.has_edge(u, v):
                    undo.append(("add", u, v, instance.graph.weight(u, v)))
                else:
                    undo.append(("remove", u, v, None))
                instance.graph.add_edge(u, v, weight)
            elif instance.graph.has_edge(u, v):
                undo.append(("add", u, v, instance.graph.weight(u, v)))
                instance.graph.remove_edge(u, v)
        for kind, u, v, weight in reversed(undo):
            if kind == "add":
                instance.graph.add_edge(u, v, weight)
            else:
                instance.graph.remove_edge(u, v)
        instance.rebuild_adjacency()
        assert instance.indptr.tobytes() == snapshot["indptr"]
        assert instance.indices.tobytes() == snapshot["indices"]
        assert instance.weights.tobytes() == snapshot["weights"]
        assert instance.half_weights.tobytes() == snapshot["half_weights"]
