"""Admission control: bounded queue, shedding, priorities, health.

The unit half drives :class:`AdmissionQueue` directly with a manual
clock (deterministic shedding); the end-to-end half overloads a real
embedded server and pins the hard bound: the job table never grows past
``max_jobs + max_queue + pool_size`` no matter how much work arrives —
the regression test for the unbounded ``ThreadPoolExecutor`` queue the
previous design had.
"""

import threading
import time

import pytest

from repro.serve import EmbeddedServer, ServeConfig
from repro.serve.client import ServerError
from repro.serve.errors import validate_error
from repro.serve.jobs import AdmissionQueue, AdmissionRejected, Job
from repro.serve.wire import SolveRequest, InstanceSpec


def _request(priority="interactive", **options):
    return SolveRequest(
        instance=InstanceSpec(dataset="paper"),
        solver="gt",
        options=dict(options),
        priority=priority,
    )


def _job(index, priority="interactive", **options):
    return Job(f"job-{index}", _request(priority, **options))


class ManualClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestAdmissionQueue:
    def test_offer_past_bound_rejects(self):
        queue = AdmissionQueue(max_queue=2, policy="reject")
        queue.offer(_job(0), None, 1.0)
        queue.offer(_job(1), None, 1.0)
        with pytest.raises(AdmissionRejected) as info:
            queue.offer(_job(2), None, 2.5)
        assert info.value.retry_after_seconds == 2.5
        assert queue.depth() == 2
        assert queue.max_depth_seen == 2

    def test_take_returns_fifo_within_class(self):
        queue = AdmissionQueue(max_queue=8)
        jobs = [_job(i) for i in range(3)]
        for job in jobs:
            queue.offer(job, None, 1.0)
        taken = [queue.take(0.1)[0] for _ in range(3)]
        assert [j.id for j in taken] == [j.id for j in jobs]

    def test_weighted_dequeue_interleaves_classes(self):
        queue = AdmissionQueue(max_queue=32, interactive_weight=2)
        for i in range(6):
            queue.offer(_job(i, priority="interactive"), None, 1.0)
        for i in range(6, 9):
            queue.offer(_job(i, priority="batch"), None, 1.0)
        order = []
        while True:
            job, _ = queue.take(0.05)
            if job is None:
                break
            order.append(job.request.priority)
        # 2 interactive per batch while both classes wait; batch still
        # progresses (no starvation in either direction).
        assert order[:6] == [
            "interactive", "interactive", "batch",
            "interactive", "interactive", "batch",
        ]
        assert order.count("batch") == 3

    def test_batch_alone_is_served_immediately(self):
        queue = AdmissionQueue(max_queue=8, interactive_weight=4)
        queue.offer(_job(0, priority="batch"), None, 1.0)
        job, _ = queue.take(0.1)
        assert job is not None and job.request.priority == "batch"

    def test_shed_expired_frees_room_at_offer(self):
        clock = ManualClock()
        queue = AdmissionQueue(max_queue=2, policy="shed-expired", clock=clock)
        queue.offer(_job(0), 1.0, 1.0)   # expires at t=1
        queue.offer(_job(1), 10.0, 1.0)  # expires at t=10
        clock.now = 5.0
        shed = queue.offer(_job(2), 10.0, 1.0)
        assert [j.id for j in shed] == ["job-0"]
        assert queue.depth() == 2
        assert queue.shed_total == 1

    def test_shed_expired_still_rejects_when_nothing_expired(self):
        clock = ManualClock()
        queue = AdmissionQueue(max_queue=2, policy="shed-expired", clock=clock)
        queue.offer(_job(0), 100.0, 1.0)
        queue.offer(_job(1), 100.0, 1.0)
        with pytest.raises(AdmissionRejected):
            queue.offer(_job(2), 100.0, 1.0)

    def test_expired_entries_shed_at_dequeue(self):
        clock = ManualClock()
        queue = AdmissionQueue(max_queue=8, policy="shed-expired", clock=clock)
        queue.offer(_job(0), 1.0, 1.0)
        queue.offer(_job(1), None, 1.0)  # no deadline: never sheds
        clock.now = 2.0
        job, shed = queue.take(0.1)
        assert [j.id for j in shed] == ["job-0"]
        assert job is not None and job.id == "job-1"

    def test_reject_policy_never_sheds(self):
        clock = ManualClock()
        queue = AdmissionQueue(max_queue=8, policy="reject", clock=clock)
        queue.offer(_job(0), 1.0, 1.0)
        clock.now = 100.0
        job, shed = queue.take(0.1)
        assert shed == []
        assert job is not None and job.id == "job-0"

    def test_close_wakes_blocked_take(self):
        queue = AdmissionQueue(max_queue=2)
        results = []

        def taker():
            results.append(queue.take(10.0))

        thread = threading.Thread(target=taker)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results == [(None, [])]


_SEEDS = iter(range(10_000))


def _slow_solve(deadline=None, priority="interactive", wait=False):
    """A request that occupies a worker for a meaningful slice of time.

    The solves themselves are milliseconds, but a *cold* instance build
    runs inside the worker (`store.get` on a miss) and takes hundreds of
    milliseconds at this size — a unique seed per request makes every
    job a guaranteed cache miss, which is the reliable way to keep the
    pool busy while a storm lands.
    """
    body = {
        "instance": {
            "dataset": "gowalla",
            "users": 2000,
            "events": 32,
            "seed": next(_SEEDS),
        },
        "solver": "gt",
        "wait": wait,
        "priority": priority,
        "options": {},
    }
    if deadline is not None:
        body["options"]["deadline_seconds"] = deadline
    return body


class TestOverloadEndToEnd:
    def test_queue_bound_holds_and_excess_gets_429(self):
        config = ServeConfig(
            port=0, pool_size=1, max_instances=2, max_jobs=4, max_queue=3
        )
        harness = EmbeddedServer(config)
        with harness as client:
            tickets, rejections = [], []
            # Hammer well past pool + queue capacity.
            for _ in range(20):
                try:
                    tickets.append(client.solve(_slow_solve()))
                except ServerError as exc:
                    rejections.append(exc)
            assert rejections, "expected 429s past the admission bound"
            for exc in rejections:
                assert exc.status == 429
                assert exc.payload is not None
                assert validate_error(exc.payload) == []
                assert exc.payload["error"]["code"] == "queue_full"
                assert exc.retryable is True
                assert exc.retry_after_seconds is not None
                assert exc.retry_after_seconds >= 1
            # The hard bound: the table never tracked more than
            # max_jobs + max_queue + pool_size jobs, and the queue
            # itself never exceeded max_queue.
            table = harness.server.jobs
            assert table.queue.max_depth_seen <= config.max_queue
            assert len(table.jobs()) <= (
                config.max_jobs + config.max_queue + config.pool_size
            )
            # Admitted jobs all finish.
            for ticket in tickets:
                final = client.wait_for(ticket["job"], timeout=60)
                assert final["state"] in ("done", "cancelled", "failed")

    def test_shed_expired_jobs_finish_as_shed(self):
        config = ServeConfig(
            port=0,
            pool_size=1,
            max_instances=2,
            max_jobs=16,
            max_queue=2,
            admission_policy="shed-expired",
        )
        with EmbeddedServer(config) as client:
            # Plug the single worker, then fill the queue with requests
            # whose deadline expires almost immediately.
            plug = client.solve(_slow_solve())
            victims = []
            for _ in range(2):
                victims.append(client.solve(_slow_solve(deadline=0.01)))
            time.sleep(0.1)  # let the victims' deadlines lapse
            # New offers find the queue full, shed the expired entries,
            # and are admitted in their place.
            replacement = client.solve(_slow_solve(deadline=30))
            states = {
                v["job"]: client.wait_for(v["job"], timeout=30)["state"]
                for v in victims
            }
            assert "shed" in states.values()
            for job_id, state in states.items():
                if state == "shed":
                    payload = client.job(job_id)
                    assert payload["stop_reason"] == "shed"
                    assert "shed" in payload["error"]
            client.cancel(plug["job"])
            client.cancel(replacement["job"])
            client.wait_for(plug["job"], timeout=30)
            client.wait_for(replacement["job"], timeout=30)

    def test_sync_wait_on_shed_job_is_503(self):
        config = ServeConfig(
            port=0,
            pool_size=1,
            max_instances=2,
            max_jobs=16,
            max_queue=1,
            admission_policy="shed-expired",
        )
        with EmbeddedServer(config) as client:
            plug = client.solve(_slow_solve())
            waiter_error = []

            def sync_wait():
                try:
                    client.solve(_slow_solve(deadline=0.01, wait=True))
                except ServerError as exc:
                    waiter_error.append(exc)

            thread = threading.Thread(target=sync_wait)
            thread.start()
            time.sleep(0.15)
            # Trigger the shed by offering into the full queue.
            try:
                client.solve(_slow_solve(deadline=30))
            except ServerError:
                pass
            thread.join(timeout=30)
            assert not thread.is_alive()
            client.cancel(plug["job"])
            if waiter_error:  # the waiter was shed, not solved
                exc = waiter_error[0]
                assert exc.status == 503
                assert exc.payload["error"]["code"] == "shed"
                assert validate_error(exc.payload) == []

    def test_health_reports_load_states(self):
        config = ServeConfig(
            port=0, pool_size=1, max_instances=2, max_jobs=8, max_queue=2
        )
        with EmbeddedServer(config) as client:
            assert client.health()["status"] == "ok"
            tickets = []
            for _ in range(8):
                try:
                    tickets.append(client.solve(_slow_solve()))
                except ServerError:
                    break
            health = client.health()
            assert health["status"] in ("degraded", "overloaded")
            assert health["queue"]["depth"] >= 1
            assert health["queue"]["max_queue"] == 2
            for ticket in tickets:
                client.cancel(ticket["job"])
            for ticket in tickets:
                client.wait_for(ticket["job"], timeout=30)

    def test_rejections_surface_in_metrics(self):
        config = ServeConfig(
            port=0, pool_size=1, max_instances=2, max_jobs=4, max_queue=1
        )
        with EmbeddedServer(config) as client:
            tickets, saw_reject = [], False
            for _ in range(12):
                try:
                    tickets.append(client.solve(_slow_solve()))
                except ServerError:
                    saw_reject = True
            assert saw_reject
            text = client.metrics()
            assert "serve_rejected" in text
            assert "serve_queue_depth" in text
            for ticket in tickets:
                client.cancel(ticket["job"])
            for ticket in tickets:
                client.wait_for(ticket["job"], timeout=30)
