"""End-to-end request tracing through the serve stack.

The stitched trace of one served job is ``serve.request`` →
``serve.queue_wait`` + ``job.solve`` → solver spans (and, on the shm
backend, adopted ``worker.compute`` RemoteSpans).  These tests drive
real HTTP through :class:`~repro.serve.client.EmbeddedServer` and
assert the W3C ``traceparent`` plumbing, the ``GET /v1/jobs/<id>/trace``
endpoint, and that ``repro analyze`` can tell queue-wait from compute.
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs.analysis import analyze_records, format_report
from repro.obs.context import format_traceparent, parse_traceparent
from repro.obs.schema import validate_records
from repro.serve import EmbeddedServer, ServeConfig
from repro.serve.client import ServerError

TRACE_ID = "0af7651916cd43dd8448eb211c80319c"


@pytest.fixture()
def client():
    with EmbeddedServer(
        ServeConfig(port=0, pool_size=2, max_instances=2, max_jobs=16)
    ) as connected:
        yield connected


class TestTraceparentIngestion:
    def test_header_trace_id_lands_in_job_envelope(self, client):
        payload = client.solve(
            {"instance": {"dataset": "paper"}, "solver": "gt"},
            trace_id=TRACE_ID,
        )
        assert payload["trace_id"] == TRACE_ID
        assert payload["state"] == "done"

    def test_body_traceparent_beats_header(self, client):
        body_trace = "c" * 32
        payload = client.solve(
            {
                "instance": {"dataset": "paper"},
                "solver": "gt",
                "traceparent": format_traceparent(body_trace),
            },
            trace_id=TRACE_ID,
        )
        assert payload["trace_id"] == body_trace

    def test_generated_when_absent(self, client):
        payload = client.solve(
            {"instance": {"dataset": "paper"}, "solver": "gt"}
        )
        # A fresh, well-formed 16-byte hex id is minted server-side.
        assert parse_traceparent(
            format_traceparent(payload["trace_id"])
        ) == payload["trace_id"]
        other = client.solve(
            {"instance": {"dataset": "paper"}, "solver": "gt"}
        )
        assert other["trace_id"] != payload["trace_id"]

    def test_malformed_header_is_ignored_not_an_error(self, client):
        import http.client
        import json

        conn = http.client.HTTPConnection(
            client.host, client.port, timeout=30
        )
        try:
            conn.request(
                "POST",
                "/v1/solve",
                body=json.dumps(
                    {"instance": {"dataset": "paper"}, "solver": "gt"}
                ).encode(),
                headers={
                    "Content-Type": "application/json",
                    "traceparent": "zz-not-a-trace",
                },
            )
            response = conn.getresponse()
            payload = json.loads(response.read().decode())
        finally:
            conn.close()
        # W3C restart semantics: a bad header starts a fresh trace.
        assert response.status == 200
        assert parse_traceparent("zz-not-a-trace") is None
        assert payload["trace_id"] != "zz-not-a-trace"

    def test_malformed_body_traceparent_is_400(self, client):
        with pytest.raises(ConfigurationError, match="traceparent"):
            client.solve(
                {
                    "instance": {"dataset": "paper"},
                    "solver": "gt",
                    "traceparent": "not-a-traceparent",
                }
            )

    def test_ticket_and_stream_carry_the_trace_id(self, client):
        ticket = client.solve(
            {"instance": {"dataset": "paper"}, "solver": "gt", "wait": False},
            trace_id=TRACE_ID,
        )
        assert ticket["trace_id"] == TRACE_ID
        client.wait_for(ticket["job"], timeout=60)

        records = list(
            client.solve_stream(
                {"instance": {"dataset": "paper"}, "solver": "gt"},
                trace_id=TRACE_ID,
            )
        )
        job_record = records[0]
        assert job_record["type"] == "job"
        assert job_record["trace_id"] == TRACE_ID
        # Every streamed progress record is stamped with the trace id.
        for record in records[1:]:
            assert record.get("trace_id") == TRACE_ID

    def test_error_envelope_carries_trace_id(self, client):
        with pytest.raises(ServerError) as info:
            client.solve(
                {
                    "instance": {"dataset": "paper"},
                    "solver": "cap",
                    "solver_kwargs": {"capacities": [1]},
                },
                trace_id=TRACE_ID,
            )
        assert info.value.status == 500
        assert info.value.payload["error"]["trace_id"] == TRACE_ID


class TestTraceEndpoint:
    def test_trace_is_schema_valid_and_stitched(self, client):
        payload = client.solve(
            {"instance": {"dataset": "paper"}, "solver": "gt"},
            trace_id=TRACE_ID,
        )
        records = client.job_trace(payload["job"])
        assert validate_records(records) == []
        assert records[0]["type"] == "meta"
        assert records[0]["trace_id"] == TRACE_ID
        spans = {r["id"]: r for r in records if r.get("type") == "span"}
        names = {r["name"] for r in spans.values()}
        assert {"serve.request", "serve.queue_wait", "job.solve"} <= names
        # queue_wait and job.solve are children of serve.request.
        roots = [r for r in spans.values() if r["parent"] is None]
        assert [r["name"] for r in roots] == ["serve.request"]
        root_id = roots[0]["id"]
        for name in ("serve.queue_wait", "job.solve"):
            span = next(r for r in spans.values() if r["name"] == name)
            assert span["parent"] == root_id
        # Solver spans hang beneath job.solve, not beside it.
        solve = next(r for r in spans.values() if r["name"] == "solve")
        assert (
            spans[solve["parent"]]["name"] == "job.solve"
        )

    def test_analyze_distinguishes_queue_wait_from_compute(self, client):
        payload = client.solve(
            {"instance": {"dataset": "paper"}, "solver": "gt"},
            trace_id=TRACE_ID,
        )
        report = analyze_records(client.job_trace(payload["job"]))
        assert len(report.requests) == 1
        request = report.requests[0]
        assert request.job == payload["job"]
        assert request.trace_id == TRACE_ID
        assert request.state == "done"
        assert request.queue_wait_seconds >= 0.0
        assert request.solve_seconds > 0.0
        assert request.bottleneck in ("queue-wait", "compute")
        text = format_report(report)
        assert "queue-wait" in text
        assert "compute" in text
        assert TRACE_ID in text

    def test_worker_remote_spans_adopt_under_served_request(self, client):
        payload = client.solve(
            {
                "instance": {"dataset": "gowalla", "users": 120, "events": 5},
                "solver": "gt",
                "options": {"backend": "shm", "workers": 2},
            }
        )
        records = client.job_trace(payload["job"])
        assert validate_records(records) == []
        spans = {r["id"]: r for r in records if r.get("type") == "span"}
        workers = [r for r in spans.values() if r["name"] == "worker.compute"]
        assert workers, "shm backend should emit worker.compute RemoteSpans"
        for worker in workers:
            chain = []
            cursor = worker
            while cursor is not None:
                chain.append(cursor["name"])
                cursor = spans.get(cursor.get("parent"))
            assert chain[-1] == "serve.request"
            assert "job.solve" in chain

    def test_unknown_job_404(self, client):
        with pytest.raises(ServerError) as info:
            client.job_trace("job-999")
        assert info.value.status == 404

    def test_unfinished_job_trace_pending_409(self, client):
        ticket = client.solve(
            {
                "instance": {"dataset": "gowalla", "users": 400, "events": 8},
                "solver": "b",
                "wait": False,
            }
        )
        try:
            client.job_trace(ticket["job"])
        except ServerError as exc:
            assert exc.status == 409
            assert exc.code == "trace_pending"
        else:
            # The solve may already have finished on a fast box; then
            # the trace must simply be valid.
            assert validate_records(client.job_trace(ticket["job"])) == []
        client.cancel(ticket["job"])
        client.wait_for(ticket["job"], timeout=60)


class TestTracingDisabled:
    def test_trace_off_still_solves_and_reports_404(self):
        with EmbeddedServer(
            ServeConfig(port=0, pool_size=1, trace_requests=False)
        ) as client:
            payload = client.solve(
                {"instance": {"dataset": "paper"}, "solver": "gt"},
                trace_id=TRACE_ID,
            )
            # Correlation id still assigned and propagated...
            assert payload["trace_id"] == TRACE_ID
            assert payload["state"] == "done"
            # ...but there is no recorded trace to serve.
            with pytest.raises(ServerError) as info:
                client.job_trace(payload["job"])
            assert info.value.status == 404
            assert info.value.code == "trace_unavailable"
            # /metrics still aggregates per-request solver telemetry.
            assert "repro_serve_requests_total" in client.metrics()
