"""Graceful drain: 503 for new work, degraded in-flight, checkpoints.

In-flight solves are made deterministic by monkeypatching
``repro.api.partition`` (the job table imports it per call) with a
spinner that loops until its :class:`RuntimeBudget` trips — exactly the
round-boundary contract real kernels follow — then delegates to the
*real* ``partition`` forced into the same stop reason, so every drained
job still carries a genuine, schema-valid best-so-far result (and a
genuine checkpoint when one is due).
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.api import SolveOptions, partition as real_partition
from repro.core.result_schema import validate_result
from repro.datasets import paper_example_instance
from repro.runtime.token import CancelToken
from repro.serve import EmbeddedServer, ServeConfig
from repro.serve.client import ServerError
from repro.serve.errors import validate_error


def _spinning_partition(instance, solver="gt", options=None, **solver_kwargs):
    """Run until the budget interrupts, then yield a real result.

    ``deadline`` interrupts re-run the real solver with a microscopic
    deadline (valid best-so-far, ``stop_reason="deadline"``, checkpoint
    written if a path is set); ``cancelled`` interrupts re-run it with a
    pre-cancelled token.
    """
    budget = options.budget
    budget.start()
    round_index = 1
    while True:
        interrupt = budget.check(round_index)
        if interrupt is not None:
            break
        round_index += 1
        time.sleep(0.005)
    fields = {
        name: getattr(options, name)
        for name in options.__dataclass_fields__
    }
    fields["budget"] = None
    fields["cancel_token"] = None
    fields["round_budget_seconds"] = None
    if interrupt.reason == "cancelled":
        token = CancelToken()
        token.cancel()
        fields["cancel_token"] = token
        fields["deadline_seconds"] = None
    else:
        fields["deadline_seconds"] = 1e-9
    return real_partition(
        instance,
        solver=solver,
        options=SolveOptions(**fields),
        **solver_kwargs,
    )


@pytest.fixture()
def spin(monkeypatch):
    import repro.api

    monkeypatch.setattr(repro.api, "partition", _spinning_partition)


def _submit_async(client):
    return client.solve(
        {
            "instance": {"dataset": "paper"},
            "solver": "gt",
            "wait": False,
        }
    )


def _wait_state(client, job_id, states, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        payload = client.job(job_id)
        if payload["state"] in states:
            return payload
        time.sleep(0.01)
    raise AssertionError(
        f"job {job_id} never reached {states}: {client.job(job_id)}"
    )


class TestDrain:
    def test_new_work_gets_503_draining(self):
        harness = EmbeddedServer(
            ServeConfig(port=0, pool_size=1, max_instances=2, max_jobs=8)
        )
        with harness as client:
            harness.drain(wait=True)  # idle server: drains immediately
            assert client.health()["status"] == "draining"
            with pytest.raises(ServerError) as info:
                client.solve({"instance": {"dataset": "paper"}})
            assert info.value.status == 503
            assert info.value.retryable is True
            assert info.value.retry_after_seconds is not None
            assert validate_error(info.value.payload) == []
            assert info.value.payload["error"]["code"] == "draining"
            # Reads stay up during a drain: polling and health work.
            assert client.jobs() == []

    def test_inflight_jobs_degrade_to_valid_results(self, spin):
        harness = EmbeddedServer(
            ServeConfig(port=0, pool_size=2, max_instances=2, max_jobs=8)
        )
        with harness as client:
            tickets = [_submit_async(client) for _ in range(2)]
            for ticket in tickets:
                _wait_state(client, ticket["job"], ("running",))
            start = time.monotonic()
            harness.drain(grace_seconds=0.4, wait=True)
            # The grace budget bounds the wait (plus scheduling slack).
            assert time.monotonic() - start < 10
            for ticket in tickets:
                payload = _wait_state(
                    client, ticket["job"], ("done", "cancelled")
                )
                result = payload["result"]
                # Degraded, not killed: a valid best-so-far assignment
                # with the anytime machinery's stop reason.
                assert result["stop_reason"] in ("deadline", "cancelled")
                assert validate_result(result) == []
            text = client.metrics()
            assert "repro_serve_drained_total" in text

    def test_queued_jobs_shed_during_drain(self, spin):
        harness = EmbeddedServer(
            ServeConfig(
                port=0, pool_size=1, max_instances=2, max_jobs=8, max_queue=4
            )
        )
        with harness as client:
            plug = _submit_async(client)
            _wait_state(client, plug["job"], ("running",))
            queued = _submit_async(client)
            assert client.job(queued["job"])["state"] == "queued"
            harness.drain(grace_seconds=0.3, wait=True)
            # The running job degraded; the queued one was shed with a
            # terminal state (never silently dropped).
            assert client.job(plug["job"])["state"] in ("done", "cancelled")
            shed = client.job(queued["job"])
            assert shed["state"] == "shed"
            assert shed["stop_reason"] == "shed"

    def test_drain_persists_checkpoints_resume_is_byte_identical(
        self, spin, tmp_path
    ):
        checkpoint_dir = tmp_path / "drain-checkpoints"
        checkpoint_dir.mkdir()
        harness = EmbeddedServer(
            ServeConfig(
                port=0,
                pool_size=1,
                max_instances=2,
                max_jobs=8,
                drain_checkpoint_dir=str(checkpoint_dir),
            )
        )
        with harness as client:
            ticket = _submit_async(client)
            _wait_state(client, ticket["job"], ("running",))
            harness.drain(grace_seconds=0.3, wait=True)
            payload = _wait_state(
                client, ticket["job"], ("done", "cancelled")
            )
            assert payload.get("checkpoint"), (
                "drained job must report its persisted checkpoint"
            )
            checkpoint_path = payload["checkpoint"]
            assert os.path.exists(checkpoint_path)
        # A restarted process resumes the checkpoint byte-identically:
        # the resumed solve equals one uninterrupted solve (the PR 4
        # contract, exercised here through a drain-written file).
        instance = paper_example_instance()
        resumed = real_partition(
            instance,
            solver="gt",
            options=SolveOptions(resume_from=checkpoint_path),
        )
        direct = real_partition(instance, solver="gt")
        assert np.array_equal(resumed.assignment, direct.assignment)
        assert resumed.value.total == direct.value.total
        assert resumed.converged and direct.converged

    def test_no_checkpoint_clutter_outside_drain(self, tmp_path):
        checkpoint_dir = tmp_path / "drain-checkpoints"
        checkpoint_dir.mkdir()
        harness = EmbeddedServer(
            ServeConfig(
                port=0,
                pool_size=1,
                max_instances=2,
                max_jobs=8,
                drain_checkpoint_dir=str(checkpoint_dir),
            )
        )
        with harness as client:
            # A client deadline interrupts the solve, which writes a
            # round-boundary checkpoint — but with no drain in progress
            # the table reaps it once the job finishes.
            payload = client.solve(
                {
                    "instance": {"dataset": "paper"},
                    "solver": "gt",
                    "options": {"deadline_seconds": 1e-9},
                }
            )
            assert payload["result"]["stop_reason"] == "deadline"
            assert "checkpoint" not in payload
            deadline = time.monotonic() + 5
            while os.listdir(checkpoint_dir) and time.monotonic() < deadline:
                time.sleep(0.01)
            assert os.listdir(str(checkpoint_dir)) == []

    def test_drain_is_idempotent(self):
        harness = EmbeddedServer(
            ServeConfig(port=0, pool_size=1, max_instances=2, max_jobs=8)
        )
        with harness as client:
            harness.drain(wait=True)
            harness.drain(wait=True)  # second drain is a no-op
            assert client.health()["status"] == "draining"


class TestSigterm:
    def test_sigterm_drains_and_exits_cleanly(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro", "serve",
                "--port", "0", "--drain-grace", "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on" in line, line
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
        assert proc.returncode == 0, output
        assert "draining" in output
