"""End-to-end tests of the solve service over real HTTP.

One embedded server per test class (module-scoped fixtures would let
job/metric state leak between assertions about counters).  Everything
runs on an ephemeral port; no test touches the network beyond loopback.
"""

import json
import threading

import numpy as np
import pytest

from repro.api import SolveOptions, partition
from repro.core.result_schema import validate_result
from repro.datasets import load_dataset, paper_example_instance
from repro.errors import ConfigurationError
from repro.serve import EmbeddedServer, ServeConfig
from repro.serve.client import ServerError


@pytest.fixture()
def client():
    with EmbeddedServer(
        ServeConfig(port=0, pool_size=2, max_instances=2, max_jobs=8)
    ) as connected:
        yield connected


class TestBasics:
    def test_health(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["api"] == "v1"
        assert payload["pool_size"] == 2

    def test_solver_catalog(self, client):
        catalog = client.solvers()
        assert "global_table" in catalog["solvers"]
        assert "pure" in catalog["backends"]
        aliases = catalog["solvers"]["global_table"]["aliases"]
        assert "gt" in aliases

    def test_unknown_route_404(self, client):
        with pytest.raises(ServerError) as info:
            client._request("GET", "/v1/nope")
        assert info.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ServerError) as info:
            client._request("GET", "/v1/solve")
        assert info.value.status == 405

    def test_validation_errors_are_400_with_field_path(self, client):
        with pytest.raises(ConfigurationError, match=r"request\.options\.sed"):
            client.solve({"options": {"sed": 1}})
        with pytest.raises(ConfigurationError, match=r"request\.solver"):
            client.solve({"solver": "magic"})
        # The server must survive bad requests.
        assert client.health()["status"] == "ok"

    def test_non_json_body_is_400(self, client):
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.request(
                "POST", "/v1/solve", body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            payload = json.loads(response.read().decode())
            assert "not valid JSON" in payload["error"]["message"]
        finally:
            conn.close()


class TestSolve:
    def test_sync_solve_returns_valid_result(self, client):
        payload = client.solve(
            {
                "instance": {"dataset": "paper"},
                "solver": "gt",
                "options": {"seed": 0},
                "include_assignment": True,
            }
        )
        assert payload["state"] == "done"
        result = payload["result"]
        assert result["schema"] == "repro-result/v1"
        assert validate_result(result) == []

    def test_http_solve_matches_direct_partition(self, client, tmp_path):
        """Acceptance: served solve byte-identical to a direct call.

        Checked with tracing + flight recorder on (the ``client``
        fixture default, plus an explicit flight dir) *and* with tracing
        off — observability must never perturb assignments.
        """
        spec = {"dataset": "gowalla", "users": 150, "events": 6, "seed": 3}
        options = {"seed": 7, "alpha": 0.3}
        body = {
            "instance": spec,
            "solver": "gt",
            "options": options,
            "include_assignment": True,
        }
        payload = client.solve(body)
        served = payload["result"]

        data = load_dataset(
            "gowalla", num_users=150, num_events=6, seed=3, use_cache=False
        )
        from repro.core import RMGPInstance

        instance = RMGPInstance(data.graph, data.event_ids, data.cost_matrix())
        direct = partition(
            instance, solver="gt", options=SolveOptions.from_dict(options)
        )
        direct_payload = direct.to_dict(include_assignment=True)
        assert served["assignment_sha256"] == direct_payload["assignment_sha256"]
        assert served["assignment"] == direct_payload["assignment"]
        assert served["objective"] == pytest.approx(direct_payload["objective"])
        assert served["rounds"] == direct_payload["rounds"]

        for cfg in (
            ServeConfig(port=0, pool_size=1, trace_requests=False),
            ServeConfig(
                port=0, pool_size=1, flight_dir=str(tmp_path / "flight")
            ),
        ):
            with EmbeddedServer(cfg) as other:
                replay = other.solve(dict(body))["result"]
            assert (
                replay["assignment_sha256"]
                == direct_payload["assignment_sha256"]
            )
            assert replay["rounds"] == direct_payload["rounds"]

    def test_solver_kwargs_reach_the_solver(self, client):
        n = paper_example_instance().n
        payload = client.solve(
            {
                "instance": {"dataset": "paper"},
                "solver": "cap",
                "solver_kwargs": {"capacities": [n, n, n]},
                "include_assignment": True,
            }
        )
        assert payload["state"] == "done"
        assert validate_result(payload["result"]) == []

    def test_concurrent_microsecond_deadlines(self, client):
        """Acceptance: tiny deadlines all stop as 'deadline', server lives."""
        results = [None] * 6
        errors = []

        def _one(i):
            try:
                results[i] = client.solve(
                    {
                        "instance": {
                            "dataset": "gowalla", "users": 250, "events": 8,
                        },
                        "solver": "gt",
                        "options": {"deadline_seconds": 1e-6},
                        "include_assignment": True,
                    }
                )
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [
            threading.Thread(target=_one, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        for payload in results:
            assert payload is not None
            result = payload["result"]
            assert result["stop_reason"] == "deadline"
            assert result["converged"] is False
            assert validate_result(result) == []
            assignment = np.asarray(result["assignment"])
            assert assignment.shape == (250,)
            assert (assignment >= 0).all()
        assert client.health()["status"] == "ok"

    def test_worker_failure_is_a_failed_job_not_a_dead_server(self, client):
        # Wrong capacity count passes wire validation (it is a value
        # error, not a schema error) and raises inside the worker.
        ticket = client.solve(
            {
                "instance": {"dataset": "paper"},
                "solver": "cap",
                "solver_kwargs": {"capacities": [1]},
                "wait": False,
            }
        )
        final = client.wait_for(ticket["job"], timeout=60)
        assert final["state"] == "failed"
        assert "capacity" in final["error"]
        assert client.health()["status"] == "ok"


class TestJobs:
    def test_async_ticket_then_poll(self, client):
        ticket = client.solve(
            {
                "instance": {"dataset": "paper"},
                "solver": "gt",
                "wait": False,
            }
        )
        assert set(ticket) == {"job", "state", "trace_id"}
        final = client.wait_for(ticket["job"], timeout=60)
        assert final["state"] == "done"
        assert final["result"]["stop_reason"] in ("converged", "max_rounds")

    def test_cancel_lifecycle(self, client):
        ticket = client.solve(
            {
                "instance": {"dataset": "gowalla", "users": 400, "events": 8},
                "solver": "b",
                "wait": False,
            }
        )
        cancelled = client.cancel(ticket["job"])
        assert cancelled["cancel_requested"] is True
        final = client.wait_for(ticket["job"], timeout=60)
        assert final["state"] in ("cancelled", "done")
        if final["state"] == "cancelled":
            assert final["result"]["stop_reason"] == "cancelled"
            assert validate_result(final["result"]) == []

    def test_cancel_finished_job_is_409(self, client):
        from repro.serve.errors import validate_error

        payload = client.solve(
            {"instance": {"dataset": "paper"}, "solver": "gt"}
        )
        job_id = payload["job"]
        response = client.cancel(job_id)
        # A finished job cancels to a 409 repro-error/v1 envelope.
        assert validate_error(response) == []
        assert response["error"]["code"] == "already_finished"
        assert response["error"]["job"] == job_id
        assert "already finished" in response["error"]["message"]

    def test_unknown_job_404(self, client):
        with pytest.raises(ServerError) as info:
            client.job("job-999")
        assert info.value.status == 404

    def test_jobs_listing(self, client):
        client.solve({"instance": {"dataset": "paper"}})
        jobs = client.jobs()
        assert len(jobs) >= 1
        assert {"job", "state", "solver", "created"} <= set(jobs[0])


class TestStreaming:
    def test_record_sequence(self, client):
        records = list(
            client.solve_stream(
                {
                    "instance": {"dataset": "paper"},
                    "solver": "gt",
                    "options": {"seed": 0},
                }
            )
        )
        kinds = [record["type"] for record in records]
        assert kinds[0] == "job"
        assert kinds[-1] == "result"
        rounds = [record for record in records if record["type"] == "round"]
        assert rounds, "expected at least one per-round progress record"
        assert [record["round"] for record in rounds] == sorted(
            record["round"] for record in rounds
        )
        for record in rounds:
            assert {"deviations", "players_examined", "frontier"} <= set(record)
        assert validate_result(
            {k: v for k, v in records[-1].items() if k not in ("type", "job")}
        ) == []

    def test_stream_result_matches_sync(self, client):
        body = {
            "instance": {"dataset": "paper"},
            "solver": "gt",
            "options": {"seed": 1},
        }
        streamed = list(client.solve_stream(dict(body)))[-1]
        synced = client.solve(dict(body))["result"]
        assert streamed["assignment_sha256"] == synced["assignment_sha256"]


class TestInstanceStoreOverHttp:
    def test_lru_hits_and_evictions(self, client):
        # max_instances=2: third distinct graph evicts the oldest.
        for seed in (0, 1, 2):
            client.solve(
                {
                    "instance": {
                        "dataset": "gowalla", "users": 60, "events": 4,
                        "seed": seed,
                    },
                    "solver": "gt",
                }
            )
        stats = client.instances()
        assert stats["resident"] == 2
        assert stats["evictions"] >= 1
        assert stats["misses"] >= 3
        # Repeat of a resident graph is a hit.
        client.solve(
            {
                "instance": {
                    "dataset": "gowalla", "users": 60, "events": 4, "seed": 2,
                },
                "solver": "gt",
            }
        )
        assert client.instances()["hits"] >= 1

    def test_mixed_alpha_shares_one_instance(self, client):
        for alpha in (0.2, 0.8):
            client.solve(
                {
                    "instance": {"dataset": "paper"},
                    "solver": "gt",
                    "options": {"alpha": alpha},
                }
            )
        stats = client.instances()
        assert ["paper"] in stats["keys"]
        assert stats["hits"] >= 1


class TestMetricsEndpoint:
    def test_prometheus_text_reflects_traffic(self, client):
        client.solve({"instance": {"dataset": "paper"}, "solver": "gt"})
        client.solve(
            {
                "instance": {"dataset": "paper"},
                "solver": "gt",
                "options": {"deadline_seconds": 1e-6},
            }
        )
        text = client.metrics()
        assert 'repro_serve_requests_total{solver="gt"} 2' in text
        assert "repro_serve_deadline_hits_total 1" in text
        assert 'repro_serve_jobs_total{state="done"} 2' in text
        assert "repro_serve_request_ms" in text
        # Solver-side metrics merged from per-request recorders.
        assert "repro_solve_rounds_total" in text or "rounds" in text


class TestJobRetention:
    def test_finished_jobs_evicted_beyond_max(self, client):
        # max_jobs=8 in the fixture; run more than that.
        for _ in range(10):
            client.solve({"instance": {"dataset": "paper"}, "solver": "gt"})
        assert len(client.jobs()) <= 8
