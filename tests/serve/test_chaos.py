"""Chaos harness: fault-injecting proxy + overload storm properties.

The properties, not the mechanisms: whatever the proxy does to
individual connections, the server (a) keeps answering, (b) never
returns a schema-invalid body — every 2xx is a ``repro-result/v1`` job
envelope and every non-2xx a ``repro-error/v1`` envelope — and (c)
under a storm far past capacity it sheds/rejects rather than queue
without bound, while still finishing real work (goodput > 0).
"""

import collections
import socket
import threading

import pytest

from repro.core.result_schema import validate_result
from repro.errors import ConfigurationError
from repro.serve import EmbeddedServer, ServeConfig
from repro.serve.chaos import ChaosPlan, ChaosProxy
from repro.serve.client import RetryPolicy, ServeClient, ServerError
from repro.serve.errors import validate_error


class TestChaosPlan:
    def test_fault_choice_is_deterministic(self):
        plan = ChaosPlan(seed=42, drop_rate=0.3, garble_rate=0.3)
        first = [plan.fault_for(i) for i in range(200)]
        second = [plan.fault_for(i) for i in range(200)]
        assert first == second
        counts = collections.Counter(first)
        assert counts["drop"] > 0
        assert counts["garble"] > 0
        assert counts["pass"] > 0

    def test_rates_roughly_respected(self):
        plan = ChaosPlan(seed=7, drop_rate=0.5)
        counts = collections.Counter(
            plan.fault_for(i) for i in range(1000)
        )
        assert 350 < counts["drop"] < 650
        assert counts["drop"] + counts["pass"] == 1000

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan(drop_rate=0.8, garble_rate=0.8)
        with pytest.raises(ConfigurationError):
            ChaosPlan(drop_rate=-0.1)

    def test_describe_lists_the_mix(self):
        plan = ChaosPlan(seed=3, trickle_rate=0.25)
        description = plan.describe()
        assert description["seed"] == 3
        assert description["trickle"] == 0.25


@pytest.fixture()
def server():
    harness = EmbeddedServer(
        ServeConfig(
            port=0,
            pool_size=2,
            max_instances=4,
            max_jobs=64,
            max_queue=4,
            admission_policy="shed-expired",
            read_timeout_seconds=0.5,
            write_timeout_seconds=5.0,
        )
    )
    with harness as direct_client:
        yield harness, direct_client


def _proxied_client(proxy, timeout=15.0, retry=None):
    return ServeClient("127.0.0.1", proxy.port, timeout=timeout, retry=retry)


class TestFaultClasses:
    def test_pass_through_proxy_is_transparent(self, server):
        harness, direct = server
        with ChaosProxy(("127.0.0.1", direct.port)) as proxy:
            client = _proxied_client(proxy)
            assert client.health()["status"] == "ok"
            payload = client.solve(
                {"instance": {"dataset": "paper"}, "solver": "gt"}
            )
            assert payload["state"] == "done"
            assert validate_result(payload["result"]) == []

    def test_dropped_connections_fail_fast_and_server_survives(self, server):
        harness, direct = server
        plan = ChaosPlan(seed=1, drop_rate=1.0)
        with ChaosProxy(("127.0.0.1", direct.port), plan) as proxy:
            client = _proxied_client(proxy, timeout=5.0)
            with pytest.raises(OSError):  # reset / remote disconnected
                client.health()
        assert direct.health()["status"] == "ok"

    def test_retry_policy_rides_out_drops(self, server):
        harness, direct = server
        # Connection 0 and 1 drop, 2 passes (seeded): the retrying
        # client succeeds without caller-visible failure.
        plan = ChaosPlan(seed=104, drop_rate=0.5)
        faults = [plan.fault_for(i) for i in range(4)]
        assume_mixed = "drop" in faults and "pass" in faults
        if not assume_mixed:  # pragma: no cover - seed chosen to mix
            pytest.skip("seed does not mix faults in the first window")
        with ChaosProxy(("127.0.0.1", direct.port), plan) as proxy:
            retry = RetryPolicy(
                max_attempts=6,
                base_delay_seconds=0.01,
                max_delay_seconds=0.05,
                budget_seconds=10.0,
                seed=5,
            )
            client = _proxied_client(proxy, timeout=5.0, retry=retry)
            assert client.health()["status"] in ("ok", "degraded")

    def test_garbled_requests_get_4xx_or_close_never_crash(self, server):
        harness, direct = server
        plan = ChaosPlan(seed=9, garble_rate=1.0)
        with ChaosProxy(("127.0.0.1", direct.port), plan) as proxy:
            client = _proxied_client(proxy, timeout=5.0)
            for _ in range(5):
                try:
                    client.solve(
                        {"instance": {"dataset": "paper"}, "solver": "gt"}
                    )
                except ServerError as exc:
                    if exc.payload is not None:
                        assert validate_error(exc.payload) == []
                except (ConfigurationError, OSError, ValueError):
                    pass  # 400 envelope, closed connection, junk bytes
        assert direct.health()["status"] == "ok"

    def test_trickled_responses_still_parse(self, server):
        harness, direct = server
        plan = ChaosPlan(
            seed=2,
            trickle_rate=1.0,
            trickle_chunk_bytes=48,
            trickle_interval_seconds=0.002,
        )
        with ChaosProxy(("127.0.0.1", direct.port), plan) as proxy:
            client = _proxied_client(proxy)
            payload = client.solve(
                {"instance": {"dataset": "paper"}, "solver": "gt"}
            )
            assert validate_result(payload["result"]) == []

    def test_blackholed_connections_time_out_clientside(self, server):
        harness, direct = server
        plan = ChaosPlan(seed=4, blackhole_rate=1.0, blackhole_seconds=0.4)
        with ChaosProxy(("127.0.0.1", direct.port), plan) as proxy:
            client = _proxied_client(proxy, timeout=0.2)
            with pytest.raises(OSError):  # socket.timeout or disconnect
                client.health()
        assert direct.health()["status"] == "ok"


class TestOverloadStorm:
    def test_storm_sheds_not_queues_and_goodput_survives(self, server):
        """10x overload through a faulty network: the acceptance storm.

        Arrival rate (6 threads firing back-to-back cold-build solves)
        is an order of magnitude past what pool_size=2 can service; the
        queue bound must hold, every readable response must be schema
        valid, and real work must still complete.
        """
        harness, direct = server
        plan = ChaosPlan(
            seed=1234,
            drop_rate=0.08,
            delay_rate=0.08,
            blackhole_rate=0.02,
            trickle_rate=0.08,
            garble_rate=0.04,
            delay_seconds=0.02,
            blackhole_seconds=0.2,
            trickle_chunk_bytes=128,
            trickle_interval_seconds=0.001,
        )
        outcomes = collections.Counter()
        lock = threading.Lock()
        seeds = iter(range(20_000, 30_000))

        def storm(thread_index: int) -> None:
            with ChaosProxy(("127.0.0.1", direct.port), plan) as proxy:
                client = _proxied_client(proxy, timeout=20.0)
                for _ in range(6):
                    with lock:
                        seed = next(seeds)
                    body = {
                        "instance": {
                            # Cold build each time: ~0.1s of worker time
                            # per request, far past 2 workers' capacity
                            # at this arrival rate.
                            "dataset": "gowalla",
                            "users": 600,
                            "events": 16,
                            "seed": seed,
                        },
                        "solver": "gt",
                        "options": {"deadline_seconds": 5.0},
                        "wait": True,
                    }
                    try:
                        payload = client.solve(body)
                        assert validate_result(payload["result"]) == []
                        with lock:
                            outcomes["success"] += 1
                    except ServerError as exc:
                        if exc.payload is not None:
                            assert validate_error(exc.payload) == []
                        with lock:
                            outcomes[f"http_{exc.status}"] += 1
                    except ConfigurationError:
                        with lock:
                            outcomes["rejected_400"] += 1
                    except (OSError, ValueError):
                        with lock:
                            outcomes["connection_error"] += 1

        threads = [
            threading.Thread(target=storm, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), f"storm thread hung: {outcomes}"

        # Goodput survived the storm...
        assert outcomes["success"] > 0, outcomes
        # ...the admission bound held the queue...
        table = harness.server.jobs
        assert table.queue.max_depth_seen <= 4
        # ...and the server is intact: health answers and a clean
        # direct solve still works.
        health = direct.health()
        assert health["status"] in ("ok", "degraded", "overloaded")
        final = direct.solve(
            {"instance": {"dataset": "paper"}, "solver": "gt"}
        )
        assert final["state"] == "done"
        assert validate_result(final["result"]) == []
