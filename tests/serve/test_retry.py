"""Client retry policy: jitter bounds, floors, budgets, classification.

Pure unit tests: the jitter math is driven with seeded RNGs, and the
retry loop with a scripted ``_request_once`` plus a fake clock — no
sockets, no sleeps, fully deterministic.
"""

import random

import pytest

import repro.serve.client as client_module
from repro.errors import ConfigurationError
from repro.serve.client import RetryPolicy, ServeClient, ServerError


class TestNextDelay:
    def test_delay_within_decorrelated_bounds(self):
        policy = RetryPolicy(
            base_delay_seconds=0.1, max_delay_seconds=5.0, seed=1
        )
        rng = random.Random(1)
        previous = None
        for _ in range(200):
            delay = policy.next_delay(rng, previous)
            lower = policy.base_delay_seconds
            upper = min(
                policy.max_delay_seconds,
                (previous if previous is not None else lower) * 3,
            )
            assert lower <= delay <= max(upper, lower)
            previous = delay

    def test_delay_clamped_to_max(self):
        policy = RetryPolicy(
            base_delay_seconds=0.1, max_delay_seconds=0.3, seed=2
        )
        rng = random.Random(2)
        previous = 100.0  # pathological previous: clamp must hold
        for _ in range(50):
            assert policy.next_delay(rng, previous) <= 0.3

    def test_retry_after_floors_the_draw(self):
        policy = RetryPolicy(
            base_delay_seconds=0.01, max_delay_seconds=1.0, seed=3
        )
        rng = random.Random(3)
        for _ in range(50):
            delay = policy.next_delay(
                rng, 0.01, retry_after_seconds=0.75
            )
            assert delay >= 0.75

    def test_same_seed_same_jitter_stream(self):
        policy = RetryPolicy(seed=42)
        a = random.Random(42)
        b = random.Random(42)
        stream_a = [policy.next_delay(a, None) for _ in range(20)]
        stream_b = [policy.next_delay(b, None) for _ in range(20)]
        assert stream_a == stream_b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_seconds": 0.0},
            {"base_delay_seconds": -1.0},
            {"max_delay_seconds": 0.01, "base_delay_seconds": 0.5},
            {"budget_seconds": 0.0},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class _FakeTime:
    """Stand-in for the ``time`` module: sleeps advance the clock."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def monotonic(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


@pytest.fixture()
def fake_time(monkeypatch):
    fake = _FakeTime()
    monkeypatch.setattr(client_module, "time", fake)
    return fake


def _scripted_client(outcomes, retry):
    """A ServeClient whose ``_request_once`` replays ``outcomes``.

    Each outcome is an Exception to raise or a payload to return; the
    attempt count lands in ``client.attempts``.
    """
    client = ServeClient(retry=retry)
    script = iter(outcomes)
    client.attempts = 0

    def fake_request_once(method, path, body=None, ok=(200,)):
        client.attempts += 1
        outcome = next(script)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    client._request_once = fake_request_once
    return client


def _retryable_429():
    return ServerError(
        429, "queue full", code="queue_full", retryable=True,
        retry_after_seconds=None,
    )


class TestRetryLoop:
    def test_retries_retryable_until_success(self, fake_time):
        client = _scripted_client(
            [_retryable_429(), _retryable_429(), {"ok": True}],
            RetryPolicy(max_attempts=5, seed=7),
        )
        assert client._request("POST", "/v1/solve") == {"ok": True}
        assert client.attempts == 3
        assert len(fake_time.sleeps) == 2

    def test_no_retry_when_envelope_says_not_retryable(self, fake_time):
        error = ServerError(
            500, "solve failed", code="solve_failed", retryable=False
        )
        client = _scripted_client(
            [error, {"ok": True}], RetryPolicy(max_attempts=5, seed=7)
        )
        with pytest.raises(ServerError) as info:
            client._request("POST", "/v1/solve")
        assert info.value.status == 500
        assert client.attempts == 1
        assert fake_time.sleeps == []

    def test_no_retry_on_validation_errors(self, fake_time):
        client = _scripted_client(
            [ConfigurationError("request.solver: unknown")],
            RetryPolicy(max_attempts=5, seed=7),
        )
        with pytest.raises(ConfigurationError):
            client._request("POST", "/v1/solve")
        assert client.attempts == 1

    def test_retries_connection_refused(self, fake_time):
        client = _scripted_client(
            [ConnectionRefusedError(), ConnectionResetError(), {"up": 1}],
            RetryPolicy(max_attempts=5, seed=7),
        )
        assert client._request("GET", "/v1/health") == {"up": 1}
        assert client.attempts == 3

    def test_max_attempts_exhausted_raises_last_error(self, fake_time):
        client = _scripted_client(
            [_retryable_429() for _ in range(3)],
            RetryPolicy(max_attempts=3, seed=7),
        )
        with pytest.raises(ServerError) as info:
            client._request("POST", "/v1/solve")
        assert info.value.status == 429
        assert client.attempts == 3
        assert len(fake_time.sleeps) == 2  # no sleep after the last try

    def test_budget_stops_before_unaffordable_sleep(self, fake_time):
        # Retry-After floors the delay at 100s, far past the 1s budget:
        # the loop must give up instead of starting that sleep.
        error = ServerError(
            429, "queue full", code="queue_full", retryable=True,
            retry_after_seconds=100.0,
        )
        client = _scripted_client(
            [error, {"never": "reached"}],
            RetryPolicy(max_attempts=5, budget_seconds=1.0, seed=7),
        )
        with pytest.raises(ServerError):
            client._request("POST", "/v1/solve")
        assert client.attempts == 1
        assert fake_time.sleeps == []

    def test_honors_retry_after_between_attempts(self, fake_time):
        error = ServerError(
            503, "draining", code="draining", retryable=True,
            retry_after_seconds=0.5,
        )
        client = _scripted_client(
            [error, {"ok": True}],
            RetryPolicy(
                max_attempts=3, base_delay_seconds=0.01,
                max_delay_seconds=0.05, budget_seconds=30.0, seed=7,
            ),
        )
        assert client._request("POST", "/v1/solve") == {"ok": True}
        # The floor wins over the (much smaller) jitter draw.
        assert fake_time.sleeps == [0.5]

    def test_no_policy_means_single_attempt(self, fake_time):
        client = _scripted_client([_retryable_429()], retry=None)
        with pytest.raises(ServerError):
            client._request("POST", "/v1/solve")
        assert client.attempts == 1


def _traced_client(outcomes, retry, trace_id):
    """Like ``_scripted_client`` but records the headers of each attempt."""
    client = ServeClient(retry=retry, trace_id=trace_id)
    script = iter(outcomes)
    client.attempts = 0
    client.seen_headers = []

    def fake_request_once(method, path, body=None, ok=(200,), headers=None):
        client.attempts += 1
        client.seen_headers.append(dict(headers or {}))
        outcome = next(script)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    client._request_once = fake_request_once
    return client


class TestRetryTracePropagation:
    TRACE_ID = "0af7651916cd43dd8448eb211c80319c"

    def test_same_trace_id_survives_429_retry_success(self, fake_time):
        # The envelope a real server would return for the traced job.
        final = {"job": "job-3", "state": "done", "trace_id": self.TRACE_ID}
        client = _traced_client(
            [_retryable_429(), _retryable_429(), final],
            RetryPolicy(max_attempts=5, seed=7),
            trace_id=self.TRACE_ID,
        )
        assert client.solve({"solver": "gt"}) == final
        assert client.attempts == 3
        # Every attempt carried a traceparent, and the SAME one: the
        # header is built once, before the retry loop.
        traceparents = [h.get("traceparent") for h in client.seen_headers]
        assert all(tp is not None for tp in traceparents)
        assert len(set(traceparents)) == 1
        version, trace_id, span_id, flags = traceparents[0].split("-")
        assert (version, flags) == ("00", "01")
        assert trace_id == self.TRACE_ID
        assert len(span_id) == 16
        # ... and the final envelope carries that trace id.
        assert final["trace_id"] == self.TRACE_ID

    def test_per_call_trace_id_beats_constructor_default(self, fake_time):
        other = "b" * 32
        client = _traced_client(
            [{"ok": True}],
            RetryPolicy(max_attempts=2, seed=7),
            trace_id=self.TRACE_ID,
        )
        client.solve({"solver": "gt"}, trace_id=other)
        assert client.seen_headers[0]["traceparent"].split("-")[1] == other

    def test_untraced_client_sends_no_traceparent(self, fake_time):
        client = _traced_client(
            [_retryable_429(), {"ok": True}],
            RetryPolicy(max_attempts=3, seed=7),
            trace_id=None,
        )
        assert client._request("POST", "/v1/solve") == {"ok": True}
        assert all("traceparent" not in h for h in client.seen_headers)
