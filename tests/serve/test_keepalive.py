"""Connection hardening: keep-alive edges, timeouts, write stalls.

Raw-socket tests of the HTTP/1.1 plumbing the stdlib client can't
exercise: request heads split across TCP segments, pipelined requests
after a 4xx, slow-loris read timeouts, and mid-stream client deaths
(the dead subscriber must be reaped and the job cancelled).  The write
stall guard is unit-tested against a stub writer — loopback buffers are
too forgiving to stall a real connection deterministically.
"""

import asyncio
import json
import socket
import time

import pytest

from repro.serve import EmbeddedServer, ServeConfig
from repro.serve.errors import validate_error


@pytest.fixture()
def harness():
    server = EmbeddedServer(
        ServeConfig(
            port=0,
            pool_size=1,
            max_instances=2,
            max_jobs=8,
            read_timeout_seconds=0.5,
        )
    )
    with server as client:
        yield server, client


class _ResponseReader:
    """Reads framed responses one at a time, keeping over-read bytes
    (pipelined responses can share one TCP segment)."""

    def __init__(self, sock):
        self._sock = sock
        self._buffer = b""

    def next_response(self) -> tuple:
        """One framed response as ``(head_text, body_dict)``."""
        while b"\r\n\r\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise AssertionError(
                    f"connection closed mid-head: {self._buffer!r}"
                )
            self._buffer += chunk
        head, _, rest = self._buffer.partition(b"\r\n\r\n")
        head_text = head.decode("latin-1")
        length = 0
        for line in head_text.split("\r\n")[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        while len(rest) < length:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise AssertionError("connection closed mid-body")
            rest += chunk
        self._buffer = rest[length:]
        body = json.loads(rest[:length].decode()) if length else {}
        return head_text, body


def _recv_one_response(sock) -> tuple:
    """Read exactly one framed response; returns (head_text, body_dict)."""
    return _ResponseReader(sock).next_response()


class TestKeepAliveEdges:
    def test_request_head_split_across_segments(self, harness):
        _, client = harness
        raw = b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n"
        with socket.create_connection(
            (client.host, client.port), timeout=10
        ) as sock:
            # Dribble the head a few bytes at a time across many TCP
            # segments; the parser must reassemble it unchanged.
            for start in range(0, len(raw), 7):
                sock.sendall(raw[start:start + 7])
                time.sleep(0.005)
            head, body = _recv_one_response(sock)
            assert " 200 " in head.split("\r\n")[0]
            assert body["status"] == "ok"

    def test_pipelined_second_request_after_4xx(self, harness):
        _, client = harness
        # A 404 keeps the connection usable: the pipelined follow-up on
        # the same socket must still be answered.
        first = b"GET /v1/nope HTTP/1.1\r\nHost: x\r\n\r\n"
        second = b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n"
        with socket.create_connection(
            (client.host, client.port), timeout=10
        ) as sock:
            sock.sendall(first + second)
            reader = _ResponseReader(sock)
            head1, body1 = reader.next_response()
            assert " 404 " in head1.split("\r\n")[0]
            assert "Connection: keep-alive" in head1
            assert validate_error(body1) == []
            head2, body2 = reader.next_response()
            assert " 200 " in head2.split("\r\n")[0]
            assert body2["status"] == "ok"

    def test_validation_400_keeps_connection_alive(self, harness):
        _, client = harness
        body = json.dumps({"solver": "nope"}).encode()
        request = (
            b"POST /v1/solve HTTP/1.1\r\nHost: x\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        follow_up = b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n"
        with socket.create_connection(
            (client.host, client.port), timeout=10
        ) as sock:
            reader = _ResponseReader(sock)
            sock.sendall(request)
            head1, body1 = reader.next_response()
            assert " 400 " in head1.split("\r\n")[0]
            assert validate_error(body1) == []
            sock.sendall(follow_up)
            head2, body2 = reader.next_response()
            assert body2["status"] == "ok"

    def test_slow_loris_head_gets_408(self, harness):
        _, client = harness
        with socket.create_connection(
            (client.host, client.port), timeout=10
        ) as sock:
            sock.sendall(b"GET /v1/health HT")  # ...and then nothing
            head, body = _recv_one_response(sock)
            assert " 408 " in head.split("\r\n")[0]
            assert "Connection: close" in head
            assert validate_error(body) == []
            assert body["error"]["code"] == "timeout"

    def test_stalled_body_gets_408(self, harness):
        _, client = harness
        with socket.create_connection(
            (client.host, client.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /v1/solve HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 500\r\n\r\n"
                b'{"solver":'  # 490 bytes never arrive
            )
            head, body = _recv_one_response(sock)
            assert " 408 " in head.split("\r\n")[0]
            assert body["error"]["code"] == "timeout"

    def test_timeouts_counted_in_metrics(self, harness):
        server, client = harness
        with socket.create_connection(
            (client.host, client.port), timeout=10
        ) as sock:
            sock.sendall(b"GET /v1")
            _recv_one_response(sock)
        text = client.metrics()
        assert 'repro_serve_timeouts_total{kind="read"}' in text


class TestStreamDisconnect:
    def test_disconnect_mid_stream_reaps_subscriber_and_cancels(self):
        server = EmbeddedServer(
            ServeConfig(port=0, pool_size=1, max_instances=2, max_jobs=8)
        )
        with server as client:
            body = json.dumps(
                {
                    "instance": {
                        # Cold build keeps the job alive long enough to
                        # kill the client mid-stream.
                        "dataset": "gowalla",
                        "users": 2000,
                        "events": 32,
                        "seed": 777,
                    },
                    "solver": "gt",
                    "stream": True,
                }
            ).encode()
            request = (
                b"POST /v1/solve HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            sock = socket.create_connection(
                (client.host, client.port), timeout=10
            )
            sock.sendall(request)
            # Wait for the stream head + first chunk, then vanish.
            first = sock.recv(65536)
            assert b"200 OK" in first
            sock.close()
            # The server notices on its next stream write: the job is
            # cancelled and the dead sink unsubscribed.
            deadline = time.monotonic() + 30
            job = None
            while time.monotonic() < deadline:
                jobs = server.server.jobs.jobs()
                if jobs:
                    job = jobs[0]
                    if job.wait(0) and job.subscriber_count() == 0:
                        break
                time.sleep(0.02)
            assert job is not None
            assert job.wait(0), "job never finished after disconnect"
            assert job.subscriber_count() == 0
            assert job.state in ("cancelled", "done")


class _StubTransport:
    def __init__(self):
        self.aborted = False

    def abort(self):
        self.aborted = True


class _StallingWriter:
    """A writer whose drain() never completes (dead TCP peer)."""

    def __init__(self):
        self.transport = _StubTransport()
        self.buffer = b""

    def write(self, data: bytes) -> None:
        self.buffer += data

    async def drain(self) -> None:
        await asyncio.sleep(3600)


class TestWriteStallGuard:
    def test_drain_guarded_aborts_stalled_connection(self):
        from repro.serve.server import SolveServer

        server = SolveServer(
            ServeConfig(
                port=0,
                pool_size=1,
                max_instances=1,
                max_jobs=2,
                write_timeout_seconds=0.05,
            )
        )
        writer = _StallingWriter()

        async def scenario():
            with pytest.raises(ConnectionResetError):
                await server._drain_guarded(writer)

        try:
            asyncio.run(scenario())
            assert writer.transport.aborted is True
            stalls = [
                inst for inst in server.registry
                if inst.name == "serve.timeouts"
                and dict(inst.labels).get("kind") == "write"
            ]
            assert stalls and stalls[0].value == 1
        finally:
            server.jobs.shutdown(wait=True)
