"""The ``repro-error/v1`` envelope: validator + every server error path.

Two layers: unit tests of :mod:`repro.serve.errors` (the builder and
the runnable validator), then end-to-end assertions that *each* 4xx/5xx
the server can produce is one valid envelope — the property the chaos
harness and retrying clients depend on.
"""

import json
import socket
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.serve import EmbeddedServer, ServeConfig
from repro.serve.client import ServeClient, ServerError
from repro.serve.errors import (
    ERROR_SCHEMA_VERSION,
    RETRYABLE_CODES,
    error_body,
    validate_error,
)


class TestEnvelope:
    def test_minimal_body_is_valid(self):
        body = error_body(404, "not_found", "no route")
        assert validate_error(body) == []
        assert body["schema"] == ERROR_SCHEMA_VERSION
        assert body["error"]["retryable"] is False

    def test_retryable_defaults_follow_code(self):
        for code in RETRYABLE_CODES:
            assert error_body(503, code, "x")["error"]["retryable"] is True
        assert error_body(400, "invalid_request", "x")["error"][
            "retryable"
        ] is False

    def test_optional_fields_round_trip(self):
        body = error_body(
            429,
            "queue_full",
            "queue at bound",
            retry_after_seconds=2.5,
            field="request.options.seed",
            job="job-1",
        )
        assert validate_error(body) == []
        assert body["error"]["retry_after_seconds"] == 2.5
        assert body["error"]["field"] == "request.options.seed"
        assert body["error"]["job"] == "job-1"

    @pytest.mark.parametrize(
        "mutate, expected",
        [
            (lambda b: b.pop("schema"), "schema:"),
            (lambda b: b.__setitem__("schema", "repro-error/v2"), "schema:"),
            (lambda b: b["error"].pop("status"), "error.status"),
            (lambda b: b["error"].__setitem__("status", 200), "error.status"),
            (lambda b: b["error"].__setitem__("status", True), "error.status"),
            (lambda b: b["error"].__setitem__("code", "Bad Code"),
             "error.code"),
            (lambda b: b["error"].__setitem__("message", ""), "error.message"),
            (lambda b: b["error"].__setitem__("retryable", "yes"),
             "error.retryable"),
            (lambda b: b["error"].__setitem__("retry_after_seconds", -1),
             "error.retry_after_seconds"),
            (lambda b: b["error"].__setitem__("surprise", 1),
             "error.surprise"),
            (lambda b: b.__setitem__("extra", {}), "extra"),
        ],
    )
    def test_validator_rejects_violations(self, mutate, expected):
        body = error_body(429, "queue_full", "full", retry_after_seconds=1.0)
        mutate(body)
        messages = validate_error(body)
        assert messages, "expected a violation"
        assert any(expected in message for message in messages)

    def test_non_object_payloads(self):
        assert validate_error([]) != []
        assert validate_error(None) != []
        assert validate_error({"schema": ERROR_SCHEMA_VERSION}) != []

    def test_cli_validator_exit_codes(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(error_body(500, "internal", "boom")))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        base = [sys.executable, "-m", "repro.serve.errors"]
        assert subprocess.run(base + [str(good)]).returncode == 0
        assert subprocess.run(
            base + [str(bad)], stderr=subprocess.DEVNULL
        ).returncode == 1
        assert subprocess.run(
            base, stderr=subprocess.DEVNULL
        ).returncode == 2


@pytest.fixture()
def harness():
    with EmbeddedServer(
        ServeConfig(port=0, pool_size=1, max_instances=2, max_jobs=8)
    ) as client:
        yield client


def _raw_response(client: ServeClient, request_bytes: bytes) -> dict:
    """One raw request on a fresh socket; returns the parsed JSON body."""
    with socket.create_connection(
        (client.host, client.port), timeout=10
    ) as sock:
        sock.sendall(request_bytes)
        sock.shutdown(socket.SHUT_WR)
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    assert head, f"no response head in {data!r}"
    return json.loads(body.decode())


class TestServerErrorPaths:
    """Every non-2xx the server emits is a valid envelope."""

    def _envelope_of(self, exc_info) -> dict:
        payload = exc_info.value.payload
        assert payload is not None
        assert validate_error(payload) == []
        return payload

    def test_404_unknown_route(self, harness):
        with pytest.raises(ServerError) as info:
            harness._request("GET", "/nope")
        payload = self._envelope_of(info)
        assert payload["error"]["code"] == "not_found"
        assert info.value.status == 404

    def test_404_unknown_job(self, harness):
        with pytest.raises(ServerError) as info:
            harness.job("job-999")
        assert self._envelope_of(info)["error"]["code"] == "not_found"

    def test_405_wrong_method(self, harness):
        with pytest.raises(ServerError) as info:
            harness._request("GET", "/v1/solve")
        payload = self._envelope_of(info)
        assert info.value.status == 405
        assert payload["error"]["code"] == "method_not_allowed"

    def test_400_validation_carries_field_path(self, harness):
        # A bad option type maps to ConfigurationError client-side with
        # the server's field path preserved in the message.
        with pytest.raises(ConfigurationError) as info:
            harness.solve({"solver": "gt", "options": {"seed": "x"}})
        assert "request.options.seed" in str(info.value)

    def test_400_envelope_shape_on_the_wire(self, harness):
        body = json.dumps({"solver": "nope"}).encode()
        raw = (
            b"POST /v1/solve HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        payload = _raw_response(harness, raw)
        assert validate_error(payload) == []
        assert payload["error"]["status"] == 400
        assert payload["error"]["code"] == "invalid_request"
        assert payload["error"]["field"] == "request.solver"
        assert payload["error"]["retryable"] is False

    def test_413_oversized_body(self, harness):
        huge = 9 * 1024 * 1024  # past the 8 MiB default max_body_bytes
        raw = (
            b"POST /v1/solve HTTP/1.1\r\n"
            + f"Content-Length: {huge}\r\n\r\n".encode()
        )
        payload = _raw_response(harness, raw)
        assert validate_error(payload) == []
        assert payload["error"]["code"] == "payload_too_large"

    def test_409_cancel_finished(self, harness):
        finished = harness.solve(
            {"instance": {"dataset": "paper"}, "solver": "gt"}
        )
        payload = harness.cancel(finished["job"])
        assert validate_error(payload) == []
        assert payload["error"]["code"] == "already_finished"

    def test_500_solver_failure(self, harness):
        # exact_scale so small the exact-arithmetic path overflows is
        # hard to trigger; instead force a failure via a solver kwarg
        # that validates on the wire but explodes in the worker.
        with pytest.raises(ServerError) as info:
            harness.solve(
                {
                    "instance": {"dataset": "paper"},
                    "solver": "gt",
                    "options": {"max_rounds": -3},
                }
            )
        payload = self._envelope_of(info)
        assert info.value.status == 500
        assert payload["error"]["code"] == "solve_failed"
        assert payload["error"]["retryable"] is False
        assert payload["error"]["job"].startswith("job-")
