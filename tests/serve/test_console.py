"""The ``repro top`` console: parser, quantiles, rendering, poll loop."""

import io
import math

from repro.serve import EmbeddedServer, ServeConfig
from repro.serve.console import (
    ConsoleSnapshot,
    bucket_quantile,
    parse_prometheus,
    render,
    run_top,
    snapshot,
)


class TestParsePrometheus:
    def test_plain_and_labeled_samples(self):
        text = "\n".join(
            [
                "# TYPE repro_serve_queue_depth gauge",
                "repro_serve_queue_depth 3",
                'repro_serve_requests_total{solver="gt"} 12',
                'repro_serve_request_ms_bucket{le="10"} 5',
                'repro_serve_request_ms_bucket{le="+Inf"} 7',
                "",
                "garbage line without a value",
            ]
        )
        samples = parse_prometheus(text)
        assert samples[("repro_serve_queue_depth", ())] == 3.0
        assert (
            samples[("repro_serve_requests_total", (("solver", "gt"),))] == 12.0
        )
        assert (
            samples[("repro_serve_request_ms_bucket", (("le", "+Inf"),))] == 7.0
        )

    def test_round_trips_real_exporter_output(self):
        from repro.obs.exporters import prometheus_text
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("serve.requests", {"solver": "gt"}).inc(4)
        registry.gauge("serve.queue_depth").set(2)
        registry.histogram("serve.request_ms", boundaries=(10.0,)).observe(3.0)
        samples = parse_prometheus(prometheus_text(registry))
        assert (
            samples[("repro_serve_requests_total", (("solver", "gt"),))] == 4.0
        )
        assert samples[("repro_serve_queue_depth", ())] == 2.0


class TestBucketQuantile:
    def test_mirrors_histogram_semantics(self):
        buckets = [(10.0, 99.0), (100.0, 99.0), (math.inf, 100.0)]
        assert bucket_quantile(buckets, 0.5) == 10.0
        assert bucket_quantile(buckets, 0.99) == 10.0
        # The +Inf overflow observation reports the last finite bound.
        assert bucket_quantile(buckets, 1.0) == 100.0

    def test_empty_is_none(self):
        assert bucket_quantile([], 0.5) is None
        assert bucket_quantile([(10.0, 0.0), (math.inf, 0.0)], 0.5) is None


class TestRender:
    def test_render_handles_empty_metrics(self):
        snap = ConsoleSnapshot(health={"status": "ok"}, samples={})
        text = render(snap, "host:1")
        assert "status OK" in text
        assert "latency  p50 -   p99 -" in text

    def test_render_live_server(self):
        with EmbeddedServer(ServeConfig(port=0, pool_size=2)) as client:
            client.solve({"instance": {"dataset": "paper"}, "solver": "gt"})
            snap = snapshot(client)
        text = render(snap, "x")
        assert "status OK" in text
        assert "gt=1" in text
        assert "jobs     done=1" in text
        assert "p99" in text


class TestRunTop:
    def test_once_against_live_server(self):
        with EmbeddedServer(ServeConfig(port=0, pool_size=1)) as client:
            client.solve({"instance": {"dataset": "paper"}, "solver": "gt"})
            out = io.StringIO()
            rc = run_top(
                client.host,
                client.port,
                interval=0.01,
                iterations=2,
                stream=out,
            )
        assert rc == 0
        screens = out.getvalue()
        assert screens.count("repro serve") == 2
        assert "status OK" in screens

    def test_unreachable_server_renders_note(self):
        out = io.StringIO()
        rc = run_top(
            "127.0.0.1", 1, interval=0.01, iterations=1, stream=out
        )
        assert rc == 0
        assert "UNREACHABLE" in out.getvalue()

    def test_cli_wiring(self):
        from repro.cli import build_parser

        arguments = build_parser().parse_args(
            ["top", "--port", "9999", "--once", "--no-clear"]
        )
        assert arguments.command == "top"
        assert arguments.once is True
        arguments = build_parser().parse_args(["flight", "dump.jsonl"])
        assert arguments.command == "flight"
        arguments = build_parser().parse_args(
            [
                "serve",
                "--no-trace",
                "--flight-dir",
                "/tmp/f",
                "--flight-window",
                "10",
                "--flight-debounce",
                "5",
            ]
        )
        assert arguments.no_trace is True
        assert arguments.flight_dir == "/tmp/f"
