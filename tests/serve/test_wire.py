"""Wire-schema validation: every bad request fails with a field path."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import CancelToken
from repro.serve.wire import InstanceSpec, SolveRequest


class TestInstanceSpec:
    def test_defaults(self):
        spec = InstanceSpec.from_dict(None)
        assert spec == InstanceSpec("gowalla", 200, 8, 0)

    def test_paper_key_ignores_size_fields(self):
        spec = InstanceSpec.from_dict({"dataset": "paper"})
        assert spec.key() == ("paper",)
        assert spec.to_dict() == {"dataset": "paper"}

    def test_key_includes_graph_parameters(self):
        a = InstanceSpec.from_dict({"users": 100, "events": 4, "seed": 1})
        b = InstanceSpec.from_dict({"users": 100, "events": 4, "seed": 2})
        assert a.key() != b.key()

    def test_unknown_field_path(self):
        with pytest.raises(ConfigurationError, match=r"request\.instance\.n"):
            InstanceSpec.from_dict({"n": 10})

    def test_bad_type_path(self):
        with pytest.raises(
            ConfigurationError, match=r"request\.instance\.users: expected int"
        ):
            InstanceSpec.from_dict({"users": "many"})

    def test_bool_is_not_an_int(self):
        with pytest.raises(ConfigurationError, match="got bool"):
            InstanceSpec.from_dict({"seed": True})

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            InstanceSpec.from_dict({"dataset": "twitter"})

    def test_size_floors(self):
        with pytest.raises(ConfigurationError, match=r"users: must be >= 2"):
            InstanceSpec.from_dict({"users": 1})
        with pytest.raises(ConfigurationError, match=r"events: must be >= 1"):
            InstanceSpec.from_dict({"events": 0})


class TestSolveRequest:
    def test_minimal_body_defaults(self):
        request = SolveRequest.from_dict({})
        assert request.solver == "gt"
        assert request.wait is True
        assert request.stream is False

    def test_unknown_top_level_field(self):
        with pytest.raises(
            ConfigurationError, match=r"request\.solverr: unknown field"
        ):
            SolveRequest.from_dict({"solverr": "gt"})

    def test_unknown_solver(self):
        with pytest.raises(
            ConfigurationError, match=r"request\.solver: unknown solver"
        ):
            SolveRequest.from_dict({"solver": "magic"})

    def test_options_validated_eagerly_with_path(self):
        with pytest.raises(
            ConfigurationError,
            match=r"request\.options\.seed: expected int",
        ):
            SolveRequest.from_dict({"options": {"seed": "zero"}})

    def test_options_unknown_key_has_path(self):
        with pytest.raises(
            ConfigurationError, match=r"request\.options\.sed: unknown field"
        ):
            SolveRequest.from_dict({"options": {"sed": 0}})

    def test_solver_kwargs_checked_against_signature(self):
        with pytest.raises(
            ConfigurationError,
            match=r"request\.solver_kwargs\.granularity",
        ):
            SolveRequest.from_dict(
                {"solver": "gt", "solver_kwargs": {"granularity": 3}}
            )

    def test_solver_kwargs_live_objects_rejected(self):
        with pytest.raises(ConfigurationError, match="not a wire parameter"):
            SolveRequest.from_dict(
                {"solver": "gt", "solver_kwargs": {"recorder": None}}
            )
        with pytest.raises(ConfigurationError, match="not a wire parameter"):
            SolveRequest.from_dict(
                {"solver": "b", "solver_kwargs": {"deadline_seconds": 1.0}}
            )

    def test_solver_kwargs_accepts_registry_parameter(self):
        request = SolveRequest.from_dict(
            {
                "solver": "cap",
                "solver_kwargs": {"capacities": [5, 5, 5]},
            }
        )
        assert request.solver_kwargs == {"capacities": [5, 5, 5]}

    def test_stream_implies_waiting(self):
        with pytest.raises(ConfigurationError, match="streaming implies"):
            SolveRequest.from_dict({"stream": True, "wait": False})

    def test_non_object_body(self):
        with pytest.raises(ConfigurationError, match="expected an object"):
            SolveRequest.from_dict([1, 2, 3])


class TestBuildOptions:
    def test_injects_token_and_recorder(self):
        request = SolveRequest.from_dict({"options": {"seed": 3}})
        token = CancelToken()
        sentinel = object()
        options = request.build_options(None, token, sentinel)
        assert options.cancel_token is token
        assert options.recorder is sentinel
        assert options.seed == 3

    def test_default_deadline_applies_when_unset(self):
        request = SolveRequest.from_dict({})
        options = request.build_options(2.5, CancelToken())
        assert options.deadline_seconds == 2.5

    def test_request_deadline_wins_over_default(self):
        request = SolveRequest.from_dict(
            {"options": {"deadline_seconds": 0.25}}
        )
        options = request.build_options(2.5, CancelToken())
        assert options.deadline_seconds == 0.25
