"""Flight recorder: ring semantics, debounce, triggers, HTTP surface.

Unit tests drive :class:`~repro.obs.flight.FlightRecorder` with a fake
clock (no sleeps); integration tests force real 5xx/shed traffic
through an embedded server and assert exactly one debounced dump lands
on disk, schema-valid, containing the failing request's trace id.
"""

import glob
import json
import os

import pytest

from repro.obs.exporters import trace_records
from repro.obs.flight import FlightRecorder, inspect_dump
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import TraceRecorder
from repro.obs.schema import validate_records, validate_trace_file
from repro.serve import EmbeddedServer, ServeConfig
from repro.serve.client import ServerError

TRACE_ID = "0af7651916cd43dd8448eb211c80319c"


class _Clock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


def _one_trace(name="serve.request", **attrs):
    recorder = TraceRecorder()
    with recorder.span(name, **attrs):
        with recorder.span("inner"):
            pass
    return trace_records(recorder)


class TestRing:
    def test_add_trace_remaps_ids_globally(self, tmp_path):
        clock = _Clock()
        flight = FlightRecorder(directory=str(tmp_path), clock=clock)
        # Two recorders both count span ids from 1; the ring must not
        # collide them.
        flight.add_trace(_one_trace(trace_id="a" * 32))
        flight.add_trace(_one_trace(trace_id="b" * 32))
        dump = flight.trigger("manual", force=True)
        records = [
            json.loads(line)
            for line in open(dump.path, encoding="utf-8")
            if line.strip()
        ]
        assert validate_records(records) == []
        span_ids = [r["id"] for r in records if r.get("type") == "span"]
        assert len(span_ids) == len(set(span_ids)) == 4
        assert dump.trace_ids == ["a" * 32, "b" * 32]

    def test_window_excludes_old_traces(self, tmp_path):
        clock = _Clock()
        flight = FlightRecorder(
            window_seconds=10.0, directory=str(tmp_path), clock=clock
        )
        flight.add_trace(_one_trace(trace_id="old0" + "a" * 28))
        clock.now += 100.0  # the first trace ages far out of the window
        flight.add_trace(_one_trace(trace_id="new0" + "b" * 28))
        dump = flight.trigger("manual", force=True)
        assert dump.trace_ids == ["new0" + "b" * 28]
        records = [
            json.loads(line)
            for line in open(dump.path, encoding="utf-8")
            if line.strip()
        ]
        assert validate_records(records) == []

    def test_evicted_parent_is_repaired_to_root(self, tmp_path):
        clock = _Clock()
        # Tiny ring: the parent span of the first trace gets evicted.
        flight = FlightRecorder(
            max_records=3, directory=str(tmp_path), clock=clock
        )
        flight.add_trace(_one_trace())
        flight.add_trace(_one_trace())  # pushes the first parent out
        dump = flight.trigger("manual", force=True)
        records = [
            json.loads(line)
            for line in open(dump.path, encoding="utf-8")
            if line.strip()
        ]
        # Orphan repair keeps the dump schema-valid no matter what the
        # ring evicted.
        assert validate_records(records) == []

    def test_note_records_marker_span(self, tmp_path):
        clock = _Clock()
        flight = FlightRecorder(directory=str(tmp_path), clock=clock)
        flight.note("serve.drain", grace_seconds=5.0, ignored=object())
        dump = flight.trigger("manual", force=True)
        records = [
            json.loads(line)
            for line in open(dump.path, encoding="utf-8")
            if line.strip()
        ]
        assert validate_records(records) == []
        marker = next(r for r in records if r.get("type") == "span")
        assert marker["name"] == "serve.drain"
        assert marker["attrs"] == {"grace_seconds": 5.0}
        assert marker["start"] == marker["end"]


class TestDebounce:
    def test_storm_produces_exactly_one_dump(self, tmp_path):
        clock = _Clock()
        registry = MetricsRegistry()
        flight = FlightRecorder(
            debounce_seconds=30.0,
            directory=str(tmp_path),
            registry=registry,
            clock=clock,
        )
        flight.add_trace(_one_trace(trace_id=TRACE_ID))
        dumps = [
            flight.trigger("http_500", trace_id=TRACE_ID)
            for _ in range(10)  # a 500-storm inside one debounce window
        ]
        written = [d for d in dumps if d is not None]
        assert len(written) == 1
        assert len(glob.glob(str(tmp_path / "*.trace.jsonl"))) == 1
        # Every trigger is still counted, suppressed ones separately.
        assert registry.counter(
            "serve.flight_triggers", {"reason": "http_500"}
        ).value == 10
        assert registry.counter("serve.flight_suppressed").value == 9
        assert registry.counter("serve.flight_dumps").value == 1

    def test_next_window_dumps_again(self, tmp_path):
        clock = _Clock()
        flight = FlightRecorder(
            debounce_seconds=30.0, directory=str(tmp_path), clock=clock
        )
        flight.add_trace(_one_trace())
        assert flight.trigger("http_500") is not None
        assert flight.trigger("http_500") is None
        clock.now += 31.0
        assert flight.trigger("http_500") is not None

    def test_force_bypasses_debounce(self, tmp_path):
        clock = _Clock()
        flight = FlightRecorder(
            debounce_seconds=30.0, directory=str(tmp_path), clock=clock
        )
        flight.add_trace(_one_trace())
        assert flight.trigger("http_500") is not None
        assert flight.trigger("manual", force=True) is not None

    def test_no_directory_counts_but_writes_nothing(self):
        registry = MetricsRegistry()
        flight = FlightRecorder(registry=registry, clock=_Clock())
        flight.add_trace(_one_trace())
        assert flight.trigger("http_500") is None
        assert registry.counter(
            "serve.flight_triggers", {"reason": "http_500"}
        ).value == 1
        assert registry.counter("serve.flight_dumps").value == 0


class TestServerIntegration:
    def test_500_dumps_once_with_failing_trace_id(self, tmp_path):
        flight_dir = str(tmp_path / "flight")
        cfg = ServeConfig(
            port=0,
            pool_size=2,
            flight_dir=flight_dir,
            flight_debounce_seconds=60.0,
        )
        bad = {
            "instance": {"dataset": "paper"},
            "solver": "cap",
            "solver_kwargs": {"capacities": [1]},  # value error in-worker
        }
        with EmbeddedServer(cfg) as client:
            for _ in range(3):  # a small 500-storm
                with pytest.raises(ServerError) as info:
                    client.solve(dict(bad), trace_id=TRACE_ID)
                assert info.value.status == 500
            # Exactly ONE debounced dump for the whole storm.
            dumps = sorted(glob.glob(os.path.join(flight_dir, "*.trace.jsonl")))
            assert len(dumps) == 1
            assert "http_500" in os.path.basename(dumps[0])
            assert validate_trace_file(dumps[0]) == []
            records = [
                json.loads(line)
                for line in open(dumps[0], encoding="utf-8")
                if line.strip()
            ]
            meta = records[0]
            assert meta["flight"]["reason"] == "http_500"
            assert meta["flight"]["trace_id"] == TRACE_ID
            # The failing request's spans are in the window.
            attrs_tids = {
                (r.get("attrs") or {}).get("trace_id")
                for r in records
                if r.get("type") == "span"
            }
            assert TRACE_ID in attrs_tids
            # The metrics snapshot rides along.
            stem = dumps[0][: -len(".trace.jsonl")]
            assert os.path.exists(stem + ".metrics.txt")

    def test_manual_endpoint_and_inspector(self, tmp_path):
        flight_dir = str(tmp_path / "flight")
        cfg = ServeConfig(port=0, pool_size=1, flight_dir=flight_dir)
        with EmbeddedServer(cfg) as client:
            client.solve(
                {"instance": {"dataset": "paper"}, "solver": "gt"},
                trace_id=TRACE_ID,
            )
            payload = client._request("POST", "/v1/debug/flight")
            assert payload["reason"] == "manual"
            assert TRACE_ID in payload["trace_ids"]
            assert os.path.exists(payload["dump"])
            assert os.path.exists(payload["metrics"])
        report = inspect_dump(payload["dump"])
        assert "schema: valid repro-trace/v2" in report
        assert TRACE_ID in report
        assert "serve.request" in report

    def test_manual_endpoint_without_dir_is_409(self):
        with EmbeddedServer(ServeConfig(port=0, pool_size=1)) as client:
            with pytest.raises(ServerError) as info:
                client._request("POST", "/v1/debug/flight")
            assert info.value.status == 409
            assert info.value.code == "flight_disabled"

    def test_manual_endpoint_with_tracing_off_is_409(self, tmp_path):
        cfg = ServeConfig(
            port=0,
            pool_size=1,
            trace_requests=False,
            flight_dir=str(tmp_path),
        )
        with EmbeddedServer(cfg) as client:
            with pytest.raises(ServerError) as info:
                client._request("POST", "/v1/debug/flight")
            assert info.value.status == 409
            assert info.value.code == "flight_disabled"

    def test_shed_triggers_flight_dump(self, tmp_path):
        flight_dir = str(tmp_path / "flight")
        cfg = ServeConfig(
            port=0,
            pool_size=1,
            max_queue=2,
            admission_policy="shed-expired",
            flight_dir=flight_dir,
            flight_debounce_seconds=60.0,
        )
        with EmbeddedServer(cfg) as client:
            # Fill the pool + queue with already-expired work, then push
            # one more request so the queue sheds the expired entries.
            tickets = []
            for _ in range(3):
                tickets.append(
                    client.solve(
                        {
                            "instance": {
                                "dataset": "gowalla",
                                "users": 300,
                                "events": 8,
                            },
                            "solver": "gt",
                            "options": {"deadline_seconds": 1e-6},
                            "wait": False,
                        }
                    )
                )
            try:
                tickets.append(
                    client.solve(
                        {
                            "instance": {"dataset": "paper"},
                            "solver": "gt",
                            "wait": False,
                        }
                    )
                )
            except ServerError:
                pass  # full even after shedding: also fine
            for ticket in tickets:
                client.wait_for(ticket["job"], timeout=60)
            states = {
                job["state"] for job in client.jobs()
            }
            if "shed" in states:
                dumps = glob.glob(os.path.join(flight_dir, "*.trace.jsonl"))
                assert dumps, "a shed must trigger a flight dump"
                for dump in dumps:
                    assert validate_trace_file(dump) == []
