"""End-to-end instrumentation of the engines beyond the plain solvers:
the incremental engine and the distributed master loop."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import TraceRecorder, jsonl_lines, recording, validate_records


def _records(recorder):
    return [json.loads(line) for line in jsonl_lines(recorder)]


class TestIncrementalTracing:
    def test_updates_and_resolves_are_traced(self):
        from repro.core import IncrementalRMGP
        from tests.core.conftest import random_instance

        instance = random_instance(num_players=30, num_classes=3, seed=4)
        recorder = TraceRecorder()
        engine = IncrementalRMGP(instance, seed=0, recorder=recorder)
        node = instance.graph.nodes()[0]
        engine.update_player_costs(node, [0.0] * instance.k)
        engine.resolve()

        resolve_spans = [s for s in recorder.all_spans() if s.name == "resolve"]
        assert len(resolve_spans) == 2  # construction + explicit resolve
        assert resolve_spans[1].attrs["initial_frontier"] >= 1
        updates = recorder.metrics.counter(
            "incremental.updates", {"kind": "costs"}
        )
        assert updates.value == 1
        assert validate_records(_records(recorder)) == []

    def test_tracing_does_not_change_results(self):
        from repro.core import IncrementalRMGP
        from tests.core.conftest import random_instance

        instance = random_instance(num_players=30, num_classes=3, seed=4)
        plain = IncrementalRMGP(instance, seed=0)
        traced = IncrementalRMGP(
            random_instance(num_players=30, num_classes=3, seed=4),
            seed=0,
            recorder=TraceRecorder(),
        )
        assert np.array_equal(plain.assignment, traced.assignment)


class TestDistributedTracing:
    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.datasets import gowalla_like

        return gowalla_like(num_users=60, num_events=3, seed=1)

    def test_dg_rounds_and_traffic_are_traced(self, dataset):
        from repro.distributed import DGQuery, build_cluster

        query = DGQuery(events=dataset.events, alpha=0.5, seed=0)
        cluster = build_cluster(dataset, num_slaves=2)
        recorder = TraceRecorder()
        cluster.game.recorder = recorder
        result = cluster.game.run(query)

        (root,) = recorder.spans
        assert root.name == "dg.solve"
        assert root.attrs["slaves"] == 2
        round_spans = [s for s in root.children if s.name == "dg.round"]
        assert len(round_spans) == result.num_rounds + 1  # + round 0
        assert round_spans[0].attrs["phase"] == "init"
        assert recorder.metrics.counter("dg.bytes").value == result.total_bytes
        assert (
            recorder.metrics.counter("dg.messages").value
            == result.total_messages
        )
        assert validate_records(_records(recorder)) == []

    def test_ambient_recorder_is_picked_up(self, dataset):
        from repro.distributed import DGQuery, build_cluster

        query = DGQuery(events=dataset.events, alpha=0.5, seed=0)
        with recording() as recorder:
            build_cluster(dataset, num_slaves=2).game.run(query)
        assert any(s.name == "dg.solve" for s in recorder.all_spans())

    def test_tracing_does_not_change_assignment(self, dataset):
        from repro.distributed import DGQuery, build_cluster

        query = DGQuery(events=dataset.events, alpha=0.5, seed=0)
        plain = build_cluster(dataset, num_slaves=2).game.run(query)
        with recording():
            traced = build_cluster(dataset, num_slaves=2).game.run(query)
        assert plain.assignment == traced.assignment

    def test_crash_and_recovery_events(self, dataset):
        from repro.distributed import DGQuery, build_cluster
        from repro.distributed.faults import CrashEvent, FaultPlan

        plan = FaultPlan(
            crashes=(CrashEvent("slave-0", 1, 0, downtime=0.01),)
        )
        query = DGQuery(events=dataset.events, alpha=0.5, seed=0)
        cluster = build_cluster(dataset, num_slaves=2, fault_plan=plan)
        recorder = TraceRecorder()
        cluster.game.recorder = recorder
        cluster.game.run(query)
        events = [
            event.name
            for span in recorder.all_spans()
            for event in span.events
        ]
        assert "dg.crash" in events
        assert ("dg.restart" in events) or ("dg.reshard" in events)
