"""Prometheus exposition-format conformance of the text exporter.

Checks the format rules a standard scraper relies on — ``_total``
counter suffixes, a ``+Inf`` histogram bucket, label value escaping —
and round-trips the output through a small exposition-format parser to
prove the text is machine-readable, not merely eyeballable.
"""

from __future__ import annotations

import re

from repro.obs import TraceRecorder
from repro.obs.exporters import prometheus_text

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def parse_exposition(text: str):
    """Minimal exposition-format parser: {(name, labels): value}."""
    types = {}
    samples = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        labels = {}
        if match.group("labels"):
            matched_len = 0
            for label in _LABEL.finditer(match.group("labels")):
                value = label.group("value")
                value = (
                    value.replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                labels[label.group("key")] = value
                matched_len = label.end()
            rest = match.group("labels")[matched_len:]
            assert rest.strip(",") == "", f"trailing junk: {rest!r}"
        samples[(match.group("name"), tuple(sorted(labels.items())))] = (
            float(match.group("value"))
        )
    return types, samples


class TestCounterSuffix:
    def test_counters_carry_the_total_suffix(self):
        rec = TraceRecorder()
        rec.count("solver.moves", 2, solver="RMGP_gt")
        text = prometheus_text(rec.metrics)
        assert "# TYPE repro_solver_moves_total counter" in text
        assert 'repro_solver_moves_total{solver="RMGP_gt"} 2' in text
        assert "repro_solver_moves{" not in text

    def test_gauges_and_histograms_are_unsuffixed(self):
        rec = TraceRecorder()
        rec.gauge("solver.table_bytes", 99)
        rec.observe("solver.frontier", 1.0)
        text = prometheus_text(rec.metrics)
        assert "repro_solver_table_bytes 99" in text
        assert "repro_solver_table_bytes_total" not in text
        assert "repro_solver_frontier_bucket" in text


class TestLabelEscaping:
    def test_special_characters_are_escaped(self):
        rec = TraceRecorder()
        rec.count("events", 1, detail='quote " slash \\ line\nbreak')
        text = prometheus_text(rec.metrics)
        (sample_line,) = [
            line for line in text.splitlines()
            if line.startswith("repro_events_total{")
        ]
        assert '\\"' in sample_line
        assert "\\\\" in sample_line
        assert "\\n" in sample_line
        assert "\n" not in sample_line[1:]

    def test_escaped_labels_round_trip(self):
        original = 'quote " slash \\ line\nbreak'
        rec = TraceRecorder()
        rec.count("events", 1, detail=original)
        _, samples = parse_exposition(prometheus_text(rec.metrics))
        ((_, labels),) = [key for key in samples]
        assert dict(labels)["detail"] == original


class TestRoundTrip:
    def test_full_registry_parses_back(self):
        rec = TraceRecorder()
        rec.count("solver.moves", 5, solver="gt")
        rec.count("solver.moves", 2, solver="b")
        rec.gauge("solver.table_bytes", 1024, solver="gt")
        histogram = rec.metrics.histogram("lat", boundaries=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(9.0)
        types, samples = parse_exposition(prometheus_text(rec.metrics))
        assert types["repro_solver_moves_total"] == "counter"
        assert types["repro_solver_table_bytes"] == "gauge"
        assert types["repro_lat"] == "histogram"
        assert samples[
            ("repro_solver_moves_total", (("solver", "gt"),))
        ] == 5
        assert samples[
            ("repro_solver_moves_total", (("solver", "b"),))
        ] == 2
        # +Inf bucket equals the total count (cumulative semantics).
        assert samples[("repro_lat_bucket", (("le", "+Inf"),))] == 3
        assert samples[("repro_lat_bucket", (("le", "1"),))] == 1
        assert samples[("repro_lat_bucket", (("le", "2"),))] == 2
        assert samples[("repro_lat_count", ())] == 3
        assert samples[("repro_lat_sum", ())] == 11.0
