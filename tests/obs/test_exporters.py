"""Exporters: JSONL round-trip + schema, Prometheus text, summary tree."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    ManualClock,
    TraceRecorder,
    jsonl_lines,
    prometheus_text,
    summary_tree,
    trace_records,
    validate_records,
    validate_trace_file,
    write_jsonl,
)


def sample_recorder() -> TraceRecorder:
    clock = ManualClock()
    rec = TraceRecorder(clock=clock, meta={"run": "test"})
    with rec.span("solve", solver="RMGP_gt", n=10, k=3):
        clock.advance(0.5)
        with rec.span("round", round=1) as round_span:
            clock.advance(0.25)
            rec.event("cycle_detected", round=1)
        rec.round_end(
            round_span, "RMGP_gt", 1,
            deviations=2, examined=5, cost_evaluations=5,
            frontier_fn=lambda: 3,
        )
    rec.gauge("solver.table_bytes", 240, solver="RMGP_gt")
    return rec


class TestJsonl:
    def test_meta_record_comes_first(self):
        records = list(trace_records(sample_recorder()))
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == "repro-trace/v2"
        assert records[0]["run"] == "test"

    def test_lines_are_valid_json(self):
        for line in jsonl_lines(sample_recorder()):
            json.loads(line)

    def test_records_validate_against_schema(self):
        records = [json.loads(l) for l in jsonl_lines(sample_recorder())]
        assert validate_records(records) == []

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        count = write_jsonl(sample_recorder(), path)
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == count
        assert validate_trace_file(path) == []

    def test_validator_catches_missing_meta(self):
        records = [json.loads(l) for l in jsonl_lines(sample_recorder())]
        errors = validate_records(records[1:])
        assert errors and "meta" in errors[0]

    def test_validator_catches_orphan_span(self):
        records = [json.loads(l) for l in jsonl_lines(sample_recorder())]
        for record in records:
            if record["type"] == "span" and record["parent"] is not None:
                record["parent"] = 999
        assert validate_records(records)

    def test_round_telemetry_lands_in_span_attrs(self):
        records = [json.loads(l) for l in jsonl_lines(sample_recorder())]
        (round_record,) = [
            r for r in records
            if r["type"] == "span" and r["name"] == "round"
        ]
        assert round_record["attrs"]["deviations"] == 2
        assert round_record["attrs"]["players_examined"] == 5
        assert round_record["attrs"]["frontier"] == 3


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = prometheus_text(sample_recorder().metrics)
        assert '# TYPE repro_solver_moves_total counter' in text
        assert 'repro_solver_moves_total{solver="RMGP_gt"} 2' in text
        assert 'repro_solver_table_bytes{solver="RMGP_gt"} 240' in text

    def test_histogram_buckets_are_cumulative(self):
        rec = TraceRecorder()
        histogram = rec.metrics.histogram("h", boundaries=(1, 2))
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(10)
        text = prometheus_text(rec.metrics)
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="2"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text
        assert "repro_h_sum 12" in text
        assert "repro_h_count 3" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(TraceRecorder().metrics) == ""


class TestSummaryTree:
    def test_tree_shape_and_attrs(self):
        text = summary_tree(sample_recorder())
        lines = text.splitlines()
        assert lines[0].startswith("solve: 750.000 ms")
        assert "solver=RMGP_gt" in lines[0]
        assert lines[1].startswith("  round: 250.000 ms")
        assert "deviations=2" in lines[1]
        assert "    ! cycle_detected" in lines
        assert "metrics:" in text

    def test_max_depth_truncates(self):
        rec = TraceRecorder()
        with rec.span("a"):
            with rec.span("b"):
                with rec.span("c"):
                    pass
        text = summary_tree(rec, max_depth=1)
        assert "c:" not in text
        assert "b:" in text


class TestByteIdenticalAssignments:
    @pytest.mark.parametrize("solver", ["b", "gt", "all", "mg", "sync"])
    def test_recording_does_not_change_assignments(self, solver):
        import numpy as np

        from repro.api import partition
        from repro.datasets import gowalla_like
        from repro.core.instance import RMGPInstance
        from repro.obs import recording

        data = gowalla_like(num_users=120, num_events=6, seed=11)
        instance = RMGPInstance(
            data.graph, data.event_ids, data.cost_matrix(), alpha=0.5
        )
        plain = partition(instance, solver=solver, seed=3)
        with recording():
            traced = partition(instance, solver=solver, seed=3)
        assert np.array_equal(plain.assignment, traced.assignment)
        assert plain.total_deviations == traced.total_deviations
