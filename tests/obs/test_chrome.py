"""Chrome trace-event export: structure, tracks, and the validator."""

from __future__ import annotations

import json

from repro.obs import ManualClock, TraceRecorder
from repro.obs.chrome import (
    chrome_trace,
    main,
    validate_chrome,
    validate_chrome_file,
    write_chrome_trace,
)
from repro.obs.context import RemoteSpan


def sample_recorder() -> TraceRecorder:
    clock = ManualClock()
    rec = TraceRecorder(clock=clock)
    with rec.span("dg.solve") as solve:
        clock.advance(0.5)
        with rec.span("dg.round", round=1):
            clock.advance(0.25)
            rec.event("dg.crash", slave="slave-1")
    rec.adopt(
        [
            RemoteSpan(
                name="slave.compute",
                node="slave-0",
                start=0.1,
                end=0.3,
                parent_span_id=solve.span_id,
            )
        ]
    )
    return rec


class TestExport:
    def test_spans_become_complete_events(self):
        trace = chrome_trace(sample_recorder())
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert names == {"dg.solve", "dg.round", "slave.compute"}
        solve = next(e for e in complete if e["name"] == "dg.solve")
        assert solve["ts"] == 0.0
        assert solve["dur"] == 750_000.0  # 0.75 s in microseconds

    def test_each_node_gets_a_named_track(self):
        trace = chrome_trace(sample_recorder())
        meta = {
            e["args"]["name"]: e["tid"]
            for e in trace["traceEvents"]
            if e["ph"] == "M"
        }
        assert set(meta) == {"master", "slave-0"}
        compute = next(
            e for e in trace["traceEvents"]
            if e.get("name") == "slave.compute"
        )
        assert compute["tid"] == meta["slave-0"]

    def test_events_become_instants_on_the_owner_track(self):
        trace = chrome_trace(sample_recorder())
        (instant,) = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "dg.crash"
        assert instant["s"] == "t"
        assert instant["args"]["slave"] == "slave-1"

    def test_timestamps_are_normalized_to_zero(self):
        trace = chrome_trace(sample_recorder())
        stamps = [
            e["ts"] for e in trace["traceEvents"] if e["ph"] != "M"
        ]
        assert min(stamps) == 0.0
        assert all(ts >= 0.0 for ts in stamps)

    def test_empty_recorder_exports_empty_event_list(self):
        trace = chrome_trace(TraceRecorder())
        assert trace["traceEvents"] == []
        assert validate_chrome(trace) == []


class TestValidator:
    def test_valid_export_passes(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(sample_recorder(), path)
        assert count == len(
            json.loads(open(path).read())["traceEvents"]
        )
        assert validate_chrome_file(path) == []
        assert main([path]) == 0

    def test_malformed_inputs_are_reported(self):
        assert validate_chrome([]) == ["top level must be a JSON object"]
        assert validate_chrome({}) == ["'traceEvents' must be a list"]
        errors = validate_chrome(
            {
                "traceEvents": [
                    {"ph": "X", "pid": 1, "tid": 0, "ts": -1, "dur": 2},
                    {"name": "ok", "ph": "X", "pid": "x", "tid": 0,
                     "ts": 0, "dur": 1},
                    {"name": "ok", "ph": "X", "pid": 1, "tid": 0,
                     "ts": 0},
                ]
            }
        )
        assert any("'name'" in e for e in errors)
        assert any("'ts'" in e for e in errors)
        assert any("'pid'" in e for e in errors)
        assert any("'dur'" in e for e in errors)

    def test_cli_exit_codes(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "X"}]}')
        assert main([str(bad)]) == 1
        assert main([]) == 2
        missing = tmp_path / "missing.json"
        assert main([str(missing)]) == 1
