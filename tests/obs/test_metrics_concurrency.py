"""Registry behavior under concurrent solves: locking, merge, quantiles."""

import threading

from repro.obs.metrics import MetricsRegistry


class TestConcurrentUpdates:
    def test_counter_increments_are_not_lost(self):
        registry = MetricsRegistry()
        threads_n, per_thread = 8, 5_000

        def _work():
            counter = registry.counter("hits", {"worker": "all"})
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=_work) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        value = registry.counter("hits", {"worker": "all"}).value
        assert value == threads_n * per_thread

    def test_histogram_observations_are_not_lost(self):
        registry = MetricsRegistry()
        threads_n, per_thread = 6, 2_000

        def _work(worker):
            histogram = registry.histogram("latency")
            for i in range(per_thread):
                histogram.observe(float(i % 50))

        threads = [
            threading.Thread(target=_work, args=(i,))
            for i in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        histogram = registry.histogram("latency")
        assert histogram.count == threads_n * per_thread
        assert sum(histogram.bucket_counts) == histogram.count

    def test_concurrent_instrument_creation_is_safe(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(8)

        def _work(worker):
            barrier.wait()
            for i in range(200):
                registry.counter("shared", {"k": str(i % 10)}).inc()

        threads = [
            threading.Thread(target=_work, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(
            instrument.value
            for instrument in registry.instruments()
            if instrument.name == "shared"
        )
        assert total == 8 * 200


class TestMerge:
    def test_merge_accumulates_counters(self):
        target, source = MetricsRegistry(), MetricsRegistry()
        target.counter("jobs", {"state": "done"}).inc(2)
        source.counter("jobs", {"state": "done"}).inc(3)
        source.counter("jobs", {"state": "failed"}).inc()
        target.merge(source)
        assert target.counter("jobs", {"state": "done"}).value == 5
        assert target.counter("jobs", {"state": "failed"}).value == 1

    def test_merge_combines_histograms(self):
        target, source = MetricsRegistry(), MetricsRegistry()
        boundaries = (1.0, 10.0, 100.0)
        target.histogram("ms", boundaries=boundaries).observe(5.0)
        source.histogram("ms", boundaries=boundaries).observe(50.0)
        source.histogram("ms", boundaries=boundaries).observe(0.5)
        target.merge(source)
        merged = target.histogram("ms", boundaries=boundaries)
        assert merged.count == 3
        assert merged.sum == 55.5

    def test_merge_takes_latest_gauge(self):
        target, source = MetricsRegistry(), MetricsRegistry()
        target.gauge("resident").set(2.0)
        source.gauge("resident").set(7.0)
        target.merge(source)
        assert target.gauge("resident").value == 7.0

    def test_merge_is_safe_under_concurrent_merges(self):
        target = MetricsRegistry()

        def _work():
            source = MetricsRegistry()
            source.counter("merged").inc(10)
            source.histogram("h", boundaries=(1.0, 2.0)).observe(1.5)
            for _ in range(100):
                target.merge(source)

        threads = [threading.Thread(target=_work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert target.counter("merged").value == 4 * 100 * 10
        assert target.histogram("h", boundaries=(1.0, 2.0)).count == 400


class TestQuantile:
    def test_quantile_returns_bucket_boundary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "ms", boundaries=(1.0, 10.0, 100.0, 1000.0)
        )
        for _ in range(99):
            histogram.observe(5.0)
        histogram.observe(500.0)
        assert histogram.quantile(0.5) == 10.0
        assert histogram.quantile(0.99) == 10.0
        assert histogram.quantile(1.0) == 1000.0

    def test_quantile_of_empty_histogram_is_none(self):
        # An empty histogram has no quantiles; 0.0 (the old answer)
        # reads as "p99 is great" on a server that saw zero traffic.
        registry = MetricsRegistry()
        histogram = registry.histogram("ms", boundaries=(1.0, 2.0))
        assert histogram.quantile(0.5) is None
        assert histogram.quantile(0.0) is None
        assert histogram.quantile(1.0) is None

    def test_quantile_single_observation_single_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("ms", boundaries=(10.0,))
        histogram.observe(5.0)
        # One observation answers every quantile, including the edges.
        assert histogram.quantile(0.0) == 10.0
        assert histogram.quantile(0.5) == 10.0
        assert histogram.quantile(1.0) == 10.0

    def test_quantile_edge_ranks(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("ms", boundaries=(1.0, 10.0, 100.0))
        histogram.observe(0.5)
        histogram.observe(50.0)
        # q=0 is the first non-empty bucket, q=1 the bucket covering the
        # largest observation — neither degenerates to 0.0 or +inf.
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 100.0

    def test_quantile_overflow_bucket_reports_last_boundary(self):
        # The +inf bucket has no upper bound; the documented answer is
        # the last finite boundary, never inf/NaN.
        registry = MetricsRegistry()
        histogram = registry.histogram("ms", boundaries=(1.0,))
        histogram.observe(99.0)
        assert histogram.quantile(0.99) == 1.0
        assert histogram.quantile(0.0) == 1.0
