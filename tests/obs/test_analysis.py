"""Critical-path analysis on hand-built traces (exact arithmetic)."""

from __future__ import annotations

from repro.obs.analysis import (
    analyze_records,
    analyze_trace_file,
    format_report,
)


def _meta():
    return {"type": "meta", "schema": "repro-trace/v2"}


def _span(sid, name, start, end, parent=None, node=None, attrs=None):
    record = {
        "type": "span",
        "id": sid,
        "parent": parent,
        "name": name,
        "depth": 0,
        "start": start,
        "end": end,
        "attrs": attrs or {},
    }
    if node is not None:
        record["node"] = node
    return record


def two_slave_round():
    """One round: slave-0 computes 1s, slave-1 computes 3s."""
    return [
        _meta(),
        _span(0, "dg.solve", 0.0, 10.0),
        _span(1, "dg.round", 0.0, 10.0, parent=0, attrs={"round": 1}),
        _span(2, "dg.phase", 0.0, 5.0, parent=1, attrs={"color": 0}),
        _span(3, "slave.compute", 0.0, 1.0, parent=2, node="slave-0"),
        _span(4, "slave.compute", 0.0, 3.0, parent=2, node="slave-1"),
        _span(
            5, "net.deliver", 3.0, 4.0, parent=2, node="net",
            attrs={"attempts": 3, "delivered": True},
        ),
        _span(
            6, "net.deliver", 3.0, 3.5, parent=2, node="net",
            attrs={"attempts": 1, "delivered": True},
        ),
    ]


class TestRoundArithmetic:
    def test_straggler_idle_and_imbalance(self):
        report = analyze_records(two_slave_round())
        (round_report,) = report.rounds
        assert round_report.round_index == 1
        assert round_report.straggler == "slave-1"
        assert round_report.straggler_seconds == 3.0
        # Charged = max(1, 3) = 3; slave-0 idles for the difference.
        assert round_report.compute_seconds == 3.0
        assert round_report.idle_seconds == 2.0
        # max busy 3 / mean busy 2.
        assert round_report.imbalance == 1.5
        assert report.straggler == "slave-1"

    def test_retry_amplification(self):
        report = analyze_records(two_slave_round())
        (round_report,) = report.rounds
        assert round_report.deliveries == 2
        assert round_report.attempts == 4
        assert round_report.retry_amplification == 2.0
        assert report.retry_amplification == 2.0

    def test_critical_path_names_slowest_sibling(self):
        report = analyze_records(two_slave_round())
        compute = [
            s for s in report.critical_path if s.name == "slave.compute"
        ]
        assert len(compute) == 1
        assert compute[0].node == "slave-1"
        assert compute[0].seconds == 3.0
        assert compute[0].slack == 2.0

    def test_aggregate_exchange_counts_messages(self):
        records = [
            _meta(),
            _span(0, "dg.round", 0.0, 1.0, attrs={"round": 0}),
            _span(
                1, "net.exchange", 0.0, 0.5, parent=0, node="net",
                attrs={"messages": 4},
            ),
        ]
        (round_report,) = analyze_records(records).rounds
        assert round_report.deliveries == 4
        assert round_report.attempts == 4
        assert round_report.retry_amplification == 1.0
        assert round_report.net_seconds == 0.5


class TestReportFormatting:
    def test_empty_trace(self):
        report = analyze_records([_meta()])
        assert report.rounds == []
        assert report.straggler is None
        assert "nothing to analyze" in format_report(report)

    def test_report_mentions_all_signals(self):
        text = format_report(analyze_records(two_slave_round()))
        assert "straggler=slave-1" in text
        assert "idle=" in text
        assert "imbalance=1.50x" in text
        assert "amplification 2.00x" in text
        assert "critical path" in text

    def test_file_round_trip(self, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in two_slave_round()) + "\n"
        )
        report = analyze_trace_file(str(path))
        assert report.straggler == "slave-1"
