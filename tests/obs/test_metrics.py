"""Metrics registry: counters, gauges, histogram bucketing."""

from __future__ import annotations

import pytest

from repro.obs import DEFAULT_BOUNDARIES, Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("solver.moves").inc(3)
        registry.counter("solver.moves").inc()
        assert registry.counter("solver.moves").value == 4

    def test_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("solver.moves").inc(-1)

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("solver.moves", {"solver": "a"}).inc(1)
        registry.counter("solver.moves", {"solver": "b"}).inc(2)
        assert registry.counter("solver.moves", {"solver": "a"}).value == 1
        assert registry.counter("solver.moves", {"solver": "b"}).value == 2

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("m", {"a": 1, "b": 2}).inc()
        assert registry.counter("m", {"b": 2, "a": 1}).value == 1


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("solver.table_bytes").set(10)
        registry.gauge("solver.table_bytes").set(7)
        assert registry.gauge("solver.table_bytes").value == 7


class TestHistogram:
    def test_le_bucketing(self):
        # Boundaries [1, 2, 5]: buckets are <=1, <=2, <=5, +inf.
        histogram = Histogram("h", boundaries=(1, 2, 5))
        for value in (0, 1, 1.5, 2, 5, 6):
            histogram.observe(value)
        assert histogram.bucket_counts == [2, 2, 1, 1]
        assert histogram.count == 6
        assert histogram.sum == pytest.approx(15.5)

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus `le` semantics: an observation equal to a boundary
        # counts in that boundary's bucket, not the next one.
        histogram = Histogram("h", boundaries=(10, 20))
        histogram.observe(10)
        histogram.observe(20)
        assert histogram.bucket_counts == [1, 1, 0]

    def test_default_boundaries_cover_counts_and_micros(self):
        histogram = Histogram("h")
        assert len(histogram.bucket_counts) == len(DEFAULT_BOUNDARIES) + 1
        histogram.observe(0)
        histogram.observe(10**9)  # overflow bucket
        assert histogram.bucket_counts[0] == 1
        assert histogram.bucket_counts[-1] == 1

    def test_rejects_non_increasing_boundaries(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", boundaries=(1, 1, 2))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", boundaries=())


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m")

    def test_histogram_boundary_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", boundaries=(1, 2))
        with pytest.raises(ValueError, match="different boundaries"):
            registry.histogram("h", boundaries=(1, 2, 3))

    def test_iteration_is_name_ordered(self):
        registry = MetricsRegistry()
        registry.counter("z")
        registry.counter("a")
        registry.gauge("m")
        assert [m.name for m in registry] == ["a", "m", "z"]
