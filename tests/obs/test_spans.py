"""Span lifecycle: nesting, the ambient stack, manual clocks."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_RECORDER,
    ManualClock,
    TraceRecorder,
    current_recorder,
    recording,
    use_recorder,
)


class TestSpanNesting:
    def test_children_attach_to_open_parent(self):
        rec = TraceRecorder()
        with rec.span("solve", solver="x") as root:
            with rec.span("round", round=1) as child:
                with rec.span("build_table") as grandchild:
                    pass
        assert child in root.children
        assert grandchild in child.children
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id

    def test_siblings_share_parent(self):
        rec = TraceRecorder()
        with rec.span("solve") as root:
            with rec.span("round", round=1):
                pass
            with rec.span("round", round=2):
                pass
        assert [s.name for s in root.children] == ["round", "round"]
        assert [s.attrs["round"] for s in root.children] == [1, 2]

    def test_walk_is_depth_first(self):
        rec = TraceRecorder()
        with rec.span("a"):
            with rec.span("b"):
                with rec.span("c"):
                    pass
            with rec.span("d"):
                pass
        (root,) = rec.spans
        assert [s.name for s, _ in root.walk()] == ["a", "b", "c", "d"]

    def test_close_pops_leftover_children(self):
        rec = TraceRecorder()
        parent = rec.open_span("parent")
        rec.open_span("leftover")  # never closed explicitly
        rec.close_span(parent)
        assert rec.current_span is None
        (root,) = rec.spans
        assert root.end is not None
        assert root.children[0].end is not None  # closed with its parent

    def test_span_ids_unique(self):
        rec = TraceRecorder()
        with rec.span("a"):
            with rec.span("b"):
                pass
        with rec.span("c"):
            pass
        ids = [s.span_id for s in rec.all_spans()]
        assert len(ids) == len(set(ids))


class TestManualClock:
    def test_durations_are_exact(self):
        clock = ManualClock()
        rec = TraceRecorder(clock=clock)
        with rec.span("solve") as root:
            clock.advance(1.5)
            with rec.span("round") as child:
                clock.advance(0.25)
        assert root.duration == pytest.approx(1.75)
        assert child.duration == pytest.approx(0.25)
        assert child.start == pytest.approx(1.5)

    def test_events_are_timestamped(self):
        clock = ManualClock()
        rec = TraceRecorder(clock=clock)
        with rec.span("solve") as root:
            clock.advance(2.0)
            rec.event("cancel", klass=3)
        (event,) = root.events
        assert event.name == "cancel"
        assert event.time == pytest.approx(2.0)
        assert event.attrs == {"klass": 3}


class TestAmbientStack:
    def test_default_is_null_recorder(self):
        assert current_recorder() is NULL_RECORDER
        assert not current_recorder().enabled

    def test_use_recorder_pushes_and_pops(self):
        rec = TraceRecorder()
        with use_recorder(rec):
            assert current_recorder() is rec
        assert current_recorder() is NULL_RECORDER

    def test_recording_yields_trace_recorder(self):
        with recording() as rec:
            assert isinstance(rec, TraceRecorder)
            assert current_recorder() is rec
            with rec.span("x"):
                pass
        assert len(rec.spans) == 1

    def test_null_recorder_span_yields_none(self):
        with NULL_RECORDER.span("anything", key="value") as span:
            assert span is None
        NULL_RECORDER.count("c", 1)
        NULL_RECORDER.observe("h", 2.0)
        NULL_RECORDER.event("e")
        NULL_RECORDER.round_end(
            None, "s", 1, deviations=0, examined=0,
            frontier_fn=lambda: 1 / 0,  # must never be called
            potential_fn=lambda: 1 / 0,
        )
