"""Memory recorder: per-span peak/net heap attrs via tracemalloc."""

from __future__ import annotations

import tracemalloc

from repro.obs.memory import (
    MemoryRecorder,
    memory_recording,
    memory_summary,
)


class TestMemoryRecording:
    def test_spans_gain_memory_attrs(self):
        with memory_recording() as rec:
            with rec.span("allocate"):
                block = bytearray(512 * 1024)
            del block
        (span,) = [s for s in rec.all_spans() if s.name == "allocate"]
        assert span.attrs["mem_peak_bytes"] >= 500 * 1024
        assert "mem_net_bytes" in span.attrs

    def test_net_reflects_released_memory(self):
        with memory_recording() as rec:
            with rec.span("transient"):
                block = bytearray(512 * 1024)
                del block
        (span,) = [s for s in rec.all_spans() if s.name == "transient"]
        # The block is gone by span close: peak sees it, net does not.
        assert span.attrs["mem_peak_bytes"] >= 500 * 1024
        assert span.attrs["mem_net_bytes"] < 500 * 1024

    def test_child_peak_propagates_to_parent(self):
        with memory_recording() as rec:
            with rec.span("parent"):
                with rec.span("child"):
                    block = bytearray(1024 * 1024)
                    del block
        spans = {s.name: s for s in rec.all_spans()}
        child_peak = spans["child"].attrs["mem_peak_bytes"]
        assert child_peak >= 1000 * 1024
        # Closing the child must not hide its high-water mark.
        assert spans["parent"].attrs["mem_peak_bytes"] >= child_peak

    def test_degrades_gracefully_without_tracemalloc(self):
        assert not tracemalloc.is_tracing()
        rec = MemoryRecorder()
        with rec.span("untracked"):
            pass
        (span,) = rec.spans
        assert "mem_peak_bytes" not in span.attrs
        assert "no memory telemetry" in memory_summary(rec)

    def test_context_manager_stops_tracemalloc_it_started(self):
        assert not tracemalloc.is_tracing()
        with memory_recording():
            assert tracemalloc.is_tracing()
        assert not tracemalloc.is_tracing()

    def test_preexisting_tracemalloc_is_left_running(self):
        tracemalloc.start()
        try:
            with memory_recording():
                pass
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_summary_ranks_by_peak(self):
        with memory_recording() as rec:
            with rec.span("big"):
                block = bytearray(2 * 1024 * 1024)
                del block
            with rec.span("small"):
                block = bytearray(64 * 1024)
                del block
        text = memory_summary(rec, top=2)
        lines = text.splitlines()
        assert "big" in lines[1]
        assert "small" in lines[2]

    def test_attrs_survive_jsonl_export(self):
        import json

        from repro.obs.exporters import jsonl_lines
        from repro.obs.schema import validate_records

        with memory_recording() as rec:
            with rec.span("work"):
                block = bytearray(128 * 1024)
                del block
        records = [json.loads(line) for line in jsonl_lines(rec)]
        assert validate_records(records) == []
        (span,) = [
            r for r in records
            if r["type"] == "span" and r["name"] == "work"
        ]
        assert span["attrs"]["mem_peak_bytes"] >= 120 * 1024
