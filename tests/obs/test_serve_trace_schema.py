"""Serve-produced traces round-trip through the repro-trace/v2 validator.

The trace schema was born for solver/DG traces; the serving layer adds
new span names (``serve.request``, ``serve.queue_wait``, ``job.solve``),
per-request meta keys (job/trace_id/solver) and grafts shm-worker
RemoteSpans under a *served* job.  These tests pin that all of it
remains valid ``repro-trace/v2`` — via the in-process recorder shapes
the serve stack builds, and via ``python -m repro.obs.schema`` on a
written file (exactly what the CI ``serve-trace`` job runs on flight
dumps).
"""

from __future__ import annotations

from repro.obs.context import SpanCollector
from repro.obs.exporters import jsonl_lines, write_jsonl
from repro.obs.recorder import TraceRecorder
from repro.obs.schema import main as schema_main
from repro.obs.schema import validate_records, validate_trace_file

TRACE_ID = "0af7651916cd43dd8448eb211c80319c"


def _served_request_recorder(adopt_workers=False):
    """The span shape :class:`repro.serve.jobs.JobTable` produces."""
    recorder = TraceRecorder()
    recorder.meta.update(
        {"job": "job-0", "trace_id": TRACE_ID, "solver": "gt"}
    )
    request = recorder.open_span(
        "serve.request",
        job="job-0",
        solver="gt",
        priority="interactive",
        trace_id=TRACE_ID,
    )
    queue = recorder.open_span("serve.queue_wait", job="job-0")
    recorder.close_span(queue)
    with recorder.span("job.solve", job="job-0", solver="gt") as job_span:
        with recorder.span("solve"):
            with recorder.span("round", index=0):
                recorder.event("deviation", player=3)
        if adopt_workers:
            # The same adoption path the shm engine uses: explicit-time
            # RemoteSpans grafted under the master-side parent span.
            collector = SpanCollector()
            for chunk in (0, 1):
                start = recorder.clock()
                collector.record(
                    "worker.compute",
                    node="worker-0",
                    start=start,
                    end=recorder.clock(),
                    parent_span_id=job_span.span_id,
                    chunk=chunk,
                )
            recorder.adopt(collector.drain())
    request.attrs["state"] = "done"
    recorder.close_span(request)
    return recorder


class TestServeSpansValidate:
    def test_serve_span_names_round_trip(self, tmp_path):
        recorder = _served_request_recorder()
        records = [
            __import__("json").loads(line)
            for line in jsonl_lines(recorder)
        ]
        assert validate_records(records) == []
        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["trace_id"] == TRACE_ID
        names = [r["name"] for r in records if r.get("type") == "span"]
        assert names[0] == "serve.request"
        assert "serve.queue_wait" in names
        assert "job.solve" in names

    def test_adopted_worker_spans_under_served_job(self):
        recorder = _served_request_recorder(adopt_workers=True)
        records = [
            __import__("json").loads(line)
            for line in jsonl_lines(recorder)
        ]
        assert validate_records(records) == []
        spans = {r["id"]: r for r in records if r.get("type") == "span"}
        workers = [
            r for r in spans.values() if r["name"] == "worker.compute"
        ]
        assert len(workers) == 2
        for worker in workers:
            assert worker["node"] == "worker-0"
            chain = []
            cursor = worker
            while cursor is not None:
                chain.append(cursor["name"])
                cursor = spans.get(cursor.get("parent"))
            # Grafted under the served request, not floating as roots.
            assert chain[-1] == "serve.request"
            assert "job.solve" in chain

    def test_written_file_passes_module_validator(self, tmp_path, capsys):
        path = str(tmp_path / "served.trace.jsonl")
        write_jsonl(_served_request_recorder(adopt_workers=True), path)
        assert validate_trace_file(path) == []
        # The CI serve-trace job runs exactly this command on dumps.
        assert schema_main([path]) == 0
        assert "valid" in capsys.readouterr().out


class TestLiveServeTraceRoundTrip:
    def test_http_fetched_trace_validates_via_module(self, tmp_path, capsys):
        from repro.serve import EmbeddedServer, ServeConfig

        with EmbeddedServer(ServeConfig(port=0, pool_size=1)) as client:
            payload = client.solve(
                {"instance": {"dataset": "paper"}, "solver": "gt"},
                trace_id=TRACE_ID,
            )
            records = client.job_trace(payload["job"])
        assert validate_records(records) == []
        path = tmp_path / "wire.trace.jsonl"
        import json

        path.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        )
        assert schema_main([str(path)]) == 0
        capsys.readouterr()
