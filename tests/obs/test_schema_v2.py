"""Schema v2 validation: new checks, clear messages, exit codes."""

from __future__ import annotations

import json

from repro.obs.schema import main, validate_records, validate_trace_file


def _meta(schema="repro-trace/v2"):
    return {"type": "meta", "schema": schema}


def _span(sid, parent=None, start=0.0, end=1.0, **extra):
    record = {
        "type": "span",
        "id": sid,
        "parent": parent,
        "name": f"span-{sid}",
        "depth": 0,
        "start": start,
        "end": end,
        "attrs": {},
    }
    record.update(extra)
    return record


class TestVersionAcceptance:
    def test_v1_traces_still_validate(self):
        assert validate_records([_meta("repro-trace/v1"), _span(0)]) == []

    def test_v2_traces_validate(self):
        assert validate_records([_meta(), _span(0, node="slave-0")]) == []

    def test_unknown_version_is_rejected(self):
        errors = validate_records([_meta("repro-trace/v99")])
        assert errors and "repro-trace/v99" in errors[0]


class TestStricterChecks:
    def test_malformed_parent_id_type(self):
        errors = validate_records([_meta(), _span(0), _span(1, parent="0")])
        assert any("'parent' has type str" in e for e in errors)

    def test_orphan_span_message_names_both_ids(self):
        errors = validate_records([_meta(), _span(5, parent=99)])
        assert any(
            "orphan" in e and "99" in e and "5" in e for e in errors
        )

    def test_duplicate_span_ids_fail(self):
        errors = validate_records([_meta(), _span(0), _span(0)])
        assert any("duplicate span id 0" in e for e in errors)

    def test_non_monotonic_span_fails_with_clear_message(self):
        errors = validate_records([_meta(), _span(0, start=2.0, end=1.0)])
        assert any("non-monotonic" in e for e in errors)

    def test_event_outside_its_span_fails(self):
        records = [
            _meta(),
            _span(0, start=0.0, end=1.0),
            {
                "type": "event",
                "span": 0,
                "name": "late",
                "time": 2.0,
                "attrs": {},
            },
        ]
        errors = validate_records(records)
        assert any("outside span 0" in e for e in errors)

    def test_event_within_epsilon_passes(self):
        records = [
            _meta(),
            _span(0, start=0.0, end=1.0),
            {
                "type": "event",
                "span": 0,
                "name": "edge",
                "time": 1.0 + 1e-9,
                "attrs": {},
            },
        ]
        assert validate_records(records) == []

    def test_malformed_node_type(self):
        errors = validate_records([_meta(), _span(0, node=3)])
        assert any("optional 'node'" in e for e in errors)


class TestCommandExitCodes:
    def _write(self, tmp_path, records):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n"
        )
        return str(path)

    def test_valid_file_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, [_meta(), _span(0)])
        assert main([path]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_file_exits_nonzero_and_lists_errors(
        self, tmp_path, capsys
    ):
        path = self._write(
            tmp_path, [_meta(), _span(0, start=5.0, end=1.0)]
        )
        assert main([path]) == 1
        out = capsys.readouterr().out
        assert "schema violation" in out
        assert "non-monotonic" in out

    def test_usage_error_exits_two(self):
        assert main([]) == 2
        assert main(["a", "b"]) == 2

    def test_invalid_json_line_is_located(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(_meta()) + "\n{broken\n")
        errors = validate_trace_file(str(path))
        assert any("line 2" in e for e in errors)
