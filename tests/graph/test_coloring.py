"""Unit and property tests for graph coloring (RMGP_is substrate)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    SocialGraph,
    color_groups,
    dsatur_coloring,
    erdos_renyi,
    greedy_coloring,
    is_proper_coloring,
    num_colors,
    welsh_powell_coloring,
)

ALGORITHMS = [greedy_coloring, welsh_powell_coloring, dsatur_coloring]


def complete_graph(n: int) -> SocialGraph:
    return SocialGraph.from_edges(
        [(i, j) for i in range(n) for j in range(i + 1, n)]
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestAllAlgorithms:
    def test_empty_graph(self, algorithm):
        assert algorithm(SocialGraph()) == {}

    def test_single_node(self, algorithm):
        assert algorithm(SocialGraph(nodes=[7])) == {7: 0}

    def test_proper_on_triangle(self, algorithm):
        graph = complete_graph(3)
        coloring = algorithm(graph)
        assert is_proper_coloring(graph, coloring)
        assert num_colors(coloring) == 3

    def test_bounded_by_max_degree_plus_one(self, algorithm):
        graph = erdos_renyi(40, 0.2, random.Random(1))
        coloring = algorithm(graph)
        assert is_proper_coloring(graph, coloring)
        assert num_colors(coloring) <= graph.max_degree() + 1


class TestGreedySpecifics:
    def test_respects_order(self):
        graph = SocialGraph.from_edges([(0, 1), (1, 2)])
        coloring = greedy_coloring(graph, order=[1, 0, 2])
        assert coloring[1] == 0
        assert coloring[0] == 1
        assert coloring[2] == 1

    def test_rejects_bad_order(self):
        graph = SocialGraph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            greedy_coloring(graph, order=[0])
        with pytest.raises(GraphError):
            greedy_coloring(graph, order=[0, 0])


class TestDSatur:
    def test_bipartite_uses_two_colors(self):
        # DSATUR is exact on bipartite graphs; a 6-cycle needs 2 colors.
        cycle = SocialGraph.from_edges(
            [(i, (i + 1) % 6) for i in range(6)]
        )
        assert num_colors(dsatur_coloring(cycle)) == 2

    def test_star_uses_two_colors(self):
        star = SocialGraph.from_edges([(0, i) for i in range(1, 8)])
        assert num_colors(dsatur_coloring(star)) == 2


class TestGroups:
    def test_groups_partition_nodes(self):
        graph = erdos_renyi(25, 0.3, random.Random(2))
        coloring = greedy_coloring(graph)
        groups = color_groups(coloring)
        flattened = [node for group in groups for node in group]
        assert sorted(flattened) == sorted(graph.nodes())

    def test_groups_are_independent_sets(self):
        graph = erdos_renyi(25, 0.3, random.Random(3))
        groups = color_groups(greedy_coloring(graph))
        for group in groups:
            members = set(group)
            for node in group:
                assert not (set(graph.neighbors(node)) & members)

    def test_empty_coloring(self):
        assert color_groups({}) == []


class TestIsProper:
    def test_detects_missing_node(self):
        graph = SocialGraph.from_edges([(0, 1)])
        assert not is_proper_coloring(graph, {0: 0})

    def test_detects_conflict(self):
        graph = SocialGraph.from_edges([(0, 1)])
        assert not is_proper_coloring(graph, {0: 0, 1: 0})


@settings(max_examples=40, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=40,
    ),
    algorithm_index=st.integers(0, len(ALGORITHMS) - 1),
)
def test_property_every_coloring_is_proper(edges, algorithm_index):
    """All three algorithms always return proper, d_max+1-bounded colorings."""
    graph = SocialGraph.from_edges(edges) if edges else SocialGraph(nodes=[0])
    coloring = ALGORITHMS[algorithm_index](graph)
    assert is_proper_coloring(graph, coloring)
    assert num_colors(coloring) <= graph.max_degree() + 1
