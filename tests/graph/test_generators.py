"""Unit tests for the synthetic graph generators."""

import random

import pytest

from repro.errors import GraphError
from repro.graph import (
    barabasi_albert,
    erdos_renyi,
    geometric_social,
    planted_partition,
    uniform_weight_sampler,
    watts_strogatz,
)


class TestErdosRenyi:
    def test_zero_probability(self):
        graph = erdos_renyi(20, 0.0, random.Random(0))
        assert graph.num_nodes == 20
        assert graph.num_edges == 0

    def test_full_probability(self):
        graph = erdos_renyi(10, 1.0, random.Random(0))
        assert graph.num_edges == 45

    def test_expected_density_ballpark(self):
        graph = erdos_renyi(100, 0.1, random.Random(1))
        expected = 0.1 * 100 * 99 / 2
        assert 0.6 * expected < graph.num_edges < 1.4 * expected

    def test_deterministic_seed(self):
        a = erdos_renyi(30, 0.2, random.Random(5))
        b = erdos_renyi(30, 0.2, random.Random(5))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_rejects_bad_arguments(self):
        with pytest.raises(GraphError):
            erdos_renyi(-1, 0.5)
        with pytest.raises(GraphError):
            erdos_renyi(5, 1.5)


class TestWattsStrogatz:
    def test_no_rewiring_is_ring_lattice(self):
        graph = watts_strogatz(12, 2, 0.0, random.Random(0))
        assert graph.num_edges == 12 * 2
        assert all(graph.degree(v) == 4 for v in graph)

    def test_rewiring_preserves_edge_count(self):
        graph = watts_strogatz(20, 2, 0.5, random.Random(1))
        assert graph.num_edges == 40

    def test_rejects_bad_arguments(self):
        with pytest.raises(GraphError):
            watts_strogatz(0, 1, 0.1)
        with pytest.raises(GraphError):
            watts_strogatz(6, 3, 0.1)
        with pytest.raises(GraphError):
            watts_strogatz(10, 2, 1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        m = 3
        n = 50
        graph = barabasi_albert(n, m, random.Random(0))
        seed_edges = (m + 1) * m // 2
        assert graph.num_edges == seed_edges + (n - m - 1) * m

    def test_has_hubs(self):
        graph = barabasi_albert(200, 2, random.Random(1))
        assert graph.max_degree() > 3 * graph.average_degree()

    def test_rejects_bad_arguments(self):
        with pytest.raises(GraphError):
            barabasi_albert(5, 0)
        with pytest.raises(GraphError):
            barabasi_albert(3, 3)


class TestPlantedPartition:
    def test_membership_sizes(self):
        graph, membership = planted_partition(
            [10, 15], 0.8, 0.05, random.Random(0)
        )
        assert graph.num_nodes == 25
        assert membership.count(0) == 10
        assert membership.count(1) == 15

    def test_communities_denser_inside(self):
        graph, membership = planted_partition(
            [30, 30], 0.5, 0.02, random.Random(1)
        )
        internal = external = 0
        for u, v, _ in graph.edges():
            if membership[u] == membership[v]:
                internal += 1
            else:
                external += 1
        assert internal > external

    def test_rejects_bad_arguments(self):
        with pytest.raises(GraphError):
            planted_partition([], 0.5, 0.1)
        with pytest.raises(GraphError):
            planted_partition([5], 0.1, 0.5)  # p_out > p_in
        with pytest.raises(GraphError):
            planted_partition([0, 5], 0.5, 0.1)


class TestGeometricSocial:
    def test_connects_nearby(self):
        positions = [(0.0, 0.0), (0.5, 0.0), (10.0, 10.0)]
        graph = geometric_social(positions, radius=1.0, rng=random.Random(0))
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)

    def test_rejects_bad_radius(self):
        with pytest.raises(GraphError):
            geometric_social([(0, 0)], radius=0.0)


class TestWeightSampler:
    def test_uniform_range(self):
        sampler = uniform_weight_sampler(0.5, 1.5)
        rng = random.Random(0)
        values = [sampler(rng) for _ in range(100)]
        assert all(0.5 <= v <= 1.5 for v in values)

    def test_rejects_bad_range(self):
        with pytest.raises(GraphError):
            uniform_weight_sampler(0.0, 1.0)
        with pytest.raises(GraphError):
            uniform_weight_sampler(2.0, 1.0)

    def test_weighted_generator_integration(self):
        graph = erdos_renyi(
            20, 0.3, random.Random(0),
            weight_sampler=uniform_weight_sampler(0.1, 0.9),
        )
        assert all(0.1 <= w <= 0.9 for _, _, w in graph.edges())
