"""Unit tests for graph statistics and partition diagnostics."""

import random

import pytest

from repro.errors import GraphError
from repro.graph import (
    SocialGraph,
    cut_weight,
    degree_histogram,
    graph_stats,
    internal_weight,
    modularity,
    partition_balance,
    partition_sizes,
    planted_partition,
)


def square() -> SocialGraph:
    return SocialGraph.from_edges(
        [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 0, 4.0)]
    )


class TestGraphStats:
    def test_basic(self):
        stats = graph_stats(square())
        assert stats.num_nodes == 4
        assert stats.num_edges == 4
        assert stats.deg_avg == 2.0
        assert stats.deg_max == 2
        assert stats.deg_min == 2
        assert stats.w_avg == pytest.approx(2.5)
        assert stats.w_total == pytest.approx(10.0)
        assert stats.degree_stddev == 0.0

    def test_empty(self):
        stats = graph_stats(SocialGraph())
        assert stats.num_nodes == 0
        assert stats.deg_avg == 0.0

    def test_str_contains_key_numbers(self):
        text = str(graph_stats(square()))
        assert "|V|=4" in text
        assert "|E|=4" in text


class TestDegreeHistogram:
    def test_regular_graph(self):
        assert degree_histogram(square()) == {2: 4}

    def test_star(self):
        star = SocialGraph.from_edges([(0, i) for i in range(1, 5)])
        assert degree_histogram(star) == {4: 1, 1: 4}


class TestCutWeight:
    def test_all_same_label(self):
        labels = {v: "a" for v in range(4)}
        assert cut_weight(square(), labels) == 0.0
        assert internal_weight(square(), labels) == pytest.approx(10.0)

    def test_alternating_labels(self):
        labels = {0: "a", 1: "b", 2: "a", 3: "b"}
        assert cut_weight(square(), labels) == pytest.approx(10.0)

    def test_partial_cut(self):
        labels = {0: "a", 1: "a", 2: "b", 3: "b"}
        # Edges (1,2) weight 2 and (3,0) weight 4 cross.
        assert cut_weight(square(), labels) == pytest.approx(6.0)

    def test_missing_label(self):
        with pytest.raises(GraphError):
            cut_weight(square(), {0: "a"})


class TestPartitionShape:
    def test_sizes(self):
        sizes = partition_sizes({0: "a", 1: "a", 2: "b"})
        assert sizes == {"a": 2, "b": 1}

    def test_balance_perfect(self):
        labels = {0: "a", 1: "a", 2: "b", 3: "b"}
        assert partition_balance(labels, 2) == pytest.approx(1.0)

    def test_balance_skewed(self):
        labels = {0: "a", 1: "a", 2: "a", 3: "b"}
        assert partition_balance(labels, 2) == pytest.approx(1.5)

    def test_balance_errors(self):
        with pytest.raises(GraphError):
            partition_balance({0: "a"}, 0)

    def test_balance_empty(self):
        assert partition_balance({}, 3) == 0.0


class TestModularity:
    def test_planted_communities_score_high(self):
        graph, membership = planted_partition(
            [25, 25], 0.5, 0.02, random.Random(0)
        )
        good = {v: membership[v] for v in graph}
        rng = random.Random(1)
        shuffled_values = list(good.values())
        rng.shuffle(shuffled_values)
        bad = dict(zip(good.keys(), shuffled_values))
        assert modularity(graph, good) > modularity(graph, bad)

    def test_single_community_zero_ish(self):
        labels = {v: 0 for v in range(4)}
        # Q = 1 - sum(K_c/2m)^2 = 1 - 1 = 0 for one community.
        assert modularity(square(), labels) == pytest.approx(0.0)

    def test_empty_graph(self):
        assert modularity(SocialGraph(), {}) == 0.0
