"""Unit tests for Forest Fire and uniform sampling."""

import random

import pytest

from repro.errors import GraphError
from repro.graph import (
    SocialGraph,
    barabasi_albert,
    forest_fire_sample,
    random_edge_sample,
    random_node_sample,
)


@pytest.fixture(scope="module")
def big_graph() -> SocialGraph:
    return barabasi_albert(300, 3, random.Random(0))


class TestForestFire:
    def test_exact_target_size(self, big_graph):
        sample = forest_fire_sample(big_graph, 50, rng=random.Random(1))
        assert sample.num_nodes == 50

    def test_sample_is_induced_subgraph(self, big_graph):
        sample = forest_fire_sample(big_graph, 40, rng=random.Random(2))
        for u, v, w in sample.edges():
            assert big_graph.has_edge(u, v)
            assert big_graph.weight(u, v) == w

    def test_keeps_edges_among_burned(self, big_graph):
        # Induced semantics: any original edge between sampled nodes is kept.
        sample = forest_fire_sample(big_graph, 60, rng=random.Random(3))
        nodes = set(sample.nodes())
        expected = sum(
            1 for u, v, _ in big_graph.edges() if u in nodes and v in nodes
        )
        assert sample.num_edges == expected

    def test_full_size_sample(self, big_graph):
        sample = forest_fire_sample(
            big_graph, big_graph.num_nodes, rng=random.Random(4)
        )
        assert sample.num_nodes == big_graph.num_nodes

    def test_deterministic_with_seed(self, big_graph):
        a = forest_fire_sample(big_graph, 30, rng=random.Random(7))
        b = forest_fire_sample(big_graph, 30, rng=random.Random(7))
        assert sorted(a.nodes()) == sorted(b.nodes())

    @pytest.mark.parametrize("target", [0, -5])
    def test_rejects_non_positive_target(self, big_graph, target):
        with pytest.raises(GraphError):
            forest_fire_sample(big_graph, target)

    def test_rejects_oversized_target(self, big_graph):
        with pytest.raises(GraphError):
            forest_fire_sample(big_graph, big_graph.num_nodes + 1)

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.1])
    def test_rejects_bad_probability(self, big_graph, p):
        with pytest.raises(GraphError):
            forest_fire_sample(big_graph, 10, forward_probability=p)


class TestUniformSamplers:
    def test_node_sample_size(self, big_graph):
        sample = random_node_sample(big_graph, 25, random.Random(0))
        assert sample.num_nodes == 25

    def test_node_sample_errors(self, big_graph):
        with pytest.raises(GraphError):
            random_node_sample(big_graph, 0)
        with pytest.raises(GraphError):
            random_node_sample(big_graph, big_graph.num_nodes + 1)

    def test_edge_sample_size(self, big_graph):
        sample = random_edge_sample(big_graph, 20, random.Random(0))
        assert sample.num_edges == 20

    def test_edge_sample_errors(self, big_graph):
        with pytest.raises(GraphError):
            random_edge_sample(big_graph, 0)
        with pytest.raises(GraphError):
            random_edge_sample(big_graph, big_graph.num_edges + 1)
