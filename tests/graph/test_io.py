"""Unit tests for edge-list and check-in file I/O."""

import pytest

from repro.errors import DataError
from repro.graph import (
    SocialGraph,
    read_checkins,
    read_edge_list,
    write_checkins,
    write_edge_list,
)


class TestEdgeListRoundTrip:
    def test_weighted_round_trip(self, tmp_path):
        graph = SocialGraph.from_edges([(1, 2, 0.5), (2, 3, 1.25)])
        path = str(tmp_path / "graph.txt")
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert sorted(loaded.edges()) == sorted(graph.edges())

    def test_unweighted_round_trip(self, tmp_path):
        graph = SocialGraph.from_edges([(1, 2), (2, 3)])
        path = str(tmp_path / "graph.txt")
        write_edge_list(graph, path, write_weights=False)
        loaded = read_edge_list(path, default_weight=1.0)
        assert loaded.num_edges == 2
        assert loaded.weight(1, 2) == 1.0

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# header\n\n1 2 3.0\n\n# tail\n2 3\n")
        loaded = read_edge_list(str(path))
        assert loaded.num_edges == 2
        assert loaded.weight(1, 2) == 3.0
        assert loaded.weight(2, 3) == 1.0


class TestEdgeListErrors:
    def test_wrong_token_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3 4\n")
        with pytest.raises(DataError):
            read_edge_list(str(path))

    def test_unparsable_tokens(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(DataError):
            read_edge_list(str(path))

    def test_self_loop(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("3 3 1.0\n")
        with pytest.raises(DataError):
            read_edge_list(str(path))


class TestCheckins:
    def test_round_trip(self, tmp_path):
        locations = {1: (0.5, -2.0), 42: (100.25, 3.125)}
        path = str(tmp_path / "checkins.txt")
        write_checkins(locations, path)
        assert read_checkins(path) == locations

    def test_last_checkin_wins(self, tmp_path):
        path = tmp_path / "checkins.txt"
        path.write_text("1 0.0 0.0\n1 5.0 5.0\n")
        assert read_checkins(str(path)) == {1: (5.0, 5.0)}

    def test_wrong_token_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2.0\n")
        with pytest.raises(DataError):
            read_checkins(str(path))

    def test_unparsable(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("u x y\n")
        with pytest.raises(DataError):
            read_checkins(str(path))
