"""Unit tests for label propagation, and the RMGP <-> LP bridge."""

import random

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import SocialGraph, planted_partition
from repro.graph.communities import agreement, community_sizes, label_propagation


class TestLabelPropagation:
    def test_two_cliques_found(self):
        edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        edges += [(i, j) for i in range(4, 8) for j in range(i + 1, 8)]
        graph = SocialGraph.from_edges(edges)
        graph.add_edge(0, 4, 0.01)  # weak bridge
        labels = label_propagation(graph, rng=random.Random(0))
        assert len({labels[i] for i in range(4)}) == 1
        assert len({labels[i] for i in range(4, 8)}) == 1
        assert labels[0] != labels[4]

    def test_planted_partition_recovered(self):
        graph, membership = planted_partition(
            [20, 20], 0.6, 0.02, random.Random(1)
        )
        labels = label_propagation(graph, rng=random.Random(1))
        truth = {v: membership[v] for v in graph}
        assert agreement(labels, truth) > 0.9

    def test_isolated_node_keeps_label(self):
        graph = SocialGraph(nodes=[0])
        labels = label_propagation(graph, rng=random.Random(0))
        assert labels == {0: 0}

    def test_initial_labels_respected(self):
        graph = SocialGraph.from_edges([(0, 1), (1, 2)])
        labels = label_propagation(
            graph,
            rng=random.Random(0),
            initial_labels={0: 7, 1: 7, 2: 7},
        )
        assert set(labels.values()) == {7}

    def test_incomplete_initial_labels_rejected(self):
        graph = SocialGraph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            label_propagation(graph, initial_labels={0: 1})

    def test_bad_sweeps_rejected(self):
        with pytest.raises(GraphError):
            label_propagation(SocialGraph(), max_sweeps=0)


class TestHelpers:
    def test_community_sizes_sorted(self):
        sizes = community_sizes({0: "a", 1: "a", 2: "b"})
        assert sizes == [2, 1]

    def test_agreement_identity(self):
        labels = {0: 1, 1: 1, 2: 2}
        assert agreement(labels, labels) == 1.0

    def test_agreement_permutation_invariant(self):
        a = {0: 1, 1: 1, 2: 2}
        b = {0: 9, 1: 9, 2: 3}
        assert agreement(a, b) == 1.0

    def test_agreement_mismatched_sets(self):
        with pytest.raises(GraphError):
            agreement({0: 1}, {1: 1})


class TestRMGPBridge:
    def test_low_alpha_rmgp_approximates_label_propagation(self):
        """With alpha -> 0 RMGP's best response is weighted LP over k seeds.

        On a planted two-community graph with one event per community,
        low-alpha RMGP should recover the communities just like label
        propagation does.
        """
        from repro.core import RMGPInstance, solve_baseline

        graph, membership = planted_partition(
            [15, 15], 0.6, 0.02, random.Random(2)
        )
        # Tiny assignment preference toward the "own" community's event.
        cost = np.array(
            [[0.0, 0.01] if membership[v] == 0 else [0.01, 0.0] for v in graph]
        )
        instance = RMGPInstance(graph, ["c0", "c1"], cost, alpha=0.05)
        result = solve_baseline(instance, init="closest", order="given")
        rmgp_labels = {
            node: int(result.assignment[i])
            for i, node in enumerate(graph.nodes())
        }
        truth = {v: membership[v] for v in graph}
        assert agreement(rmgp_labels, truth) > 0.9
