"""Unit tests for clustering and assortativity diagnostics."""

import random

import pytest

from repro.graph import (
    SocialGraph,
    average_clustering,
    barabasi_albert,
    degree_assortativity,
    erdos_renyi,
    local_clustering,
)


class TestLocalClustering:
    def test_triangle_is_one(self):
        graph = SocialGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert local_clustering(graph, 0) == 1.0

    def test_star_center_is_zero(self):
        star = SocialGraph.from_edges([(0, i) for i in range(1, 5)])
        assert local_clustering(star, 0) == 0.0

    def test_leaf_is_zero(self):
        graph = SocialGraph.from_edges([(0, 1), (1, 2)])
        assert local_clustering(graph, 0) == 0.0

    def test_half_closed(self):
        # Node 0 has neighbors 1,2,3; only pair (1,2) is connected.
        graph = SocialGraph.from_edges(
            [(0, 1), (0, 2), (0, 3), (1, 2)]
        )
        assert local_clustering(graph, 0) == pytest.approx(1.0 / 3.0)


class TestAverageClustering:
    def test_clique_is_one(self):
        clique = SocialGraph.from_edges(
            [(i, j) for i in range(4) for j in range(i + 1, 4)]
        )
        assert average_clustering(clique) == 1.0

    def test_empty_graph(self):
        assert average_clustering(SocialGraph()) == 0.0

    def test_homophilous_graph_clusters_more_than_er(self):
        from repro.datasets.geo import homophilous_friendships, metro_positions

        rng = random.Random(0)
        positions = metro_positions(600, [(0, 0)], [1.0], 20.0, rng)
        geo = homophilous_friendships(positions, 8.0, rng)
        er = erdos_renyi(
            600, geo.average_degree() / 599.0, random.Random(1)
        )
        assert average_clustering(geo) > 3 * max(
            average_clustering(er), 1e-4
        )


class TestAssortativity:
    def test_range(self):
        graph = barabasi_albert(100, 2, random.Random(0))
        value = degree_assortativity(graph)
        assert -1.0 <= value <= 1.0

    def test_no_edges(self):
        assert degree_assortativity(SocialGraph(nodes=[1, 2])) == 0.0

    def test_regular_graph_zero_variance(self):
        cycle = SocialGraph.from_edges([(i, (i + 1) % 5) for i in range(5)])
        assert degree_assortativity(cycle) == 0.0

    def test_star_is_disassortative(self):
        star = SocialGraph.from_edges([(0, i) for i in range(1, 8)])
        assert degree_assortativity(star) < 0.0
