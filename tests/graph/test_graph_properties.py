"""Property-based tests (hypothesis) for graph-substrate invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import SocialGraph, cut_weight, forest_fire_sample


def edges_strategy(max_node: int = 12, max_edges: int = 40):
    return st.lists(
        st.tuples(
            st.integers(0, max_node),
            st.integers(0, max_node),
            st.floats(0.1, 10.0),
        ).filter(lambda e: e[0] != e[1]),
        max_size=max_edges,
    )


@settings(max_examples=60, deadline=None)
@given(edges=edges_strategy())
def test_edge_count_and_weight_bookkeeping(edges):
    """num_edges / total_edge_weight stay exact under duplicate inserts."""
    graph = SocialGraph.from_edges(edges)
    listed = list(graph.edges())
    assert graph.num_edges == len(listed)
    assert graph.total_edge_weight() == pytest.approx(
        sum(w for _, _, w in listed)
    )
    # Handshake lemma on the weighted degrees.
    assert sum(graph.weighted_degree(v) for v in graph) == pytest.approx(
        2.0 * graph.total_edge_weight()
    )


@settings(max_examples=60, deadline=None)
@given(edges=edges_strategy())
def test_edges_are_symmetric(edges):
    graph = SocialGraph.from_edges(edges)
    for u, v, w in graph.edges():
        assert graph.weight(v, u) == w
        assert u in graph.neighbors(v)
        assert v in graph.neighbors(u)


@settings(max_examples=40, deadline=None)
@given(edges=edges_strategy(), keep_mask=st.integers(0, 2**13 - 1))
def test_subgraph_is_induced(edges, keep_mask):
    """Subgraph keeps exactly the edges with both endpoints kept."""
    graph = SocialGraph.from_edges(edges)
    kept = [node for i, node in enumerate(graph.nodes()) if keep_mask >> i & 1]
    sub = graph.subgraph(kept)
    kept_set = set(kept)
    expected = [
        (u, v, w)
        for u, v, w in graph.edges()
        if u in kept_set and v in kept_set
    ]
    assert sub.num_nodes == len(kept)
    assert sub.num_edges == len(expected)
    for u, v, w in expected:
        assert sub.weight(u, v) == w


@settings(max_examples=40, deadline=None)
@given(edges=edges_strategy())
def test_relabeled_preserves_structure(edges):
    graph = SocialGraph.from_edges(edges)
    relabeled, mapping = graph.relabeled()
    assert relabeled.num_nodes == graph.num_nodes
    assert relabeled.num_edges == graph.num_edges
    for u, v, w in graph.edges():
        assert relabeled.weight(mapping[u], mapping[v]) == w


@settings(max_examples=40, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(
            lambda e: e[0] != e[1]
        ),
        min_size=5,
        max_size=60,
    ),
    target_fraction=st.floats(0.2, 1.0),
    seed=st.integers(0, 1000),
)
def test_forest_fire_size_and_induction(edges, target_fraction, seed):
    graph = SocialGraph.from_edges(edges)
    target = max(1, int(target_fraction * graph.num_nodes))
    sample = forest_fire_sample(graph, target, rng=random.Random(seed))
    assert sample.num_nodes == target
    for u, v, w in sample.edges():
        assert graph.weight(u, v) == w


@settings(max_examples=40, deadline=None)
@given(
    edges=edges_strategy(),
    label_bits=st.integers(0, 2**13 - 1),
)
def test_cut_plus_internal_equals_total(edges, label_bits):
    graph = SocialGraph.from_edges(edges)
    labels = {
        node: (label_bits >> i) & 1 for i, node in enumerate(graph.nodes())
    }
    cut = cut_weight(graph, labels)
    from repro.graph import internal_weight

    assert cut + internal_weight(graph, labels) == pytest.approx(
        graph.total_edge_weight()
    )
    assert 0.0 <= cut <= graph.total_edge_weight() + 1e-12
