"""Unit tests for the SocialGraph hash-table storage."""

import pytest

from repro.errors import GraphError
from repro.graph import SocialGraph


def triangle() -> SocialGraph:
    return SocialGraph.from_edges([(1, 2, 0.5), (2, 3, 1.5), (1, 3, 2.0)])


class TestConstruction:
    def test_empty(self):
        graph = SocialGraph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert graph.nodes() == []
        assert list(graph.edges()) == []

    def test_pre_inserted_nodes(self):
        graph = SocialGraph(nodes=[1, 2, 3])
        assert graph.num_nodes == 3
        assert graph.num_edges == 0

    def test_from_edges_with_weights(self):
        graph = triangle()
        assert graph.num_nodes == 3
        assert graph.num_edges == 3
        assert graph.weight(1, 2) == 0.5

    def test_from_edges_default_weight(self):
        graph = SocialGraph.from_edges([(1, 2), (2, 3)], default_weight=2.0)
        assert graph.weight(1, 2) == 2.0

    def test_from_edges_keeps_last_duplicate(self):
        graph = SocialGraph.from_edges([(1, 2, 1.0), (2, 1, 3.0)])
        assert graph.num_edges == 1
        assert graph.weight(1, 2) == 3.0

    def test_from_directed_sum(self):
        graph = SocialGraph.from_directed_edges(
            [(1, 2, 1.0), (2, 1, 2.0), (3, 1, 5.0)], combine="sum"
        )
        assert graph.weight(1, 2) == 3.0
        assert graph.weight(1, 3) == 5.0

    @pytest.mark.parametrize(
        "mode,expected", [("max", 2.0), ("min", 1.0), ("mean", 1.5)]
    )
    def test_from_directed_modes(self, mode, expected):
        graph = SocialGraph.from_directed_edges(
            [(1, 2, 1.0), (2, 1, 2.0)], combine=mode
        )
        assert graph.weight(1, 2) == expected

    def test_from_directed_unknown_mode(self):
        with pytest.raises(GraphError):
            SocialGraph.from_directed_edges([(1, 2, 1.0)], combine="bogus")

    def test_from_directed_rejects_self_loop(self):
        with pytest.raises(GraphError):
            SocialGraph.from_directed_edges([(1, 1, 1.0)])


class TestMutation:
    def test_add_edge_symmetric(self):
        graph = SocialGraph()
        graph.add_edge("a", "b", 2.5)
        assert graph.weight("a", "b") == 2.5
        assert graph.weight("b", "a") == 2.5
        assert graph.has_edge("b", "a")

    def test_add_edge_rejects_self_loop(self):
        with pytest.raises(GraphError):
            SocialGraph().add_edge(1, 1)

    @pytest.mark.parametrize("weight", [0.0, -1.0])
    def test_add_edge_rejects_non_positive_weight(self, weight):
        with pytest.raises(GraphError):
            SocialGraph().add_edge(1, 2, weight)

    def test_overwrite_updates_total_weight(self):
        graph = SocialGraph()
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(1, 2, 4.0)
        assert graph.num_edges == 1
        assert graph.total_edge_weight() == 4.0

    def test_remove_edge(self):
        graph = triangle()
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.num_edges == 2
        assert graph.total_edge_weight() == pytest.approx(3.5)

    def test_remove_missing_edge(self):
        with pytest.raises(GraphError):
            triangle().remove_edge(1, 99)

    def test_remove_node_drops_incident_edges(self):
        graph = triangle()
        graph.remove_node(2)
        assert graph.num_nodes == 2
        assert graph.num_edges == 1
        assert graph.has_edge(1, 3)

    def test_remove_missing_node(self):
        with pytest.raises(GraphError):
            triangle().remove_node(99)


class TestQueries:
    def test_neighbors(self):
        graph = triangle()
        assert graph.neighbors(1) == {2: 0.5, 3: 2.0}

    def test_neighbors_missing_node(self):
        with pytest.raises(GraphError):
            triangle().neighbors(99)

    def test_weight_missing_edge(self):
        graph = SocialGraph(nodes=[1, 2])
        with pytest.raises(GraphError):
            graph.weight(1, 2)

    def test_degree_and_weighted_degree(self):
        graph = triangle()
        assert graph.degree(1) == 2
        assert graph.weighted_degree(1) == pytest.approx(2.5)

    def test_edges_each_once(self):
        edges = list(triangle().edges())
        assert len(edges) == 3
        seen = {frozenset((u, v)) for u, v, _ in edges}
        assert len(seen) == 3

    def test_averages(self):
        graph = triangle()
        assert graph.average_degree() == pytest.approx(2.0)
        assert graph.average_edge_weight() == pytest.approx(4.0 / 3.0)
        assert graph.max_degree() == 2

    def test_averages_empty(self):
        graph = SocialGraph()
        assert graph.average_degree() == 0.0
        assert graph.average_edge_weight() == 0.0
        assert graph.max_degree() == 0

    def test_contains_len_iter(self):
        graph = triangle()
        assert 1 in graph
        assert 99 not in graph
        assert len(graph) == 3
        assert sorted(graph) == [1, 2, 3]


class TestDerived:
    def test_subgraph(self):
        graph = triangle()
        graph.add_edge(3, 4, 1.0)
        sub = graph.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3
        assert 4 not in sub

    def test_subgraph_missing_node(self):
        with pytest.raises(GraphError):
            triangle().subgraph([1, 99])

    def test_subgraph_is_independent_copy(self):
        graph = triangle()
        sub = graph.subgraph([1, 2])
        sub.add_edge(1, 2, 9.0)
        assert graph.weight(1, 2) == 0.5

    def test_copy(self):
        graph = triangle()
        clone = graph.copy()
        clone.remove_edge(1, 2)
        assert graph.has_edge(1, 2)
        assert not clone.has_edge(1, 2)

    def test_relabeled(self):
        graph = SocialGraph.from_edges([("x", "y", 2.0)])
        relabeled, mapping = graph.relabeled()
        assert set(mapping) == {"x", "y"}
        assert relabeled.weight(mapping["x"], mapping["y"]) == 2.0

    def test_degree_ordered_nodes(self):
        graph = SocialGraph.from_edges([(1, 2), (1, 3), (1, 4), (2, 3)])
        order = graph.degree_ordered_nodes()
        assert order[0] == 1
        ascending = graph.degree_ordered_nodes(descending=False)
        assert ascending[-1] == 1
