"""Unit tests for graph traversal primitives."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    SocialGraph,
    bfs_distances,
    bfs_order,
    connected_components,
    dfs_order,
    induced_neighborhood,
    is_connected,
    largest_component,
    shortest_path,
)


def path_graph(n: int) -> SocialGraph:
    return SocialGraph.from_edges([(i, i + 1) for i in range(n - 1)])


class TestBFS:
    def test_order_starts_at_source(self):
        order = bfs_order(path_graph(5), 2)
        assert order[0] == 2
        assert sorted(order) == [0, 1, 2, 3, 4]

    def test_order_missing_source(self):
        with pytest.raises(GraphError):
            bfs_order(path_graph(3), 99)

    def test_distances(self):
        dist = bfs_distances(path_graph(5), 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distances_unreachable_excluded(self):
        graph = path_graph(3)
        graph.add_node(99)
        assert 99 not in bfs_distances(graph, 0)


class TestDFS:
    def test_visits_all_reachable(self):
        order = dfs_order(path_graph(4), 0)
        assert sorted(order) == [0, 1, 2, 3]

    def test_missing_source(self):
        with pytest.raises(GraphError):
            dfs_order(path_graph(3), 42)


class TestComponents:
    def test_single_component(self):
        components = connected_components(path_graph(4))
        assert len(components) == 1

    def test_multiple_components(self):
        graph = SocialGraph.from_edges([(0, 1), (2, 3), (3, 4)])
        graph.add_node(9)
        components = connected_components(graph)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2, 3]

    def test_largest_component(self):
        graph = SocialGraph.from_edges([(0, 1), (2, 3), (3, 4)])
        largest = largest_component(graph)
        assert sorted(largest.nodes()) == [2, 3, 4]

    def test_largest_component_empty(self):
        assert largest_component(SocialGraph()).num_nodes == 0

    def test_is_connected(self):
        assert is_connected(path_graph(4))
        graph = path_graph(3)
        graph.add_node("isolated")
        assert not is_connected(graph)
        assert is_connected(SocialGraph())


class TestShortestPath:
    def test_direct_path(self):
        assert shortest_path(path_graph(4), 0, 3) == [0, 1, 2, 3]

    def test_same_node(self):
        assert shortest_path(path_graph(3), 1, 1) == [1]

    def test_unreachable(self):
        graph = path_graph(3)
        graph.add_node(99)
        assert shortest_path(graph, 0, 99) is None

    def test_prefers_shortcut(self):
        graph = path_graph(5)
        graph.add_edge(0, 4, 1.0)
        assert shortest_path(graph, 0, 4) == [0, 4]

    def test_missing_endpoints(self):
        with pytest.raises(GraphError):
            shortest_path(path_graph(3), 77, 0)
        with pytest.raises(GraphError):
            shortest_path(path_graph(3), 0, 77)


class TestInducedNeighborhood:
    def test_zero_hops(self):
        sub = induced_neighborhood(path_graph(5), [2], 0)
        assert sub.nodes() == [2]

    def test_one_hop(self):
        sub = induced_neighborhood(path_graph(5), [2], 1)
        assert sorted(sub.nodes()) == [1, 2, 3]
        assert sub.num_edges == 2

    def test_negative_hops(self):
        with pytest.raises(GraphError):
            induced_neighborhood(path_graph(3), [0], -1)

    def test_missing_seed(self):
        with pytest.raises(GraphError):
            induced_neighborhood(path_graph(3), [55], 1)
