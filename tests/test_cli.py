"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        arguments = build_parser().parse_args(["solve"])
        assert arguments.method == "all"
        assert arguments.alpha == 0.5
        assert arguments.dataset == "gowalla"

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--method", "magic"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_trace(self, capsys):
        assert main(["trace"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "v4" in output

    def test_solve_small(self, capsys):
        code = main([
            "solve", "--users", "120", "--events", "4", "--seed", "1",
            "--method", "all",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "RMGP_all" in output
        assert "Nash equilibrium" in output
        assert "most popular classes" in output

    def test_solve_without_normalization(self, capsys):
        code = main([
            "solve", "--users", "100", "--events", "4", "--normalize", "none",
        ])
        assert code == 0
        assert "normalization" not in capsys.readouterr().out

    def test_dataset_writes_files(self, tmp_path, capsys):
        edges = str(tmp_path / "edges.txt")
        checkins = str(tmp_path / "checkins.txt")
        code = main([
            "dataset", "--users", "80", "--events", "4",
            "--edges-out", edges, "--checkins-out", checkins,
        ])
        assert code == 0
        from repro.graph import read_checkins, read_edge_list

        graph = read_edge_list(edges)
        assert graph.num_nodes > 0
        assert len(read_checkins(checkins)) == 80

    def test_figure_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_stream(self, capsys):
        code = main([
            "stream", "--users", "120", "--events", "4",
            "--epochs", "2", "--checkins-per-epoch", "5",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "epoch" in output
        assert output.count("\n") >= 4  # header + dataset + 2 epochs

    @pytest.mark.parametrize("protocol", ["relayed", "peer"])
    def test_distributed(self, capsys, protocol):
        code = main([
            "distributed", "--users", "150", "--events", "4",
            "--protocol", protocol,
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert f"DG[{protocol}]" in output
        assert "FaE" in output

    def test_solve_json(self, capsys):
        import json

        code = main([
            "solve", "--users", "100", "--events", "4", "--method", "gt",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["solver"] == "RMGP_gt"
        assert payload["converged"] is True
        assert len(payload["assignment_sha256"]) == 64
        assert payload["round_trace"][0]["round"] == 0

    def test_solve_deadline_checkpoint_resume(self, tmp_path, capsys):
        import json

        checkpoint = str(tmp_path / "solve.ckpt.json")
        base = [
            "solve", "--users", "150", "--events", "4", "--seed", "2",
            "--method", "gt",
        ]
        # An (effectively) zero deadline leaves a degraded result and a
        # checkpoint on disk, plus a resume hint.
        code = main(base + [
            "--deadline", "0.000001",
            "--checkpoint", checkpoint, "--checkpoint-every", "1",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "NOT converged (deadline)" in output
        assert f"resume with --resume {checkpoint}" in output

        code = main(base + ["--resume", checkpoint, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["converged"] is True

        reference = main(base + ["--json"])
        assert reference == 0
        assert json.loads(capsys.readouterr().out)["converged"] is True

    def test_solve_generous_deadline_converges(self, capsys):
        code = main([
            "solve", "--users", "100", "--events", "4", "--method", "all",
            "--deadline", "3600",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Nash equilibrium" in output
        assert "interrupted" not in output

    def test_solve_resume_flag_parsed(self):
        arguments = build_parser().parse_args(
            ["solve", "--deadline", "1.5", "--round-budget", "0.5",
             "--checkpoint", "c.json", "--checkpoint-every", "3",
             "--resume", "c.json"]
        )
        assert arguments.deadline == 1.5
        assert arguments.round_budget == 0.5
        assert arguments.checkpoint == "c.json"
        assert arguments.checkpoint_every == 3
        assert arguments.resume == "c.json"

    def test_profile_paper_example(self, tmp_path, capsys):
        from repro.obs import validate_trace_file

        jsonl = str(tmp_path / "trace.jsonl")
        metrics = str(tmp_path / "metrics.txt")
        code = main([
            "profile", "--dataset", "paper",
            "--jsonl", jsonl, "--metrics", metrics,
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "solve:" in output  # summary tree root span
        assert "round:" in output
        assert validate_trace_file(jsonl) == []
        with open(metrics, encoding="utf-8") as handle:
            assert "repro_solver_rounds" in handle.read()

    def test_trace_jsonl(self, tmp_path, capsys):
        from repro.obs import validate_trace_file

        jsonl = str(tmp_path / "table1.jsonl")
        assert main(["trace", "--jsonl", jsonl]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert validate_trace_file(jsonl) == []

    def test_figure_trace(self, tmp_path, capsys):
        from repro.obs import validate_trace_file

        jsonl = str(tmp_path / "fig.jsonl")
        assert main(["figure", "table1", "--trace", jsonl]) == 0
        assert "Table 1" in capsys.readouterr().out
        assert validate_trace_file(jsonl) == []

    def test_profile_memory_and_chrome(self, tmp_path, capsys):
        from repro.obs import validate_chrome_file

        chrome = str(tmp_path / "trace.json")
        code = main([
            "profile", "--dataset", "paper", "--memory",
            "--chrome", chrome,
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "top spans by peak allocation" in output
        assert "peak" in output
        assert validate_chrome_file(chrome) == []

    def test_trace_chrome(self, tmp_path, capsys):
        from repro.obs import validate_chrome_file

        chrome = str(tmp_path / "table1.json")
        assert main(["trace", "--chrome", chrome]) == 0
        assert "Table 1" in capsys.readouterr().out
        assert validate_chrome_file(chrome) == []

    def test_distributed_trace_chrome_analyze(self, tmp_path, capsys):
        from repro.obs import validate_chrome_file, validate_trace_file

        jsonl = str(tmp_path / "dg.jsonl")
        chrome = str(tmp_path / "dg.json")
        code = main([
            "distributed", "--users", "100", "--events", "4",
            "--slaves", "2", "--trace", jsonl, "--chrome", chrome,
            "--analyze",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "straggler" in output
        assert "critical path" in output
        assert validate_trace_file(jsonl) == []
        assert validate_chrome_file(chrome) == []

    def test_analyze_reads_exported_trace(self, tmp_path, capsys):
        jsonl = str(tmp_path / "dg.jsonl")
        assert main([
            "distributed", "--users", "100", "--events", "4",
            "--slaves", "2", "--trace", jsonl,
        ]) == 0
        capsys.readouterr()
        assert main(["analyze", jsonl]) == 0
        output = capsys.readouterr().out
        assert "rounds:" in output
        assert "straggler" in output

    def test_analyze_rejects_invalid_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"}\n')
        assert main(["analyze", str(bad)]) == 1
        assert "schema violation" in capsys.readouterr().out


class TestChurn:
    def test_parser_defaults(self):
        arguments = build_parser().parse_args(["churn"])
        assert arguments.users == 80
        assert arguments.batches == 5
        assert arguments.solver == "gt"
        assert arguments.movement_penalty is None
        assert arguments.differential is False

    def test_churn_runs_and_reports_movement(self, capsys):
        code = main([
            "churn", "--users", "40", "--events", "4",
            "--batches", "2", "--batch-size", "5",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "churn: 2x5 mutations" in output
        assert "mut/s incremental" in output
        assert "migration cost" in output

    def test_churn_differential_gate(self, capsys):
        code = main([
            "churn", "--users", "40", "--events", "4",
            "--batches", "2", "--batch-size", "5", "--differential",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "differential ok" in output

    def test_churn_with_movement_penalty(self, capsys):
        code = main([
            "churn", "--users", "40", "--events", "4",
            "--batches", "2", "--batch-size", "5",
            "--movement-penalty", "5.0",
        ])
        assert code == 0
        assert "mut/s" in capsys.readouterr().out
