"""Unit tests for protocol messages and the simulated network."""

import pytest

from repro.distributed import Message, MessageType, SimulatedNetwork
from repro.distributed import messages as msg
from repro.errors import ConfigurationError


class TestMessageSizes:
    def test_init_message(self):
        message = msg.init_message("M", "s0", num_events=10, has_area=False)
        assert message.payload_bytes == 10 * (4 + 16) + 8 + 4
        assert message.total_bytes == message.payload_bytes + msg.HEADER_BYTES

    def test_init_message_with_area(self):
        without = msg.init_message("M", "s0", 10, has_area=False)
        with_area = msg.init_message("M", "s0", 10, has_area=True)
        assert with_area.payload_bytes - without.payload_bytes == 32

    def test_lsv_message(self):
        message = msg.lsv_message("s0", "M", num_players=100, num_colors=5)
        assert message.payload_bytes == 100 * 8 + 5 * 4

    def test_gsv_message(self):
        message = msg.gsv_message("M", "s0", num_players=1000)
        assert message.payload_bytes == 8000

    def test_ack_and_terminate_empty(self):
        assert msg.ack_message("s0", "M").payload_bytes == 0
        assert msg.terminate_message("M", "s0").payload_bytes == 0

    def test_changes_message(self):
        message = msg.strategy_changes_message("s0", "M", num_changes=7)
        assert message.payload_bytes == 56

    def test_graph_shard_bytes(self):
        # 10 users (id + 2 coords) + 20 edges in two adjacency lists.
        size = msg.graph_shard_bytes(10, 20)
        assert size == 10 * 20 + 2 * 20 * 12

    def test_message_types_distinct(self):
        assert MessageType.INIT != MessageType.ACK


class TestSimulatedNetwork:
    def test_transfer_time_formula(self):
        network = SimulatedNetwork(bandwidth_mbps=100, latency_seconds=0.001)
        # 1 MB over 100 Mbps = 0.08 s plus latency.
        seconds = network.transfer_seconds(1_000_000)
        assert seconds == pytest.approx(0.001 + 0.08)

    def test_send_accounts_bytes(self):
        network = SimulatedNetwork()
        network.begin_round(0)
        message = Message(MessageType.ACK, "a", "b", payload_bytes=100)
        network.send(message)
        ledger = network.round_ledgers()[0]
        assert ledger.bytes_sent == message.total_bytes
        assert ledger.messages == 1
        assert network.total_bytes() == message.total_bytes

    def test_parallel_exchange_max_time_sum_bytes(self):
        network = SimulatedNetwork(bandwidth_mbps=100, latency_seconds=0.0)
        network.begin_round(1)
        small = Message(MessageType.ACK, "a", "b", payload_bytes=0)
        big = Message(MessageType.GLOBAL_STRATEGIES, "a", "c", payload_bytes=10_000)
        elapsed = network.parallel_exchange([small, big])
        assert elapsed == pytest.approx(network.transfer_seconds(big.total_bytes))
        ledger = network.round_ledgers()[0]
        assert ledger.bytes_sent == small.total_bytes + big.total_bytes
        assert ledger.messages == 2

    def test_rounds_separated(self):
        network = SimulatedNetwork()
        network.begin_round(0)
        network.send(Message(MessageType.ACK, "a", "b", 0))
        network.begin_round(1)
        network.send(Message(MessageType.ACK, "a", "b", 0))
        ledgers = network.round_ledgers()
        assert [l.round_index for l in ledgers] == [0, 1]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            SimulatedNetwork(bandwidth_mbps=0)
        with pytest.raises(ConfigurationError):
            SimulatedNetwork(latency_seconds=-1)
