"""Graceful degradation: permanent slave death mid-query.

With ``degrade=True`` (the default) the master re-shards the dead
slave's players onto survivors — the FaE-style block transfer shows up
in the byte ledger — and the run completes at a Nash equilibrium.  With
``degrade=False`` the retry budget escalates to a typed
:class:`SlaveUnreachableError` carrying the failing slave's id.
"""

import numpy as np
import pytest

from repro.core import RMGPInstance, is_nash_equilibrium
from repro.core.normalization import normalize_with_constant
from repro.datasets import gowalla_like
from repro.distributed import (
    CrashEvent,
    DGQuery,
    FaultPlan,
    RetryPolicy,
    build_cluster,
)
from repro.errors import SlaveUnreachableError

DEAD = "slave-1"


@pytest.fixture(scope="module")
def dataset():
    return gowalla_like(num_users=240, num_events=5, seed=23)


@pytest.fixture(scope="module")
def query(dataset):
    return DGQuery(events=dataset.events, alpha=0.5, seed=4)


@pytest.fixture(scope="module")
def permanent_death_plan():
    return FaultPlan(seed=8, crashes=(CrashEvent(DEAD, 1, 1),))


@pytest.fixture(scope="module")
def degraded_run(dataset, query, permanent_death_plan):
    cluster = build_cluster(
        dataset, num_slaves=3, fault_plan=permanent_death_plan
    )
    result = cluster.game.run(query)
    return cluster, result


class TestPermanentDeath:
    def test_run_completes_with_all_players(self, dataset, degraded_run):
        cluster, result = degraded_run
        assert result.converged
        assert len(result.assignment) == dataset.graph.num_nodes
        assert set(result.assignment) == set(dataset.graph.nodes())

    def test_players_reassigned_to_survivors(self, dataset, degraded_run):
        cluster, result = degraded_run
        dead = next(s for s in cluster.slaves if s.slave_id == DEAD)
        survivors = [s for s in cluster.slaves if s.slave_id != DEAD]
        # The dead process lost its state and never came back ...
        assert dead.crashed
        assert dead.participants == []
        # ... but its users are now owned (and served) by a survivor.
        survivor_participants = set()
        for slave in survivors:
            survivor_participants.update(slave.participants)
        assert survivor_participants == set(dataset.graph.nodes())
        # Survivors between them now hold every shard, including the
        # dead slave's transferred block.
        shard_total = sum(len(s.local_users) for s in survivors)
        assert shard_total == dataset.graph.num_nodes
        owned = set()
        for slave in survivors:
            owned.update(slave.local_users)
        assert owned.issuperset(dead.local_users)

    def test_reshard_bytes_in_ledger(self, degraded_run):
        cluster, _ = degraded_run
        reshards = [
            f for f in cluster.network.injected if f.kind == "reshard"
        ]
        assert len(reshards) == 1
        fault = reshards[0]
        assert fault.target == DEAD
        assert fault.detail > 0  # wire size of the transferred block
        ledger = next(
            l
            for l in cluster.network.round_ledgers()
            if l.round_index == fault.round_index
        )
        assert any(f.kind == "reshard" for f in ledger.faults)
        # The block transfer is part of the round's byte count.
        assert ledger.bytes_sent > fault.detail

    def test_degraded_run_reaches_equilibrium(self, dataset, degraded_run):
        _, result = degraded_run
        instance = normalize_with_constant(
            RMGPInstance(
                dataset.graph, dataset.event_ids, dataset.cost_matrix(), 0.5
            ),
            result.cn,
        )
        arr = np.array(
            [result.assignment[u] for u in dataset.graph.nodes()]
        )
        assert is_nash_equilibrium(instance, arr)

    def test_result_records_fault_context(self, degraded_run):
        _, result = degraded_run
        assert "fault_plan" in result.extra
        assert DEAD in result.extra["fault_plan"]


class TestEscalation:
    def test_degrade_false_raises_with_slave_id(
        self, dataset, query, permanent_death_plan
    ):
        cluster = build_cluster(
            dataset,
            num_slaves=3,
            fault_plan=permanent_death_plan,
            degrade=False,
        )
        with pytest.raises(SlaveUnreachableError) as excinfo:
            cluster.game.run(query)
        assert excinfo.value.slave_id == DEAD

    def test_black_holed_link_exhausts_budget(self, dataset, query):
        """Drops past the retry budget mean unreachable, not a hang."""
        plan = FaultPlan(seed=1, drop_rate=1.0, max_consecutive_drops=99)
        cluster = build_cluster(
            dataset,
            num_slaves=2,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=3, base_timeout=0.01),
            degrade=False,
        )
        with pytest.raises(SlaveUnreachableError):
            cluster.game.run(query)

    def test_no_survivors_left_escalates(self, dataset, query):
        """Degradation with every slave black-holed still terminates."""
        plan = FaultPlan(seed=1, drop_rate=1.0, max_consecutive_drops=99)
        cluster = build_cluster(
            dataset,
            num_slaves=2,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, base_timeout=0.01),
            degrade=True,
        )
        with pytest.raises(SlaveUnreachableError):
            cluster.game.run(query)


class TestRetryBudgetAccounting:
    def test_retries_counted_per_channel(self, dataset, query):
        plan = FaultPlan(seed=2, drop_rate=0.5, max_consecutive_drops=2)
        cluster = build_cluster(dataset, num_slaves=2, fault_plan=plan)
        result = cluster.game.run(query)
        assert result.converged
        total_retries = sum(
            c.retries for c in cluster.game.transport.channels.values()
        )
        drops = cluster.network.faults_by_kind().get("drop", 0)
        assert total_retries == drops
