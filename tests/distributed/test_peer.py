"""Unit tests for the peer-to-peer DG variant."""

import numpy as np
import pytest

from repro.core import RMGPInstance, is_nash_equilibrium
from repro.core.normalization import normalize_with_constant
from repro.datasets import gowalla_like
from repro.distributed import DGQuery, build_cluster, hash_partition
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def dataset():
    return gowalla_like(num_users=350, num_events=8, seed=41)


@pytest.fixture(scope="module")
def query(dataset):
    return DGQuery(events=dataset.events, alpha=0.5, seed=3)


class TestPeerProtocol:
    def test_reaches_verified_equilibrium(self, dataset, query):
        cluster = build_cluster(dataset, num_slaves=3, protocol="peer")
        result = cluster.game.run(query)
        assert result.converged
        assert result.extra["protocol"] == "peer-to-peer"
        instance = normalize_with_constant(
            RMGPInstance(
                dataset.graph, dataset.event_ids, dataset.cost_matrix(), 0.5
            ),
            result.cn,
        )
        assignment = np.array(
            [result.assignment[u] for u in dataset.graph.nodes()]
        )
        assert is_nash_equilibrium(instance, assignment)

    def test_same_equilibrium_as_relayed(self, dataset, query):
        """Same shards + coloring + deterministic init => same trajectory."""
        shards = hash_partition(dataset.graph.nodes(), 2)
        relayed = build_cluster(
            dataset, shards=shards, use_distributed_coloring=False
        ).game.run(query)
        peer = build_cluster(
            dataset, shards=shards, use_distributed_coloring=False,
            protocol="peer",
        ).game.run(query)
        assert relayed.assignment == peer.assignment
        assert relayed.num_rounds == peer.num_rounds

    def test_moves_fewer_bytes_with_two_slaves(self, dataset, query):
        """With 2 slaves, peer broadcast halves the change traffic.

        Relayed: each change travels slave->M and M->each slave (2 copies
        out of M).  Peer: one direct copy per peer.  The GSV/round-0
        traffic is identical, so the peer total must be strictly lower.
        """
        shards = hash_partition(dataset.graph.nodes(), 2)
        relayed = build_cluster(
            dataset, shards=shards, use_distributed_coloring=False
        ).game.run(query)
        peer = build_cluster(
            dataset, shards=shards, use_distributed_coloring=False,
            protocol="peer",
        ).game.run(query)
        assert peer.total_bytes < relayed.total_bytes

    def test_single_slave_works(self, dataset, query):
        cluster = build_cluster(dataset, num_slaves=1, protocol="peer")
        result = cluster.game.run(query)
        assert result.converged
        assert result.num_participants == dataset.graph.num_nodes


class TestBuilderValidation:
    def test_unknown_protocol_rejected(self, dataset):
        with pytest.raises(ConfigurationError):
            build_cluster(dataset, protocol="carrier-pigeon")
