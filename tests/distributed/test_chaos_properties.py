"""Chaos/property suite: faults change timing and bytes, never the game.

Hypothesis generates random small instances and random seeded fault
plans in which every message is eventually delivered (drop caps below
the retry budget, recoverable crash downtimes).  The pinned invariants:

* DG under faults converges to a verified Nash equilibrium,
* with the same objective value as the fault-free run on the same
  instance and color order (in fact the identical assignment),
* and a slave crash + checkpoint recovery mid-round never increases the
  potential Φ — the best-response descent survives the fault.
"""

import functools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RMGPInstance, is_nash_equilibrium, objective, potential
from repro.core.normalization import normalize_with_constant
from repro.datasets import gowalla_like
from repro.distributed import (
    CrashEvent,
    DGQuery,
    FaultPlan,
    build_cluster,
)

DATASET_SEEDS = (0, 1, 2)

CHAOS_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@functools.lru_cache(maxsize=None)
def small_dataset(seed):
    return gowalla_like(num_users=60, num_events=3, seed=seed)


@functools.lru_cache(maxsize=None)
def fault_free_run(dataset_seed, query_seed):
    """Reference assignment/objective for one instance (no faults)."""
    dataset = small_dataset(dataset_seed)
    query = DGQuery(events=dataset.events, alpha=0.5, seed=query_seed)
    cluster = build_cluster(dataset, num_slaves=2)
    result = cluster.game.run(query)
    instance = normalize_with_constant(
        RMGPInstance(dataset.graph, dataset.event_ids, dataset.cost_matrix(), 0.5),
        result.cn,
    )
    order = dataset.graph.nodes()
    value = objective(
        instance, np.array([result.assignment[u] for u in order])
    ).total
    return result.assignment, value, result.cn


def run_faulty(dataset_seed, query_seed, plan, listener=None):
    dataset = small_dataset(dataset_seed)
    query = DGQuery(events=dataset.events, alpha=0.5, seed=query_seed)
    cluster = build_cluster(dataset, num_slaves=2, fault_plan=plan)
    if listener is not None:
        cluster.game.round_listener = listener
    result = cluster.game.run(query)
    return cluster, result, dataset


eventual_delivery_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**16),
    drop_rate=st.floats(min_value=0.0, max_value=0.9),
    delay_rate=st.floats(min_value=0.0, max_value=1.0),
    max_delay_seconds=st.floats(min_value=0.0, max_value=0.05),
    duplicate_rate=st.floats(min_value=0.0, max_value=0.5),
    reorder_rate=st.floats(min_value=0.0, max_value=1.0),
    # Strictly below the default retry budget of 6 attempts — every
    # message is eventually delivered.
    max_consecutive_drops=st.integers(min_value=0, max_value=3),
)


class TestEventualDeliveryEquivalence:
    @settings(**CHAOS_SETTINGS)
    @given(
        dataset_seed=st.sampled_from(DATASET_SEEDS),
        query_seed=st.integers(min_value=0, max_value=3),
        plan=eventual_delivery_plans,
    )
    def test_faulty_run_matches_fault_free_objective(
        self, dataset_seed, query_seed, plan
    ):
        reference_assignment, reference_value, cn = fault_free_run(
            dataset_seed, query_seed
        )
        cluster, result, dataset = run_faulty(dataset_seed, query_seed, plan)
        assert result.converged

        instance = normalize_with_constant(
            RMGPInstance(
                dataset.graph, dataset.event_ids, dataset.cost_matrix(), 0.5
            ),
            result.cn,
        )
        order = dataset.graph.nodes()
        arr = np.array([result.assignment[u] for u in order])
        assert is_nash_equilibrium(instance, arr)
        value = objective(instance, arr).total
        assert value == pytest.approx(reference_value, rel=1e-12)
        # Stronger than the objective: the deviation sequence is
        # untouched, so the assignment itself is identical.
        assert result.assignment == reference_assignment

    @settings(**CHAOS_SETTINGS)
    @given(
        dataset_seed=st.sampled_from(DATASET_SEEDS),
        plan=eventual_delivery_plans,
    )
    def test_bytes_never_shrink_under_faults(self, dataset_seed, plan):
        """Faults may only add traffic (retransmissions, duplicates)."""
        _, reference_value, _ = fault_free_run(dataset_seed, 0)
        reference = build_cluster(small_dataset(dataset_seed), num_slaves=2)
        query = DGQuery(
            events=small_dataset(dataset_seed).events, alpha=0.5, seed=0
        )
        ref_result = reference.game.run(query)
        _, result, _ = run_faulty(dataset_seed, 0, plan)
        assert result.total_bytes >= ref_result.total_bytes
        assert result.total_messages >= ref_result.total_messages


class TestCrashRecoveryProperties:
    @settings(**CHAOS_SETTINGS)
    @given(
        dataset_seed=st.sampled_from(DATASET_SEEDS),
        query_seed=st.integers(min_value=0, max_value=3),
        fault_seed=st.integers(min_value=0, max_value=2**16),
        crash_slave=st.sampled_from(["slave-0", "slave-1"]),
        crash_step=st.integers(min_value=0, max_value=3),
        drop_rate=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_crash_recovery_never_increases_potential(
        self, dataset_seed, query_seed, fault_seed, crash_slave, crash_step, drop_rate
    ):
        """Mid-round crash + checkpoint recovery: Φ stays non-increasing
        round over round, and the final objective matches fault-free."""
        _, reference_value, _ = fault_free_run(dataset_seed, query_seed)
        plan = FaultPlan(
            seed=fault_seed,
            drop_rate=drop_rate,
            crashes=(CrashEvent(crash_slave, 1, crash_step, downtime=0.01),),
        )
        dataset = small_dataset(dataset_seed)
        instance_holder = {}
        phis = []

        def listener(round_index, gsv):
            if "instance" not in instance_holder:
                return  # cn known only after run() returns; fill later
            order = dataset.graph.nodes()
            arr = np.array([gsv[u] for u in order])
            phis.append(potential(instance_holder["instance"], arr))

        # cn is deterministic per instance — take it from the reference.
        cn = fault_free_run(dataset_seed, query_seed)[2]
        instance_holder["instance"] = normalize_with_constant(
            RMGPInstance(
                dataset.graph, dataset.event_ids, dataset.cost_matrix(), 0.5
            ),
            cn,
        )
        cluster, result, _ = run_faulty(
            dataset_seed, query_seed, plan, listener=listener
        )
        assert result.converged
        kinds = cluster.network.faults_by_kind()
        assert kinds.get("crash", 0) == 1, "scheduled crash never fired"
        assert kinds.get("recovery", 0) == 1, "slave never recovered"

        # Φ non-increasing across every round boundary despite the crash.
        assert len(phis) >= 2
        for before, after in zip(phis, phis[1:]):
            assert after <= before + 1e-9

        order = dataset.graph.nodes()
        arr = np.array([result.assignment[u] for u in order])
        value = objective(instance_holder["instance"], arr).total
        assert value == pytest.approx(reference_value, rel=1e-12)
        assert is_nash_equilibrium(instance_holder["instance"], arr)

    def test_checkpoint_restores_strategy_vector(self):
        """Direct unit check of the checkpoint/crash/resync cycle."""
        dataset = small_dataset(0)
        query = DGQuery(events=dataset.events, alpha=0.5, seed=0)
        cluster = build_cluster(dataset, num_slaves=2)
        result = cluster.game.run(query)
        slave = cluster.slaves[0]
        saved = slave.local_assignment()
        assert slave.last_checkpoint_round is not None

        slave.crash()
        assert slave.crashed
        assert slave.local_assignment() == {}

        seconds = slave.resync(query, result.assignment, result.cn)
        assert not slave.crashed
        assert seconds >= 0.0
        assert slave.local_assignment() == saved
