"""Real-time guarantees for the decentralized game (deadline + token)."""

from __future__ import annotations

import pytest

from repro.datasets import gowalla_like
from repro.distributed import DGQuery, build_cluster
from repro.distributed import messages as msg
from repro.errors import ConfigurationError
from repro.runtime import CancelToken


@pytest.fixture(scope="module")
def dataset():
    return gowalla_like(num_users=400, num_events=8, seed=17)


@pytest.fixture(scope="module")
def query(dataset):
    return DGQuery(events=dataset.events, alpha=0.5, seed=1)


@pytest.fixture(scope="module")
def reference(dataset, query):
    return build_cluster(dataset, num_slaves=2).game.run(query)


class TestDGDeadline:
    def test_reference_converges(self, reference):
        assert reference.converged
        assert reference.stop_reason == "converged"

    def test_aggressive_deadline_degrades_gracefully(
        self, dataset, query, reference
    ):
        deadline = reference.rounds[0].total_seconds * 1.05
        result = build_cluster(dataset, num_slaves=2).game.run(
            query, deadline_seconds=deadline
        )
        assert not result.converged
        assert result.stop_reason == "deadline"
        # Degraded, but valid: every participant keeps an in-range class.
        assert set(result.assignment) == set(reference.assignment)
        assert all(0 <= c < query.k for c in result.assignment.values())
        assert result.extra["remaining_dirty"] >= 0
        assert "degraded_rounds" in result.extra

    def test_mid_run_deadline_counts_degraded_rounds(
        self, dataset, query, reference
    ):
        result = build_cluster(dataset, num_slaves=2).game.run(
            query, deadline_seconds=reference.total_seconds * 0.5
        )
        assert not result.converged
        assert result.stop_reason == "deadline"
        # A zero-deviation round with skipped phases must not be
        # mistaken for convergence.
        assert result.num_rounds < reference.num_rounds or (
            result.extra["degraded_rounds"] > 0
        )

    def test_generous_deadline_reaches_same_equilibrium(
        self, dataset, query, reference
    ):
        result = build_cluster(dataset, num_slaves=2).game.run(
            query, deadline_seconds=reference.total_seconds * 100
        )
        assert result.converged
        assert result.stop_reason == "converged"
        assert result.assignment == reference.assignment

    def test_cancel_token_stops_before_round_one(self, dataset, query):
        token = CancelToken()
        token.cancel()
        result = build_cluster(dataset, num_slaves=2).game.run(
            query, cancel_token=token
        )
        assert not result.converged
        assert result.stop_reason == "cancelled"
        assert result.num_rounds == 0

    def test_non_positive_deadline_rejected(self, dataset, query):
        with pytest.raises(ConfigurationError):
            build_cluster(dataset, num_slaves=2).game.run(
                query, deadline_seconds=0.0
            )

    def test_no_deadline_run_is_byte_identical(
        self, dataset, query, reference
    ):
        again = build_cluster(dataset, num_slaves=2).game.run(query)
        assert again.total_bytes == reference.total_bytes
        assert again.total_messages == reference.total_messages
        assert again.assignment == reference.assignment


class TestComputeColorWire:
    def test_plain_message_size_unchanged(self):
        message = msg.compute_color_message("M", "s0")
        assert message.payload_bytes == msg.INT_BYTES

    def test_deadline_rides_as_one_float(self):
        message = msg.compute_color_message("M", "s0", with_deadline=True)
        assert message.payload_bytes == msg.INT_BYTES + msg.FLOAT_BYTES


class TestSlaveDegradedPhase:
    def test_exhausted_budget_skips_sweep(self, dataset, query):
        cluster = build_cluster(dataset, num_slaves=2)
        game = cluster.game
        # Drive round 0 by hand via a deadline run, then probe a slave.
        game.run(query, deadline_seconds=1e9)
        slave = game.slaves[0]
        changes, seconds = slave.compute_color(0, remaining_seconds=0.0)
        assert changes == {} and seconds == 0.0
