"""Cross-node causal tracing of the decentralized game.

Covers the only-when-set guarantee (tracing off ⇒ byte-identical
ledgers and assignments), the stitched trace shape (slave / network
spans adopted under the master's round and phase spans with ``node``
set), straggler detection via the critical-path analysis on a chaos
run, and Chrome trace export of a distributed run.
"""

import json

import pytest

from repro.datasets import gowalla_like
from repro.distributed import DGQuery, FaultPlan, build_cluster
from repro.obs import recording
from repro.obs.analysis import analyze_recorder, format_report
from repro.obs.chrome import chrome_trace, validate_chrome
from repro.obs.exporters import jsonl_lines
from repro.obs.schema import validate_records


@pytest.fixture(scope="module")
def dataset():
    return gowalla_like(num_users=200, num_events=5, seed=11)


@pytest.fixture(scope="module")
def query(dataset):
    return DGQuery(events=dataset.events, alpha=0.5, seed=2)


def ledgers(cluster):
    return [
        (l.round_index, l.bytes_sent, l.messages)
        for l in cluster.network.round_ledgers()
    ]


class TestOnlyWhenSet:
    def test_tracing_never_changes_ledgers_or_assignment(
        self, dataset, query
    ):
        plain_cluster = build_cluster(dataset, num_slaves=3)
        plain = plain_cluster.game.run(query)
        traced_cluster = build_cluster(dataset, num_slaves=3)
        with recording():
            traced = traced_cluster.game.run(query)
        assert ledgers(plain_cluster) == ledgers(traced_cluster)
        assert plain.assignment == traced.assignment
        assert plain.total_bytes == traced.total_bytes
        assert plain.total_messages == traced.total_messages

    def test_faulty_run_is_trace_invariant_too(self, dataset, query):
        plan = FaultPlan(seed=7, drop_rate=0.2, max_consecutive_drops=2)
        plain_cluster = build_cluster(dataset, num_slaves=2, fault_plan=plan)
        plain = plain_cluster.game.run(query)
        traced_cluster = build_cluster(
            dataset, num_slaves=2, fault_plan=plan
        )
        with recording():
            traced = traced_cluster.game.run(query)
        assert ledgers(plain_cluster) == ledgers(traced_cluster)
        assert plain.assignment == traced.assignment

    def test_messages_carry_no_context_without_recorder(
        self, dataset, query
    ):
        cluster = build_cluster(dataset, num_slaves=2)
        cluster.game.run(query)
        assert cluster.game._collector is None


class TestStitchedTrace:
    @pytest.fixture(scope="class")
    def traced(self, dataset, query):
        cluster = build_cluster(dataset, num_slaves=3)
        with recording() as rec:
            result = cluster.game.run(query)
        return rec, result

    def test_slave_spans_are_adopted_with_node(self, traced):
        rec, _ = traced
        by_name = {}
        for span in rec.all_spans():
            by_name.setdefault(span.name, []).append(span)
        for name in ("slave.init", "slave.build_table", "slave.compute",
                     "slave.apply"):
            assert by_name.get(name), f"missing {name} spans"
            for span in by_name[name]:
                assert span.node is not None and span.node.startswith(
                    "slave-"
                )
        assert by_name.get("net.exchange")
        for span in by_name["net.exchange"]:
            assert span.node == "net"

    def test_phase_spans_nest_inside_rounds(self, traced):
        rec, _ = traced
        (solve,) = [s for s in rec.spans if s.name == "dg.solve"]
        rounds = [c for c in solve.children if c.name == "dg.round"]
        assert rounds
        phases = [
            g for r in rounds for g in r.children if g.name == "dg.phase"
        ]
        assert phases
        for phase in phases:
            assert "color" in phase.attrs
            assert any(c.name == "slave.compute" for c in phase.children)

    def test_remote_spans_inherit_the_trace_offset(self, traced):
        rec, _ = traced
        (solve,) = [s for s in rec.spans if s.name == "dg.solve"]
        adopted = [
            span for span in rec.all_spans() if span.node is not None
        ]
        assert adopted
        # Adoption shifts the simulated timeline to the recorder's
        # origin: no adopted span may start before the solve span.
        assert all(span.start >= solve.start for span in adopted)

    def test_exported_trace_validates_as_v2(self, traced):
        rec, _ = traced
        records = [json.loads(line) for line in jsonl_lines(rec)]
        assert validate_records(records) == []
        assert records[0]["schema"] == "repro-trace/v2"
        assert any(r.get("node") == "net" for r in records)

    def test_chrome_export_validates(self, traced):
        rec, _ = traced
        trace = chrome_trace(rec)
        assert validate_chrome(trace) == []
        names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M"
        }
        assert "master" in names
        assert any(name.startswith("slave-") for name in names)


class TestStragglerAnalysis:
    def test_overloaded_slave_is_named_straggler_under_chaos(
        self, dataset, query
    ):
        # Chaos run with one deliberately overloaded slave: the skewed
        # shard makes slave-2 do most of the table building and best
        # responses, so the critical-path analysis must name it.
        users = dataset.graph.nodes()
        shards = [users[:25], users[25:50], users[50:]]
        plan = FaultPlan(seed=3, drop_rate=0.15, max_consecutive_drops=2)
        cluster = build_cluster(
            dataset, num_slaves=3, shards=shards, fault_plan=plan
        )
        with recording() as rec:
            cluster.game.run(query)
        report = analyze_recorder(rec)
        assert report.rounds
        assert report.straggler == "slave-2"
        busy = {}
        for round_report in report.rounds:
            for node, seconds in round_report.slave_busy.items():
                busy[node] = busy.get(node, 0.0) + seconds
        assert busy["slave-2"] > busy["slave-0"]
        assert busy["slave-2"] > busy["slave-1"]
        # Injected drops force redeliveries: amplification above 1.
        assert report.retry_amplification > 1.0
        text = format_report(report)
        assert "slave-2" in text
        assert "critical path" in text

    def test_balanced_run_reports_low_imbalance(self, dataset, query):
        cluster = build_cluster(dataset, num_slaves=2)
        with recording() as rec:
            cluster.game.run(query)
        report = analyze_recorder(rec)
        assert report.rounds
        assert report.retry_amplification == 1.0
        for round_report in report.rounds:
            assert round_report.idle_seconds >= 0.0
            assert round_report.imbalance >= 1.0
