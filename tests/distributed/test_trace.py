"""Unit tests for the protocol trace recorder."""

import pytest

from repro.datasets import gowalla_like
from repro.distributed import DGQuery, MessageType, build_cluster
from repro.distributed.trace import TracingNetwork


@pytest.fixture(scope="module")
def traced_run():
    dataset = gowalla_like(num_users=200, num_events=4, seed=91)
    network = TracingNetwork()
    cluster = build_cluster(
        dataset, num_slaves=2, network=network, use_distributed_coloring=False
    )
    result = cluster.game.run(
        DGQuery(events=dataset.events, alpha=0.5, seed=0)
    )
    return network, result


class TestTraceContents:
    def test_trace_accounts_every_byte(self, traced_run):
        network, result = traced_run
        assert sum(e.total_bytes for e in network.trace) == network.total_bytes()
        assert len(network.trace) == network.total_messages()

    def test_protocol_phases_present(self, traced_run):
        network, _ = traced_run
        types = {e.msg_type for e in network.trace}
        assert MessageType.INIT in types
        assert MessageType.LOCAL_STRATEGIES in types
        assert MessageType.GLOBAL_STRATEGIES in types
        assert MessageType.COMPUTE_COLOR in types
        assert MessageType.STRATEGY_CHANGES in types
        assert MessageType.TERMINATE in types

    def test_round_zero_contains_init_and_gsv(self, traced_run):
        network, _ = traced_run
        round0 = {e.msg_type for e in network.round_trace(0)}
        assert MessageType.INIT in round0
        assert MessageType.GLOBAL_STRATEGIES in round0
        assert MessageType.COMPUTE_COLOR not in round0

    def test_bytes_by_type_totals(self, traced_run):
        network, _ = traced_run
        by_type = network.bytes_by_type()
        assert sum(by_type.values()) == network.total_bytes()
        # The GSV broadcast is the single biggest per-message payload in
        # round 0; it must dominate INIT traffic.
        assert by_type[MessageType.GLOBAL_STRATEGIES] > by_type[MessageType.INIT]

    def test_endpoints_master_centric(self, traced_run):
        network, _ = traced_run
        endpoints = network.messages_by_endpoint()
        # Relayed protocol: every message touches the master.
        assert all("M" in pair for pair in endpoints)

    def test_format_summary(self, traced_run):
        network, _ = traced_run
        text = network.format_summary()
        assert "protocol trace summary" in text
        assert "gsv" in text
        assert "->" in text


class TestPeerTrace:
    def test_peer_protocol_has_slave_to_slave_links(self):
        dataset = gowalla_like(num_users=200, num_events=4, seed=92)
        network = TracingNetwork()
        cluster = build_cluster(
            dataset, num_slaves=2, network=network, protocol="peer",
            use_distributed_coloring=False,
        )
        cluster.game.run(DGQuery(events=dataset.events, seed=0))
        endpoints = network.messages_by_endpoint()
        slave_pairs = [
            pair for pair in endpoints if "M" not in pair
        ]
        assert slave_pairs, "peer protocol must exchange slave-to-slave"
