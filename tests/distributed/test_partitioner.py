"""Unit tests for user sharding schemes."""

import random

import pytest

from repro.distributed import (
    cross_shard_edges,
    hash_partition,
    locality_partition,
    range_partition,
    shard_of_map,
)
from repro.errors import ConfigurationError
from repro.graph import erdos_renyi, planted_partition


def users(n=30):
    return list(range(n))


class TestHashPartition:
    def test_covers_all_users(self):
        shards = hash_partition(users(), 3)
        assert sorted(u for s in shards for u in s) == users()

    def test_disjoint(self):
        shards = hash_partition(users(), 4)
        seen = set()
        for shard in shards:
            assert not (set(shard) & seen)
            seen.update(shard)

    def test_deterministic(self):
        assert hash_partition(users(), 3) == hash_partition(users(), 3)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            hash_partition(users(), 0)
        with pytest.raises(ConfigurationError):
            hash_partition(users(5), 10)


class TestRangePartition:
    def test_sizes_balanced(self):
        shards = range_partition(users(10), 3)
        assert [len(s) for s in shards] == [4, 3, 3]

    def test_order_preserved(self):
        shards = range_partition(users(6), 2)
        assert shards == [[0, 1, 2], [3, 4, 5]]


class TestLocalityPartition:
    def test_reduces_cross_edges_vs_hash(self):
        graph, _ = planted_partition([40, 40], 0.3, 0.01, random.Random(0))
        hashed = hash_partition(graph.nodes(), 2)
        local = locality_partition(graph, 2, seed=0)
        assert cross_shard_edges(graph, local) < cross_shard_edges(graph, hashed)


class TestShardMap:
    def test_inverts(self):
        shards = [[0, 1], [2]]
        assert shard_of_map(shards) == {0: 0, 1: 0, 2: 1}

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            shard_of_map([[0, 1], [1]])

    def test_cross_shard_count(self):
        graph = erdos_renyi(20, 0.3, random.Random(1))
        shards = [list(range(10)), list(range(10, 20))]
        count = cross_shard_edges(graph, shards)
        expected = sum(
            1 for u, v, _ in graph.edges() if (u < 10) != (v < 10)
        )
        assert count == expected
