"""Error-path tests for the DG coordinators."""

import pytest

from repro.datasets import gowalla_like
from repro.distributed import DGQuery, DecentralizedGame, PeerToPeerGame, SlaveNode
from repro.errors import ProtocolError
from repro.graph import greedy_coloring


@pytest.fixture(scope="module")
def dataset():
    return gowalla_like(num_users=60, num_events=4, seed=111)


def make_slave(dataset, slave_id, users):
    return SlaveNode(
        slave_id,
        dataset.graph,
        users,
        dataset.checkins,
        greedy_coloring(dataset.graph),
    )


class TestCoordinatorValidation:
    def test_rejects_no_slaves(self):
        with pytest.raises(ProtocolError):
            DecentralizedGame([])
        with pytest.raises(ProtocolError):
            PeerToPeerGame([])

    @pytest.mark.parametrize("coordinator", [DecentralizedGame, PeerToPeerGame])
    def test_rejects_overlapping_shards(self, dataset, coordinator):
        """Two slaves claiming the same user is a deployment bug the
        master must surface, not silently merge."""
        users = dataset.graph.nodes()
        slave_a = make_slave(dataset, "a", users[:40])
        slave_b = make_slave(dataset, "b", users[30:])  # overlap 30..39
        game = coordinator(
            [slave_a, slave_b],
            deg_avg=dataset.graph.average_degree(),
            w_avg=dataset.graph.average_edge_weight(),
        )
        with pytest.raises(ProtocolError):
            game.run(DGQuery(events=dataset.events))

    @pytest.mark.parametrize("coordinator", [DecentralizedGame, PeerToPeerGame])
    def test_partial_shards_still_converge(self, dataset, coordinator):
        """Slaves need not cover every user; uncovered users simply do
        not participate (they live on servers outside the deployment)."""
        users = dataset.graph.nodes()
        slave = make_slave(dataset, "only", users[:30])
        game = coordinator(
            [slave],
            deg_avg=dataset.graph.average_degree(),
            w_avg=dataset.graph.average_edge_weight(),
        )
        result = game.run(DGQuery(events=dataset.events))
        assert result.converged
        assert result.num_participants == 30

    def test_missing_graph_stats_disable_normalization(self, dataset):
        """Without deg_avg/w_avg the master cannot estimate C_N and must
        fall back to the identity scaling."""
        users = dataset.graph.nodes()
        game = DecentralizedGame([make_slave(dataset, "s", users)])
        result = game.run(
            DGQuery(events=dataset.events, normalize="pessimistic")
        )
        assert result.cn == 1.0
