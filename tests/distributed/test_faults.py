"""Unit tests for the fault-injection layer.

Covers FaultPlan determinism (same seed ⇒ identical fault schedule and
final assignment), the semantics of each fault kind, the zero-overhead
guarantee of the default path, and the retry/backoff arithmetic against
the simulated clock.
"""

import math

import pytest

from repro.datasets import gowalla_like
from repro.distributed import (
    CrashEvent,
    DGQuery,
    FaultPlan,
    FaultTracingNetwork,
    FaultyNetwork,
    ReliableTransport,
    RetryPolicy,
    build_cluster,
)
from repro.distributed import messages as msg
from repro.errors import ConfigurationError, SlaveUnreachableError


@pytest.fixture(scope="module")
def dataset():
    return gowalla_like(num_users=200, num_events=5, seed=11)


@pytest.fixture(scope="module")
def query(dataset):
    return DGQuery(events=dataset.events, alpha=0.5, seed=2)


@pytest.fixture(scope="module")
def fault_free(dataset, query):
    cluster = build_cluster(dataset, num_slaves=2)
    result = cluster.game.run(query)
    ledgers = [
        (l.round_index, l.bytes_sent, l.messages)
        for l in cluster.network.round_ledgers()
    ]
    return result, ledgers


def run_with_plan(dataset, query, plan, **kwargs):
    cluster = build_cluster(dataset, num_slaves=2, fault_plan=plan, **kwargs)
    result = cluster.game.run(query)
    return cluster, result


def fault_schedule(network):
    """Comparable projection of the injected-fault ledger."""
    return [
        (f.round_index, f.step, f.kind, f.target, f.msg_type, f.attempt)
        for f in network.injected
    ]


class TestFaultPlanValidation:
    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(delay_rate=-0.1)

    def test_rejects_bad_crash(self):
        with pytest.raises(ConfigurationError):
            CrashEvent("slave-0", -1, 0)
        with pytest.raises(ConfigurationError):
            CrashEvent("slave-0", 1, 0, downtime=0.0)

    def test_describe_mentions_everything(self):
        plan = FaultPlan(
            seed=9, drop_rate=0.5, crashes=(CrashEvent("slave-1", 2, 0),)
        )
        text = plan.describe()
        assert "seed=9" in text and "drop_rate=0.5" in text
        assert "slave-1" in text and "forever" in text


class TestDeterminism:
    PLAN = FaultPlan(
        seed=42,
        drop_rate=0.4,
        delay_rate=0.3,
        duplicate_rate=0.3,
        reorder_rate=0.5,
        crashes=(CrashEvent("slave-0", 1, 2, downtime=0.01),),
    )

    def test_same_seed_identical_schedule_and_assignment(self, dataset, query):
        c1, r1 = run_with_plan(dataset, query, self.PLAN)
        c2, r2 = run_with_plan(dataset, query, self.PLAN)
        assert fault_schedule(c1.network) == fault_schedule(c2.network)
        assert r1.assignment == r2.assignment
        assert r1.total_bytes == r2.total_bytes
        assert c1.network.clock == pytest.approx(c2.network.clock)

    def test_different_seed_different_schedule(self, dataset, query):
        import dataclasses

        c1, _ = run_with_plan(dataset, query, self.PLAN)
        c2, _ = run_with_plan(
            dataset, query, dataclasses.replace(self.PLAN, seed=43)
        )
        assert fault_schedule(c1.network) != fault_schedule(c2.network)

    def test_plan_is_replayable(self, dataset, query):
        """A FaultPlan is immutable config: reuse never mutates it."""
        before = self.PLAN.describe()
        run_with_plan(dataset, query, self.PLAN)
        assert self.PLAN.describe() == before


class TestZeroOverheadDefault:
    def test_empty_plan_matches_fault_free_ledger(
        self, dataset, query, fault_free
    ):
        reference, ledgers = fault_free
        cluster, result = run_with_plan(dataset, query, FaultPlan(seed=5))
        faulty_ledgers = [
            (l.round_index, l.bytes_sent, l.messages)
            for l in cluster.network.round_ledgers()
        ]
        assert faulty_ledgers == ledgers
        assert result.assignment == reference.assignment
        assert not cluster.network.injected

    def test_plain_network_untouched_by_reliability_layer(
        self, dataset, query, fault_free
    ):
        reference, ledgers = fault_free
        cluster = build_cluster(dataset, num_slaves=2)
        result = cluster.game.run(query)
        assert cluster.game.transport is None
        assert result.total_bytes == reference.total_bytes


class TestFaultSemantics:
    def test_drops_cost_retransmissions_only(self, dataset, query, fault_free):
        reference, _ = fault_free
        plan = FaultPlan(seed=1, drop_rate=1.0, max_consecutive_drops=2)
        cluster, result = run_with_plan(dataset, query, plan)
        # Every logical message takes exactly 3 attempts (2 capped drops).
        assert result.total_messages == 3 * reference.total_messages
        drops = cluster.network.faults_by_kind()["drop"]
        assert drops == 2 * reference.total_messages
        assert result.assignment == reference.assignment

    def test_delays_change_time_not_bytes(self, dataset, query, fault_free):
        reference, _ = fault_free
        plan = FaultPlan(seed=1, delay_rate=1.0, max_delay_seconds=0.02)
        cluster, result = run_with_plan(dataset, query, plan)
        assert result.total_bytes == reference.total_bytes
        assert result.total_messages == reference.total_messages
        faulty_time = sum(
            l.transfer_seconds for l in cluster.network.round_ledgers()
        )
        reference_time = sum(r.transfer_seconds for r in reference.rounds)
        assert faulty_time > reference_time
        assert result.assignment == reference.assignment

    def test_duplicates_doubled_bytes_and_are_suppressed(
        self, dataset, query, fault_free
    ):
        reference, _ = fault_free
        plan = FaultPlan(seed=1, duplicate_rate=1.0)
        cluster, result = run_with_plan(dataset, query, plan)
        assert result.total_bytes == 2 * reference.total_bytes
        assert result.total_messages == 2 * reference.total_messages
        suppressed = sum(
            channel.duplicates_suppressed
            for channel in cluster.game.transport.channels.values()
        )
        assert suppressed == reference.total_messages
        assert result.assignment == reference.assignment

    def test_reorder_preserves_outcome(self, dataset, query, fault_free):
        reference, _ = fault_free
        plan = FaultPlan(seed=1, reorder_rate=1.0)
        cluster, result = run_with_plan(dataset, query, plan)
        assert cluster.network.faults_by_kind()["reorder"] > 0
        assert result.total_bytes == reference.total_bytes
        assert result.assignment == reference.assignment

    def test_crash_restart_recovers_same_assignment(
        self, dataset, query, fault_free
    ):
        reference, _ = fault_free
        plan = FaultPlan(
            seed=1, crashes=(CrashEvent("slave-1", 1, 1, downtime=0.01),)
        )
        cluster, result = run_with_plan(dataset, query, plan)
        kinds = cluster.network.faults_by_kind()
        assert kinds["crash"] == 1 and kinds["recovery"] == 1
        assert result.assignment == reference.assignment

    def test_faults_recorded_in_round_ledger(self, dataset, query):
        plan = FaultPlan(seed=1, drop_rate=1.0, max_consecutive_drops=1)
        cluster, _ = run_with_plan(dataset, query, plan)
        per_round = {
            l.round_index: len(l.faults)
            for l in cluster.network.round_ledgers()
        }
        assert sum(per_round.values()) == len(cluster.network.injected)
        assert per_round[0] > 0


class TestSequencingAndAcks:
    def test_sequence_numbers_and_acks_advance(self, dataset, query):
        plan = FaultPlan(seed=1, duplicate_rate=0.5)
        cluster, _ = run_with_plan(dataset, query, plan)
        for peer, channel in cluster.game.transport.channels.items():
            assert channel.next_seq > 0
            assert channel.acked_through == channel.next_seq - 1
            assert len(channel.delivered) == channel.next_seq

    def test_seq_stamp_keeps_wire_size(self):
        message = msg.ack_message("slave-0", "M")
        assert msg.with_seq(message, 17).total_bytes == message.total_bytes


class TestRetryBackoffArithmetic:
    def test_clock_matches_backoff_series(self):
        """2 forced drops + success: clock = 3·t(msg) + base·(1 + backoff)."""
        plan = FaultPlan(seed=0, drop_rate=1.0, max_consecutive_drops=2)
        net = FaultyNetwork(plan)
        policy = RetryPolicy(
            max_attempts=4, base_timeout=0.1, backoff=2.0, jitter=0.0
        )
        transport = ReliableTransport(net, policy)
        message = msg.ack_message("M", "slave-0")
        net.begin_round(0)
        transport.exchange([message])
        per_attempt = net.transfer_seconds(message.total_bytes)
        expected = 3 * per_attempt + 0.1 + 0.2
        assert net.clock == pytest.approx(expected)
        assert transport.channels["slave-0"].retries == 2

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(base_timeout=0.1, backoff=2.0, jitter=0.5)
        assert policy.timeout_after(0, 0.0) == pytest.approx(0.1)
        assert policy.timeout_after(0, 1.0) == pytest.approx(0.15)
        assert policy.timeout_after(3, 0.0) == pytest.approx(0.8)

    def test_budget_exhaustion_raises_typed_error(self):
        plan = FaultPlan(seed=0, drop_rate=1.0, max_consecutive_drops=99)
        net = FaultyNetwork(plan)
        policy = RetryPolicy(max_attempts=3, base_timeout=0.01, jitter=0.0)
        transport = ReliableTransport(net, policy)
        net.begin_round(0)
        with pytest.raises(SlaveUnreachableError) as excinfo:
            transport.exchange([msg.ack_message("M", "slave-9")])
        assert excinfo.value.slave_id == "slave-9"

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=2.0)


class TestFaultTracingNetwork:
    def test_attempt_level_trace(self, dataset, query):
        plan = FaultPlan(seed=1, drop_rate=1.0, max_consecutive_drops=1)
        net = FaultTracingNetwork(plan)
        cluster = build_cluster(dataset, num_slaves=2, network=net)
        cluster.game.run(query)
        assert net.trace, "no attempts recorded"
        dropped = net.dropped_attempts()
        assert dropped and all(not entry.delivered for entry in dropped)
        # Each dropped attempt is followed by a retransmission of the
        # same sequence number that eventually lands.
        delivered_seqs = {
            (e.sender, e.recipient, e.seq) for e in net.trace if e.delivered
        }
        for entry in dropped:
            assert (entry.sender, entry.recipient, entry.seq) in delivered_seqs


class TestPeerProtocolFaults:
    def test_message_faults_supported(self, dataset, query):
        reference = build_cluster(dataset, num_slaves=2, protocol="peer")
        ref = reference.game.run(query)
        plan = FaultPlan(seed=4, drop_rate=0.5, duplicate_rate=0.3)
        cluster = build_cluster(
            dataset, num_slaves=2, protocol="peer", fault_plan=plan
        )
        result = cluster.game.run(query)
        assert result.assignment == ref.assignment
        assert result.total_bytes > ref.total_bytes

    def test_crash_plans_rejected(self, dataset, query):
        plan = FaultPlan(seed=4, crashes=(CrashEvent("slave-0", 1, 0),))
        cluster = build_cluster(
            dataset, num_slaves=2, protocol="peer", fault_plan=plan
        )
        with pytest.raises(ConfigurationError):
            cluster.game.run(query)


class TestClusterWiring:
    def test_network_and_plan_mutually_exclusive(self, dataset):
        from repro.distributed import SimulatedNetwork

        with pytest.raises(ConfigurationError):
            build_cluster(
                dataset,
                num_slaves=2,
                network=SimulatedNetwork(),
                fault_plan=FaultPlan(),
            )

    def test_permanent_crash_marker(self):
        assert CrashEvent("slave-0", 1, 0).permanent
        assert not CrashEvent("slave-0", 1, 0, downtime=2.0).permanent
        assert math.isinf(CrashEvent("slave-0", 1, 0).downtime)
