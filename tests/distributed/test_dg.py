"""Integration-grade tests for the decentralized game and FaE."""

import numpy as np
import pytest

from repro.apps import Rectangle
from repro.core import RMGPInstance, is_nash_equilibrium
from repro.core.normalization import normalize_with_constant
from repro.datasets import gowalla_like
from repro.distributed import (
    DGQuery,
    SimulatedNetwork,
    build_cluster,
    distributed_coloring,
    hash_partition,
    run_fae,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.graph import is_proper_coloring


@pytest.fixture(scope="module")
def dataset():
    return gowalla_like(num_users=400, num_events=8, seed=17)


@pytest.fixture(scope="module")
def query(dataset):
    return DGQuery(events=dataset.events, alpha=0.5, seed=1)


class TestDistributedColoring:
    def test_proper_coloring(self, dataset):
        shards = hash_partition(dataset.graph.nodes(), 3)
        coloring, stats = distributed_coloring(dataset.graph, shards)
        assert is_proper_coloring(dataset.graph, coloring)
        assert stats.rounds >= 1
        assert stats.num_colors <= dataset.graph.max_degree() + 1

    def test_unsharded_user_rejected(self, dataset):
        shards = hash_partition(dataset.graph.nodes(), 2)
        with pytest.raises(ProtocolError):
            distributed_coloring(dataset.graph, [shards[0]])


class TestDGProtocol:
    @pytest.mark.parametrize("num_slaves", [1, 2, 3])
    def test_reaches_verified_equilibrium(self, dataset, query, num_slaves):
        cluster = build_cluster(dataset, num_slaves=num_slaves)
        result = cluster.game.run(query)
        assert result.converged
        assert result.num_participants == dataset.graph.num_nodes
        instance = normalize_with_constant(
            RMGPInstance(
                dataset.graph, dataset.event_ids, dataset.cost_matrix(), 0.5
            ),
            result.cn,
        )
        assignment = np.array(
            [result.assignment[u] for u in dataset.graph.nodes()]
        )
        assert is_nash_equilibrium(instance, assignment)

    def test_round_zero_peaks_traffic(self, dataset, query):
        cluster = build_cluster(dataset, num_slaves=2)
        result = cluster.game.run(query)
        byte_series = [r.bytes_sent for r in result.rounds]
        assert byte_series[0] == max(byte_series)

    def test_final_round_no_deviations(self, dataset, query):
        cluster = build_cluster(dataset, num_slaves=2)
        result = cluster.game.run(query)
        assert result.rounds[-1].deviations == 0

    def test_area_of_interest(self, dataset):
        area = Rectangle(-60.0, -60.0, 60.0, 60.0)
        inside = [
            u for u in dataset.graph
            if area.contains(dataset.checkins[u])
        ]
        assert inside, "fixture area must contain users"
        query = DGQuery(events=dataset.events, area=area, seed=0)
        cluster = build_cluster(dataset, num_slaves=2)
        result = cluster.game.run(query)
        assert result.num_participants == len(inside)
        assert set(result.assignment) == set(inside)

    def test_empty_area_rejected(self, dataset):
        area = Rectangle(10_000.0, 10_000.0, 10_001.0, 10_001.0)
        query = DGQuery(events=dataset.events, area=area)
        cluster = build_cluster(dataset, num_slaves=2)
        with pytest.raises(ProtocolError):
            cluster.game.run(query)

    def test_no_normalization(self, dataset):
        query = DGQuery(events=dataset.events, normalize=None, seed=0)
        cluster = build_cluster(dataset, num_slaves=2)
        result = cluster.game.run(query)
        assert result.cn == 1.0

    def test_random_init_supported(self, dataset):
        query = DGQuery(events=dataset.events, init="random", seed=7)
        cluster = build_cluster(dataset, num_slaves=2)
        result = cluster.game.run(query)
        assert result.converged


class TestDGQueryValidation:
    def test_rejects_empty_events(self):
        with pytest.raises(ConfigurationError):
            DGQuery(events=[])

    def test_rejects_bad_alpha(self, dataset):
        with pytest.raises(ConfigurationError):
            DGQuery(events=dataset.events, alpha=1.5)

    def test_rejects_bad_init(self, dataset):
        with pytest.raises(ConfigurationError):
            DGQuery(events=dataset.events, init="bogus")

    def test_rejects_bad_normalize(self, dataset):
        with pytest.raises(ConfigurationError):
            DGQuery(events=dataset.events, normalize="bogus")


class TestFaE:
    def test_transfer_accounting(self, dataset, query):
        shards = hash_partition(dataset.graph.nodes(), 2)
        result = run_fae(
            dataset.graph, dataset.checkins, shards, query,
            network=SimulatedNetwork(), seed=0,
        )
        assert result.transfer_bytes > 0
        assert result.transfer_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.transfer_seconds + result.execution_seconds
        )
        assert result.partition.converged

    def test_local_shard_skipped(self, dataset, query):
        shards = hash_partition(dataset.graph.nodes(), 2)
        remote_all = run_fae(
            dataset.graph, dataset.checkins, shards, query, seed=0
        )
        one_local = run_fae(
            dataset.graph, dataset.checkins, shards, query, seed=0,
            local_shard=0,
        )
        assert one_local.transfer_bytes < remote_all.transfer_bytes

    def test_fae_and_dg_equal_quality_class(self, dataset, query):
        """Both converge to Nash equilibria of comparable quality."""
        shards = hash_partition(dataset.graph.nodes(), 2)
        fae = run_fae(dataset.graph, dataset.checkins, shards, query, seed=1)
        cluster = build_cluster(dataset, num_slaves=2, shards=shards)
        dg = cluster.game.run(query)
        instance = normalize_with_constant(
            RMGPInstance(
                dataset.graph, dataset.event_ids, dataset.cost_matrix(), 0.5
            ),
            dg.cn,
        )
        dg_assignment = np.array(
            [dg.assignment[u] for u in dataset.graph.nodes()]
        )
        from repro.core import objective

        dg_value = objective(instance, dg_assignment).total
        fae_value = objective(instance, fae.partition.assignment).total
        assert dg_value <= 1.3 * fae_value
        assert fae_value <= 1.3 * dg_value


class TestClusterBuilder:
    def test_rejects_bad_slave_count(self, dataset):
        with pytest.raises(ConfigurationError):
            build_cluster(dataset, num_slaves=0)

    def test_rejects_partial_shards(self, dataset):
        with pytest.raises(ConfigurationError):
            build_cluster(
                dataset, num_slaves=2, shards=[dataset.graph.nodes()[:10]]
            )

    def test_centralized_coloring_option(self, dataset, query):
        cluster = build_cluster(
            dataset, num_slaves=2, use_distributed_coloring=False
        )
        result = cluster.game.run(query)
        assert result.converged
