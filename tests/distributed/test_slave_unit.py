"""Protocol-level unit tests for SlaveNode (errors and local state)."""

import numpy as np
import pytest

from repro.apps import Event, Rectangle
from repro.distributed import DGQuery, SlaveNode
from repro.errors import ProtocolError
from repro.graph import SocialGraph, greedy_coloring


@pytest.fixture
def world():
    graph = SocialGraph.from_edges(
        [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]
    )
    checkins = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (5.0, 5.0), 3: (6.0, 5.0)}
    coloring = greedy_coloring(graph)
    events = [Event("a", (0.0, 0.0)), Event("b", (6.0, 5.0))]
    return graph, checkins, coloring, events


def make_slave(world, local_users):
    graph, checkins, coloring, _ = world
    return SlaveNode("s0", graph, local_users, checkins, coloring)


class TestProtocolOrdering:
    def test_gsv_before_init_rejected(self, world):
        slave = make_slave(world, [0, 1])
        with pytest.raises(ProtocolError):
            slave.receive_gsv({0: 0, 1: 0})

    def test_compute_before_gsv_rejected(self, world):
        graph, checkins, coloring, events = world
        slave = make_slave(world, [0, 1])
        slave.initialize(DGQuery(events=events))
        with pytest.raises(ProtocolError):
            slave.compute_color(0)

    def test_apply_before_gsv_rejected(self, world):
        slave = make_slave(world, [0, 1])
        with pytest.raises(ProtocolError):
            slave.apply_changes({0: 1})

    def test_change_for_non_participant_rejected(self, world):
        graph, checkins, coloring, events = world
        slave = make_slave(world, [0, 1])
        report = slave.initialize(DGQuery(events=events, normalize=None))
        slave.receive_gsv(report.local_strategies)
        with pytest.raises(ProtocolError):
            slave.apply_changes({42: 0})


class TestInitialization:
    def test_report_contents(self, world):
        graph, checkins, coloring, events = world
        slave = make_slave(world, [0, 1])
        report = slave.initialize(
            DGQuery(events=events, init="closest", normalize=None)
        )
        assert report.num_participants == 2
        assert set(report.local_strategies) == {0, 1}
        assert report.distance_computations == 2 * 2
        assert report.colors == {coloring[0], coloring[1]}
        # Closest init: users 0 and 1 sit near event "a" (index 0).
        assert report.local_strategies[0] == 0
        assert report.local_strategies[1] == 0

    def test_area_filter(self, world):
        graph, checkins, coloring, events = world
        slave = make_slave(world, [0, 1, 2, 3])
        area = Rectangle(-1.0, -1.0, 2.0, 1.0)
        report = slave.initialize(
            DGQuery(events=events, area=area, normalize=None)
        )
        assert set(report.local_strategies) == {0, 1}
        assert slave.participants == [0, 1]

    def test_distance_sums(self, world):
        graph, checkins, coloring, events = world
        slave = make_slave(world, [0])
        report = slave.initialize(DGQuery(events=events, normalize=None))
        # User 0 at (0,0): distances 0 and sqrt(61).
        assert report.sum_min_distance == pytest.approx(0.0)
        assert report.sum_median_distance == pytest.approx(
            (0.0 + np.hypot(6.0, 5.0)) / 2.0
        )


class TestComputeApply:
    def test_cross_slave_friend_pull(self, world):
        """A remote friend's strategy change updates the local table."""
        graph, checkins, coloring, events = world
        slave = make_slave(world, [1])
        report = slave.initialize(
            DGQuery(events=events, init="closest", normalize=None)
        )
        # Global view: 0,1 at event 0; 2,3 at event 1.
        gsv = {0: 0, 1: report.local_strategies[1], 2: 1, 3: 1}
        slave.receive_gsv(gsv)
        # Remote friend 2 (weight 1.0) moves to event 0 -> user 1's cost
        # for event 0 drops by (1-alpha)/2 * w = 0.25.
        before = slave._table[0].copy()
        slave.apply_changes({2: 0})
        after = slave._table[0]
        assert after[0] == pytest.approx(before[0] - 0.25)
        assert after[1] == pytest.approx(before[1] + 0.25)

    def test_local_changes_not_applied_until_redistributed(self, world):
        graph, checkins, coloring, events = world
        slave = make_slave(world, [0, 1, 2, 3])
        report = slave.initialize(
            DGQuery(events=events, init="random", seed=5, normalize=None)
        )
        slave.receive_gsv(report.local_strategies)
        color = coloring[0]
        changes, _ = slave.compute_color(color)
        for user, new_class in changes.items():
            # Not applied yet: local assignment still the old one.
            assert slave.local_assignment()[user] != new_class or (
                slave.local_assignment()[user] == new_class
            )
        # After redistribution they take effect.
        slave.apply_changes(changes)
        for user, new_class in changes.items():
            assert slave.local_assignment()[user] == new_class
