"""Unit tests for the multilevel k-way partitioner (METIS stand-in)."""

import random

import pytest

from repro.baselines import kway_partition
from repro.errors import ConfigurationError
from repro.graph import SocialGraph, cut_weight, erdos_renyi, planted_partition


class TestBasics:
    def test_covers_all_nodes(self):
        graph = erdos_renyi(50, 0.15, random.Random(0))
        result = kway_partition(graph, 4, seed=0)
        assert set(result.parts) == set(graph.nodes())
        assert set(result.parts.values()) <= set(range(4))

    def test_cut_matches_reported(self):
        graph = erdos_renyi(40, 0.2, random.Random(1))
        result = kway_partition(graph, 3, seed=1)
        assert result.cut == pytest.approx(cut_weight(graph, result.parts))

    def test_members_partition(self):
        graph = erdos_renyi(30, 0.2, random.Random(2))
        result = kway_partition(graph, 3, seed=0)
        members = result.members()
        assert len(members) == 3
        flattened = [node for group in members for node in group]
        assert sorted(flattened) == sorted(graph.nodes())

    def test_single_part_no_cut(self):
        graph = erdos_renyi(20, 0.3, random.Random(3))
        result = kway_partition(graph, 1, seed=0)
        assert result.cut == 0.0

    def test_empty_graph(self):
        result = kway_partition(SocialGraph(), 3)
        assert result.parts == {}
        assert result.cut == 0.0

    def test_n_parts_equals_n_nodes(self):
        graph = SocialGraph.from_edges([(0, 1), (1, 2)])
        result = kway_partition(graph, 3, seed=0)
        assert len(set(result.parts.values())) == 3


class TestQuality:
    def test_roughly_balanced(self):
        graph = erdos_renyi(120, 0.1, random.Random(4))
        k = 4
        result = kway_partition(graph, k, seed=0, imbalance=0.10)
        sizes = [len(g) for g in result.members()]
        # Allow slack beyond the nominal constraint: region growing can
        # overshoot by one claim before freezing a part.
        assert max(sizes) <= (1.25) * graph.num_nodes / k + 1

    def test_finds_planted_cut(self):
        graph, membership = planted_partition(
            [40, 40], 0.4, 0.01, random.Random(5)
        )
        result = kway_partition(graph, 2, seed=0)
        planted_cut = cut_weight(
            graph, {v: membership[v] for v in graph}
        )
        # The partitioner should get within striking distance of the
        # planted (near-optimal) cut.
        assert result.cut <= 3.0 * max(planted_cut, 1.0)

    def test_beats_random_split(self):
        graph = erdos_renyi(100, 0.12, random.Random(6))
        result = kway_partition(graph, 4, seed=0)
        rng = random.Random(7)
        random_labels = {v: rng.randrange(4) for v in graph}
        assert result.cut < cut_weight(graph, random_labels)


class TestValidation:
    def test_rejects_non_positive_parts(self):
        graph = erdos_renyi(10, 0.3, random.Random(0))
        with pytest.raises(ConfigurationError):
            kway_partition(graph, 0)

    def test_rejects_more_parts_than_nodes(self):
        graph = SocialGraph.from_edges([(0, 1)])
        with pytest.raises(ConfigurationError):
            kway_partition(graph, 3)
