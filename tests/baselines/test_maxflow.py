"""Unit tests for the Dinic max-flow / min-cut solver."""

import pytest

from repro.baselines import FlowNetwork
from repro.errors import SolverError


class TestMaxFlow:
    def test_single_edge(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 5.0)
        assert net.max_flow(0, 1) == pytest.approx(5.0)

    def test_series_bottleneck(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 10.0)
        net.add_edge(1, 2, 3.0)
        assert net.max_flow(0, 2) == pytest.approx(3.0)

    def test_parallel_paths(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 2.0)
        net.add_edge(1, 3, 2.0)
        net.add_edge(0, 2, 3.0)
        net.add_edge(2, 3, 3.0)
        assert net.max_flow(0, 3) == pytest.approx(5.0)

    def test_classic_diamond_with_cross_edge(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 10.0)
        net.add_edge(0, 2, 10.0)
        net.add_edge(1, 2, 1.0)
        net.add_edge(1, 3, 8.0)
        net.add_edge(2, 3, 10.0)
        assert net.max_flow(0, 3) == pytest.approx(18.0)

    def test_disconnected_is_zero(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 4.0)
        assert net.max_flow(0, 2) == 0.0

    def test_undirected_edge_both_ways(self):
        net = FlowNetwork(3)
        net.add_undirected_edge(0, 1, 3.0)
        net.add_undirected_edge(1, 2, 3.0)
        assert net.max_flow(0, 2) == pytest.approx(3.0)
        fresh = FlowNetwork(3)
        fresh.add_undirected_edge(0, 1, 3.0)
        fresh.add_undirected_edge(1, 2, 3.0)
        assert fresh.max_flow(2, 0) == pytest.approx(3.0)


class TestMinCut:
    def test_cut_value_equals_flow(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 4.0)
        net.add_edge(0, 2, 2.0)
        net.add_edge(1, 3, 3.0)
        net.add_edge(2, 3, 5.0)
        value, side = net.min_cut_source_side(0, 3)
        assert value == pytest.approx(5.0)
        assert 0 in side
        assert 3 not in side

    def test_cut_separates(self):
        net = FlowNetwork(5)
        net.add_edge(0, 1, 1.0)
        net.add_edge(1, 2, 10.0)
        net.add_edge(2, 3, 10.0)
        net.add_edge(3, 4, 10.0)
        value, side = net.min_cut_source_side(0, 4)
        assert value == pytest.approx(1.0)
        assert side == {0}


class TestValidation:
    def test_rejects_zero_nodes(self):
        with pytest.raises(SolverError):
            FlowNetwork(0)

    def test_rejects_negative_capacity(self):
        net = FlowNetwork(2)
        with pytest.raises(SolverError):
            net.add_edge(0, 1, -1.0)
        with pytest.raises(SolverError):
            net.add_undirected_edge(0, 1, -1.0)

    def test_rejects_out_of_range_nodes(self):
        net = FlowNetwork(2)
        with pytest.raises(SolverError):
            net.add_edge(0, 5, 1.0)
        with pytest.raises(SolverError):
            net.max_flow(0, 5)

    def test_rejects_same_source_sink(self):
        net = FlowNetwork(2)
        with pytest.raises(SolverError):
            net.max_flow(1, 1)
