"""Unit tests for the UML baselines: LP relaxation, greedy, MH, exact."""

import numpy as np
import pytest

from repro.baselines import (
    lp_lower_bound,
    optimal_value,
    solve_exact,
    solve_metis_hungarian,
    solve_uml_greedy,
    solve_uml_lp,
)
from repro.core import objective
from repro.errors import ConfigurationError

from tests.core.conftest import random_instance, tiny_instance


class TestExact:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, seed):
        instance = random_instance(
            num_players=6, num_classes=3, edge_probability=0.5, seed=seed
        )
        exact = solve_exact(instance)
        # Brute force over all 3^6 assignments.
        best = min(
            objective(
                instance,
                np.array(
                    [(code // 3**v) % 3 for v in range(6)], dtype=np.int64
                ),
            ).total
            for code in range(3**6)
        )
        assert exact.value.total == pytest.approx(best)

    def test_refuses_huge_instances(self):
        instance = random_instance(num_players=20, num_classes=4)
        with pytest.raises(ConfigurationError):
            solve_exact(instance, max_leaves=1000)

    def test_optimal_value_wrapper(self):
        instance = tiny_instance(seed=1)
        assert optimal_value(instance) == pytest.approx(
            solve_exact(instance).value.total
        )


class TestLP:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lower_bound_below_optimum(self, seed):
        instance = tiny_instance(seed=seed)
        bound = lp_lower_bound(instance)
        assert bound <= optimal_value(instance) + 1e-6

    @pytest.mark.parametrize("seed", [0, 1])
    def test_rounded_solution_valid_and_bounded(self, seed):
        instance = tiny_instance(seed=seed)
        result = solve_uml_lp(instance, seed=seed)
        instance.validate_assignment(result.assignment)
        # KT guarantees expected 2-approx; we keep the best of many
        # trials, so being within 2x of the LP bound is near-certain.
        assert result.value.total <= 2.0 * result.extra["lp_value"] + 1e-6

    def test_integral_lp_is_optimal(self):
        # On most small instances the relaxation is integral (as the
        # paper observed); when it is, the result equals the optimum.
        instance = tiny_instance(seed=3)
        result = solve_uml_lp(instance, seed=0)
        if result.extra["lp_integral"]:
            assert result.value.total == pytest.approx(
                optimal_value(instance), abs=1e-6
            )

    def test_reports_diagnostics(self):
        instance = tiny_instance(seed=0)
        result = solve_uml_lp(instance, seed=0)
        assert result.extra["approximation_ratio_bound"] == 2.0
        assert result.extra["rounding_gap"] >= 1.0 - 1e-9


class TestGreedy:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_assignment(self, seed):
        instance = random_instance(seed=seed)
        result = solve_uml_greedy(instance)
        instance.validate_assignment(result.assignment)
        assert result.converged

    def test_single_class(self):
        instance = random_instance(num_classes=1, seed=0)
        result = solve_uml_greedy(instance)
        assert set(result.assignment.tolist()) == {0}

    def test_never_below_lp_bound(self):
        instance = tiny_instance(seed=4)
        result = solve_uml_greedy(instance)
        assert result.value.total >= lp_lower_bound(instance) - 1e-6

    def test_deterministic(self):
        instance = random_instance(seed=5)
        a = solve_uml_greedy(instance)
        b = solve_uml_greedy(instance)
        np.testing.assert_array_equal(a.assignment, b.assignment)


class TestMetisHungarian:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_valid_assignment(self, seed):
        instance = random_instance(num_players=30, num_classes=4, seed=seed)
        result = solve_metis_hungarian(instance, seed=seed)
        instance.validate_assignment(result.assignment)

    def test_each_partition_gets_distinct_class(self):
        instance = random_instance(num_players=30, num_classes=4, seed=2)
        result = solve_metis_hungarian(instance, seed=0)
        mapping = result.extra["partition_to_class"]
        assert len(set(mapping)) == instance.k

    def test_rejects_k_above_n(self):
        instance = random_instance(num_players=3, num_classes=4, seed=0)
        with pytest.raises(ConfigurationError):
            solve_metis_hungarian(instance)

    def test_never_below_lp_bound(self):
        instance = tiny_instance(seed=6)
        result = solve_metis_hungarian(instance, seed=0)
        assert result.value.total >= lp_lower_bound(instance) - 1e-6
