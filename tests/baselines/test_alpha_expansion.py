"""Unit tests for the alpha-expansion baseline."""

import numpy as np
import pytest

from repro.baselines import lp_lower_bound, optimal_value
from repro.baselines.alpha_expansion import _expansion_move, solve_alpha_expansion
from repro.core import objective, solve_baseline

from tests.core.conftest import random_instance, tiny_instance


class TestExpansionMove:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_move_is_optimal_among_expansions(self, seed):
        """The min-cut expansion beats every brute-force expansion of a.

        An expansion of class ``a`` from labeling L is any labeling where
        each node either keeps L's label or takes ``a``; on tiny
        instances we enumerate all 2^n of them.
        """
        instance = random_instance(
            num_players=7, num_classes=3, edge_probability=0.5, seed=seed
        )
        rng = np.random.default_rng(seed)
        labeling = rng.integers(0, instance.k, instance.n)
        for klass in range(instance.k):
            candidate = _expansion_move(instance, labeling, klass)
            best = float("inf")
            for mask in range(2**instance.n):
                trial = labeling.copy()
                for v in range(instance.n):
                    if mask >> v & 1:
                        trial[v] = klass
                best = min(best, objective(instance, trial).total)
            assert objective(instance, candidate).total == pytest.approx(
                best, abs=1e-9
            )

    def test_move_never_worsens(self):
        instance = random_instance(seed=10)
        rng = np.random.default_rng(0)
        labeling = rng.integers(0, instance.k, instance.n)
        before = objective(instance, labeling).total
        for klass in range(instance.k):
            candidate = _expansion_move(instance, labeling, klass)
            assert objective(instance, candidate).total <= before + 1e-9

    def test_nodes_with_label_keep_it(self):
        instance = random_instance(seed=11)
        rng = np.random.default_rng(1)
        labeling = rng.integers(0, instance.k, instance.n)
        klass = 0
        candidate = _expansion_move(instance, labeling, klass)
        for v in range(instance.n):
            if labeling[v] == klass:
                assert candidate[v] == klass


class TestSolver:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_valid_and_bounded(self, seed):
        instance = tiny_instance(seed=seed)
        result = solve_alpha_expansion(instance, seed=seed)
        instance.validate_assignment(result.assignment)
        assert result.converged
        opt = optimal_value(instance)
        assert result.value.total <= 2.0 * opt + 1e-9
        assert result.value.total >= lp_lower_bound(instance) - 1e-6

    def test_quality_competitive_with_game(self):
        instance = tiny_instance(seed=5)
        expansion = solve_alpha_expansion(instance, seed=0)
        game = solve_baseline(instance, init="closest", order="given")
        # Expansion moves are strictly stronger than single-player moves,
        # so from the same landscape it should be at least comparable.
        assert expansion.value.total <= 1.2 * game.value.total + 1e-9

    def test_diagnostics(self):
        instance = random_instance(seed=12)
        result = solve_alpha_expansion(instance, seed=0)
        assert result.extra["sweeps"] >= 1
        assert result.extra["cuts_solved"] >= instance.k
        assert result.extra["approximation_ratio_bound"] == 2.0
