"""Unit and property tests for the Hungarian assignment solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.baselines import assignment_cost_of, hungarian
from repro.errors import ConfigurationError


class TestKnownCases:
    def test_identity_is_optimal(self):
        cost = np.array([[0.0, 9.0], [9.0, 0.0]])
        assignment, total = hungarian(cost)
        assert assignment == [0, 1]
        assert total == 0.0

    def test_forced_swap(self):
        cost = np.array([[9.0, 0.0], [0.0, 9.0]])
        assignment, total = hungarian(cost)
        assert assignment == [1, 0]
        assert total == 0.0

    def test_classic_3x3(self):
        cost = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]])
        _, total = hungarian(cost)
        rows, cols = linear_sum_assignment(cost)
        assert total == pytest.approx(cost[rows, cols].sum())

    def test_rectangular_more_columns(self):
        cost = np.array([[5.0, 1.0, 9.0, 2.0], [4.0, 6.0, 1.0, 3.0]])
        assignment, total = hungarian(cost)
        assert len(set(assignment)) == 2
        rows, cols = linear_sum_assignment(cost)
        assert total == pytest.approx(cost[rows, cols].sum())

    def test_empty(self):
        assignment, total = hungarian(np.zeros((0, 3)))
        assert assignment == []
        assert total == 0.0


class TestValidation:
    def test_rejects_more_rows_than_columns(self):
        with pytest.raises(ConfigurationError):
            hungarian(np.zeros((3, 2)))

    def test_rejects_non_matrix(self):
        with pytest.raises(ConfigurationError):
            hungarian(np.zeros(4))

    def test_rejects_non_finite(self):
        with pytest.raises(ConfigurationError):
            hungarian(np.array([[np.inf, 1.0]]))


class TestAssignmentCostOf:
    def test_computes_total(self):
        cost = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert assignment_cost_of(cost, [1, 0]) == pytest.approx(5.0)

    def test_rejects_wrong_length(self):
        with pytest.raises(ConfigurationError):
            assignment_cost_of(np.zeros((2, 2)), [0])

    def test_rejects_column_reuse(self):
        with pytest.raises(ConfigurationError):
            assignment_cost_of(np.zeros((2, 2)), [0, 0])


@settings(max_examples=50, deadline=None)
@given(
    rows=st.integers(1, 7),
    extra_cols=st.integers(0, 3),
    seed=st.integers(0, 10_000),
)
def test_property_matches_scipy(rows, extra_cols, seed):
    """Optimal value always equals scipy's linear_sum_assignment."""
    rng = np.random.default_rng(seed)
    cost = rng.uniform(0.0, 100.0, size=(rows, rows + extra_cols))
    assignment, total = hungarian(cost)
    # Feasible: distinct columns.
    assert len(set(assignment)) == rows
    reference_rows, reference_cols = linear_sum_assignment(cost)
    assert total == pytest.approx(cost[reference_rows, reference_cols].sum())
