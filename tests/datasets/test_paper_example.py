"""The reconstructed running example must satisfy every claim the paper
makes about it explicitly (Sections 3.1 and 4.1)."""

import numpy as np
import pytest

from repro.core import (
    build_elimination_plan,
    is_nash_equilibrium,
    objective,
    solve_all,
    solve_baseline,
)
from repro.datasets import (
    EVENTS,
    USERS,
    paper_example_cost_matrix,
    paper_example_graph,
    paper_example_instance,
)


@pytest.fixture(scope="module")
def instance():
    return paper_example_instance()


@pytest.fixture(scope="module")
def plan(instance):
    return build_elimination_plan(instance)


class TestFigure1Data:
    def test_six_users_three_events(self, instance):
        assert instance.n == 6
        assert instance.k == 3
        assert instance.alpha == 0.5

    def test_v1_costs_match_section_4_1(self):
        matrix = paper_example_cost_matrix()
        v1 = USERS.index("v1")
        np.testing.assert_allclose(matrix[v1], [0.48, 0.60, 0.27])

    def test_graph_shape(self):
        graph = paper_example_graph()
        assert graph.num_nodes == 6
        assert graph.num_edges == 6
        # W_v1 = 0.10 (half the incident weight), forced by VR_v1 = 0.37.
        assert graph.weighted_degree("v1") == pytest.approx(0.20)


class TestSection41Claims:
    def test_vr_v1_is_0_37(self, instance, plan):
        v1 = instance.index_of["v1"]
        assert plan.valid_regions[v1] == pytest.approx(0.37)

    def test_s_v1_contains_only_p3(self, instance, plan):
        v1 = instance.index_of["v1"]
        assert plan.valid_classes[v1].tolist() == [EVENTS.index("p3")]
        assert plan.fixed_class[v1] == EVENTS.index("p3")

    def test_v5_eliminated(self, instance, plan):
        """'Similarly, we can eliminate v5' — one valid strategy only."""
        v5 = instance.index_of["v5"]
        assert plan.fixed_class[v5] == EVENTS.index("p1")

    def test_p1_pruned_from_v2(self, instance, plan):
        """'... and prune p1 from S'_v2'."""
        v2 = instance.index_of["v2"]
        valid = set(plan.valid_classes[v2].tolist())
        assert EVENTS.index("p1") not in valid
        assert EVENTS.index("p2") in valid
        assert EVENTS.index("p3") in valid


class TestEquilibrium:
    def test_deterministic_equilibrium(self, instance):
        result = solve_baseline(instance, init="closest", order="given")
        assert result.labels == {
            "v1": "p3",
            "v2": "p2",
            "v3": "p2",
            "v4": "p2",
            "v5": "p1",
            "v6": "p2",
        }
        assert is_nash_equilibrium(instance, result.assignment)

    def test_v4_dragged_by_friends(self, instance):
        """The Figure 1 narrative: v4 is not at his closest event because
        his friends v3 and v6 attend another one."""
        result = solve_baseline(instance, init="closest", order="given")
        v4 = instance.index_of["v4"]
        closest = int(instance.cost.row(v4).argmin())
        assert result.assignment[v4] != closest
        assert result.labels["v4"] == result.labels["v3"] == result.labels["v6"]

    def test_all_solvers_agree_on_this_instance(self, instance):
        expected = solve_baseline(instance, init="closest", order="given")
        optimized = solve_all(instance, init="closest", order="given")
        np.testing.assert_array_equal(expected.assignment, optimized.assignment)

    def test_objective_value(self, instance):
        result = solve_baseline(instance, init="closest", order="given")
        value = objective(instance, result.assignment)
        # Hand computation: assignment = .27+.34+.30+.67+.10+.20 = 1.88;
        # crossing edges: (v1,v4)=.1, (v1,v5)=.1, (v2,v5)=.4 -> 0.6.
        assert value.assignment_cost == pytest.approx(1.88)
        assert value.social_cost == pytest.approx(0.60)
        assert value.total == pytest.approx(0.5 * 1.88 + 0.5 * 0.60)
