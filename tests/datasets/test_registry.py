"""Unit tests for the dataset registry."""

import pytest

from repro.datasets import (
    GeoSocialDataset,
    clear_cache,
    dataset_names,
    load_dataset,
    register_dataset,
    with_event_count,
)
from repro.errors import DataError


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestLoad:
    def test_names(self):
        assert "gowalla" in dataset_names()
        assert "foursquare" in dataset_names()

    def test_load_gowalla(self):
        dataset = load_dataset("gowalla", num_users=200, num_events=8, seed=1)
        assert dataset.graph.num_nodes == 200
        assert len(dataset.events) == 8

    def test_cache_returns_same_object(self):
        a = load_dataset("gowalla", num_users=150, num_events=4, seed=2)
        b = load_dataset("gowalla", num_users=150, num_events=4, seed=2)
        assert a is b

    def test_cache_bypass(self):
        a = load_dataset("gowalla", num_users=150, num_events=4, seed=2)
        b = load_dataset(
            "gowalla", num_users=150, num_events=4, seed=2, use_cache=False
        )
        assert a is not b

    def test_different_params_different_objects(self):
        a = load_dataset("gowalla", num_users=150, num_events=4, seed=2)
        b = load_dataset("gowalla", num_users=150, num_events=4, seed=3)
        assert a is not b

    def test_unknown_name(self):
        with pytest.raises(DataError):
            load_dataset("instagram")


class TestRegister:
    def test_register_and_load(self):
        def factory(num_users=10, num_events=2, seed=None):
            base = load_dataset("gowalla", num_users=num_users,
                                num_events=num_events, seed=seed)
            return GeoSocialDataset(
                name="custom", graph=base.graph, checkins=base.checkins,
                events=base.events,
            )

        register_dataset("custom-test", factory)
        try:
            dataset = load_dataset("custom-test", num_users=50, num_events=2)
            assert dataset.name == "custom"
        finally:
            from repro.datasets import registry

            registry._FACTORIES.pop("custom-test", None)

    def test_duplicate_rejected(self):
        with pytest.raises(DataError):
            register_dataset("gowalla", lambda **kw: None)


class TestWithEventCount:
    def test_subsamples(self):
        dataset = load_dataset("gowalla", num_users=100, num_events=16, seed=0)
        smaller = with_event_count(dataset, 4, seed=0)
        assert len(smaller.events) == 4
        assert smaller.graph is dataset.graph

    def test_same_count_is_identity(self):
        dataset = load_dataset("gowalla", num_users=100, num_events=8, seed=0)
        assert with_event_count(dataset, 8) is dataset
