"""Unit tests for the synthetic forum dataset."""

import pytest

from repro.datasets.forum import DEFAULT_TOPICS, ForumDataset, forum_like
from repro.errors import DataError


class TestGeneration:
    def test_thread_count(self):
        forum = forum_like(num_users=100, threads_per_topic=10, seed=0)
        assert len(forum.threads) == 10 * len(DEFAULT_TOPICS)

    def test_every_topic_has_members(self):
        forum = forum_like(num_users=20, threads_per_topic=5, seed=1)
        covered = set(forum.home_topic.values())
        assert covered == set(DEFAULT_TOPICS)

    def test_deterministic_by_seed(self):
        a = forum_like(num_users=50, threads_per_topic=5, seed=7)
        b = forum_like(num_users=50, threads_per_topic=5, seed=7)
        assert [t.text for t in a.threads] == [t.text for t in b.threads]
        assert a.home_topic == b.home_topic

    def test_custom_topics(self):
        topics = {"cats": "cat kitten purr whiskers", "dogs": "dog puppy bark"}
        forum = forum_like(
            num_users=30, threads_per_topic=4, topics=topics, seed=0
        )
        assert set(forum.home_topic.values()) <= {"cats", "dogs"}
        assert len(forum.default_advertisements()) == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_users": 1},
            {"threads_per_topic": 0},
            {"participants_range": (0, 3)},
            {"participants_range": (5, 2)},
            {"crossover_rate": 1.5},
            {"topics": {}},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(DataError):
            forum_like(**{"num_users": 40, "seed": 0, **kwargs})


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def forum(self) -> ForumDataset:
        return forum_like(num_users=150, threads_per_topic=25, seed=3)

    def test_task_builds(self, forum):
        task = forum.task()
        assert task.graph.num_nodes > 0
        assert task.graph.num_edges > 0

    def test_topical_placement_recovers_home_topics(self, forum):
        """TAGP should send most users the ad matching their home topic."""
        task = forum.task()
        ads = forum.default_advertisements()
        placement, partition = task.place_advertisements(
            ads, method="all", normalize_method="pessimistic", seed=0
        )
        assert partition.converged
        matched = sum(
            1
            for user, ad in placement.items()
            if ad.ad_id == f"ad-{forum.home_topic[user]}"
        )
        assert matched / len(placement) > 0.7
