"""Unit tests for the Gowalla-like / Foursquare-like synthetic datasets."""

import random

import pytest

from repro.datasets import (
    foursquare_like,
    gowalla_like,
    jittered_checkins,
    metro_positions,
    sample_events,
    subsample_events,
)
from repro.datasets.geo import homophilous_friendships
from repro.errors import DataError


class TestMetroPositions:
    def test_counts(self):
        positions = metro_positions(
            100, [(0, 0), (100, 0)], [0.5, 0.5], 5.0, random.Random(0)
        )
        assert len(positions) == 100

    def test_clusters_around_centers(self):
        positions = metro_positions(
            500, [(0, 0), (1000, 0)], [0.5, 0.5], 10.0, random.Random(1)
        )
        near_a = sum(1 for x, _ in positions if x < 500)
        assert 150 < near_a < 350

    def test_rejects_mismatched_weights(self):
        with pytest.raises(DataError):
            metro_positions(10, [(0, 0)], [0.5, 0.5], 1.0, random.Random(0))

    def test_rejects_zero_weights(self):
        with pytest.raises(DataError):
            metro_positions(10, [(0, 0)], [0.0], 1.0, random.Random(0))


class TestFriendships:
    def test_average_degree_near_target(self):
        rng = random.Random(2)
        positions = metro_positions(1500, [(0, 0)], [1.0], 20.0, rng)
        graph = homophilous_friendships(positions, 8.0, rng)
        assert 6.0 < graph.average_degree() < 10.0

    def test_heavy_tail(self):
        rng = random.Random(3)
        positions = metro_positions(1000, [(0, 0)], [1.0], 20.0, rng)
        graph = homophilous_friendships(positions, 6.0, rng)
        assert graph.max_degree() > 2.5 * graph.average_degree()

    def test_geographic_homophily(self):
        """Most friendships connect users closer than a random pair."""
        rng = random.Random(4)
        positions = metro_positions(800, [(0, 0)], [1.0], 30.0, rng)
        graph = homophilous_friendships(positions, 6.0, rng)
        import math

        def dist(u, v):
            (x1, y1), (x2, y2) = positions[u], positions[v]
            return math.hypot(x1 - x2, y1 - y2)

        edge_dists = [dist(u, v) for u, v, _ in graph.edges()]
        random_dists = [
            dist(rng.randrange(800), rng.randrange(800)) for _ in range(2000)
        ]
        edge_med = sorted(edge_dists)[len(edge_dists) // 2]
        rand_med = sorted(random_dists)[len(random_dists) // 2]
        assert edge_med < 0.5 * rand_med

    def test_rejects_bad_target(self):
        with pytest.raises(DataError):
            homophilous_friendships([(0, 0), (1, 1)], 0.0, random.Random(0))


class TestGowalla:
    @pytest.fixture(scope="class")
    def dataset(self):
        return gowalla_like(num_users=2000, num_events=32, seed=5)

    def test_shape(self, dataset):
        assert dataset.graph.num_nodes == 2000
        assert len(dataset.events) == 32
        assert len(dataset.checkins) == 2000

    def test_degree_matches_paper_density(self, dataset):
        # Paper: deg_avg ~ 7.6 for the full slice; generator targets it.
        assert 5.5 < dataset.graph.average_degree() < 9.5

    def test_unit_weights(self, dataset):
        assert all(w == 1.0 for _, _, w in dataset.graph.edges())

    def test_two_metro_clusters(self, dataset):
        ys = [p[1] for p in dataset.checkins.values()]
        low = sum(1 for y in ys if y < 130)
        high = len(ys) - low
        assert low > 200 and high > 200

    def test_cost_matrix_alignment(self, dataset):
        matrix = dataset.cost_matrix()
        assert matrix.shape == (2000, 32)
        assert (matrix >= 0).all()

    def test_deterministic_by_seed(self):
        a = gowalla_like(num_users=300, num_events=8, seed=9)
        b = gowalla_like(num_users=300, num_events=8, seed=9)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())
        assert a.checkins == b.checkins

    def test_rejects_tiny(self):
        with pytest.raises(DataError):
            gowalla_like(num_users=1)


class TestFoursquare:
    def test_shape_and_density(self):
        dataset = foursquare_like(num_users=1200, num_events=64, seed=6)
        assert dataset.graph.num_nodes == 1200
        assert len(dataset.events) == 64
        # Target deg_avg ~ 25 (paper's density).
        assert 18 < dataset.graph.average_degree() < 32

    def test_rejects_degree_above_n(self):
        with pytest.raises(DataError):
            foursquare_like(num_users=10, avg_degree=20)


class TestEvents:
    def test_sample_count_and_ids(self):
        rng = random.Random(0)
        events = sample_events([(0.0, 0.0), (10.0, 10.0)], 16, rng)
        assert len(events) == 16
        assert len({e.event_id for e in events}) == 16

    def test_rejects_bad_arguments(self):
        rng = random.Random(0)
        with pytest.raises(DataError):
            sample_events([(0, 0)], 0, rng)
        with pytest.raises(DataError):
            sample_events([], 4, rng)
        with pytest.raises(DataError):
            sample_events([(0, 0)], 4, rng, near_user_fraction=1.5)

    def test_subsample(self):
        rng = random.Random(0)
        events = sample_events([(0.0, 0.0)], 16, rng)
        subset = subsample_events(events, 4, rng)
        assert len(subset) == 4
        assert {e.event_id for e in subset} <= {e.event_id for e in events}

    def test_subsample_errors(self):
        rng = random.Random(0)
        events = sample_events([(0.0, 0.0)], 4, rng)
        with pytest.raises(DataError):
            subsample_events(events, 0, rng)
        with pytest.raises(DataError):
            subsample_events(events, 5, rng)


class TestCheckins:
    def test_jitter_near_home(self):
        rng = random.Random(0)
        positions = [(0.0, 0.0), (100.0, 100.0)]
        checkins = jittered_checkins(positions, 1.0, rng)
        assert abs(checkins[0][0]) < 10
        assert abs(checkins[1][0] - 100) < 10
