"""Satellite 1: ``workers``/``backend`` validation and resolution."""

from __future__ import annotations

import pytest

from repro.api import SolveOptions
from repro.core.registry import BACKENDS, backend_available
from repro.errors import ConfigurationError
from repro.parallel.backend import (
    KNOWN_BACKENDS,
    WORKERS_ENV,
    numba_available,
    resolve_backend,
    resolve_workers,
)


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 6)
        assert resolve_workers(None) == 6

    def test_cpu_count_none_falls_back_to_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: None)
        assert resolve_workers(None) == 1

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "two", True])
    def test_invalid_argument_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_workers(bad)

    @pytest.mark.parametrize("bad", ["0", "-3", "banana", "2.5"])
    def test_invalid_env_rejected(self, monkeypatch, bad):
        monkeypatch.setenv(WORKERS_ENV, bad)
        with pytest.raises(ConfigurationError, match=WORKERS_ENV):
            resolve_workers(None)

    def test_garbage_env_ignored_when_workers_explicit(self, monkeypatch):
        # The env default is parsed lazily: a broken shell profile must
        # not take down a solve that pinned its worker count.
        monkeypatch.setenv(WORKERS_ENV, "banana")
        assert resolve_workers(4) == 4


class TestResolveBackend:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend("gpu", None)

    def test_workers_alone_implies_shm(self):
        resolved = resolve_backend(None, 2)
        assert resolved.requested == "shm"
        assert resolved.effective == "shm"
        assert resolved.workers == 2

    def test_workers_one_is_documented_serial_fallback(self):
        resolved = resolve_backend("shm", 1)
        assert resolved.effective == "pure"
        assert "serial fallback" in resolved.reason
        info = resolved.info()
        assert info["backend"] == "shm"
        assert info["backend_effective"] == "pure"
        assert "backend_fallback_reason" in info

    def test_pure_never_builds_an_engine_info(self):
        resolved = resolve_backend("pure", None)
        assert resolved.effective == "pure"
        assert resolved.info()["backend"] == "pure"

    @pytest.mark.skipif(
        numba_available(), reason="numba importable: no fallback to assert"
    )
    def test_numba_falls_back_to_pure_when_absent(self):
        resolved = resolve_backend("numba", None)
        assert resolved.requested == "numba"
        assert resolved.effective == "pure"
        assert "numba" in resolved.reason


class TestSolveOptionsValidation:
    def test_workers_below_one_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="workers"):
            SolveOptions(workers=0)

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            SolveOptions(backend="cuda")

    @pytest.mark.parametrize("bad", [0, -5, 1.5, True])
    def test_exact_scale_must_be_positive_int(self, bad):
        with pytest.raises(ConfigurationError, match="exact_scale"):
            SolveOptions(exact_scale=bad)

    def test_valid_options_construct(self):
        options = SolveOptions(backend="shm", workers=2, exact_scale=10**9)
        assert options.solver_kwargs() == {
            "backend": "shm", "workers": 2, "exact_scale": 10**9,
        }


class TestRegistrySurface:
    def test_backends_match_known(self):
        assert tuple(BACKENDS) == KNOWN_BACKENDS

    def test_pure_and_shm_always_available(self):
        assert backend_available("pure")
        assert backend_available("shm")

    def test_unknown_not_available(self):
        assert not backend_available("tpu")

    def test_numba_reports_import_truth(self):
        assert backend_available("numba") == numba_available()
