"""Fixtures for the parallel-backend suite.

``shm_leak_check`` is autouse for the whole package: every test runs
between two scans of the process's live-arena table *and* ``/dev/shm``
itself, so a forgotten ``close()``/``unlink()`` anywhere in the suite
fails the leaking test by name instead of silently filling the host's
shared-memory filesystem.
"""

from __future__ import annotations

import glob

import pytest

from repro.parallel.shm import SEGMENT_PREFIX, live_segment_names


def _dev_shm_segments() -> set:
    # /dev/shm is where Linux backs POSIX shared memory; on platforms
    # without it the glob is simply empty and the in-process live table
    # still covers the leak check.
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


@pytest.fixture(autouse=True)
def shm_leak_check():
    before_live = set(live_segment_names())
    before_fs = _dev_shm_segments()
    yield
    leaked_live = set(live_segment_names()) - before_live
    leaked_fs = _dev_shm_segments() - before_fs
    assert not leaked_live, f"leaked live arenas: {sorted(leaked_live)}"
    assert not leaked_fs, f"leaked /dev/shm segments: {sorted(leaked_fs)}"
