"""Satellite 2: shm segment lifecycle — cleanup on every exit path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import paper_example_instance
from repro.errors import ConfigurationError
from repro.parallel.engine import ShmEngine, engine_scope, make_engine
from repro.parallel.shm import ShmArena, _reap_live, live_segment_names


def _arrays():
    return {
        "a": np.arange(10, dtype=np.int64),
        "b": np.linspace(0.0, 1.0, 7),
        "c": np.zeros((3, 4), dtype=np.float64),
    }


class TestArena:
    def test_round_trip_preserves_values_and_dtypes(self):
        arrays = _arrays()
        arena = ShmArena.create(arrays)
        try:
            attached = ShmArena.attach(arena.name, arena.layout)
            try:
                for name, original in arrays.items():
                    view = attached.views()[name]
                    assert view.dtype == original.dtype
                    assert view.shape == original.shape
                    np.testing.assert_array_equal(view, original)
            finally:
                attached.close()
        finally:
            arena.destroy()

    def test_attached_views_share_the_owner_buffer(self):
        arena = ShmArena.create(_arrays())
        try:
            attached = ShmArena.attach(arena.name, arena.layout)
            try:
                arena.views()["a"][3] = 99
                assert attached.views()["a"][3] == 99
            finally:
                attached.close()
        finally:
            arena.destroy()

    def test_destroy_is_idempotent(self):
        arena = ShmArena.create(_arrays())
        arena.destroy()
        arena.destroy()
        assert arena.name not in live_segment_names()

    def test_destroy_unlinks_despite_outstanding_view(self):
        # Destroy must unlink even while a caller still holds a view:
        # the name cannot persist in /dev/shm.  The view itself is dead
        # after destroy — dereferencing it is use-after-unmap — so the
        # test checks the filesystem, not the dangling array.
        import glob

        arena = ShmArena.create(_arrays())
        view = arena.views()["a"]
        assert view[0] == 0  # live before destroy
        arena.destroy()
        assert arena.name not in live_segment_names()
        assert not glob.glob(f"/dev/shm/{arena.name}")
        del view

    def test_context_manager_owner_destroys(self):
        with ShmArena.create(_arrays()) as arena:
            name = arena.name
            assert name in live_segment_names()
        assert name not in live_segment_names()

    def test_atexit_reaper_collects_forgotten_arenas(self):
        arena = ShmArena.create(_arrays())
        assert arena.name in live_segment_names()
        _reap_live()  # what the atexit hook runs
        assert arena.name not in live_segment_names()


class TestEngineCleanup:
    def test_shutdown_releases_segment_and_is_idempotent(self):
        instance = paper_example_instance()
        engine = ShmEngine(instance, workers=2)
        name = engine.arena.name
        assert name in live_segment_names()
        engine.shutdown()
        assert name not in live_segment_names()
        engine.shutdown()  # second call must be a no-op

    def test_engine_scope_releases_on_exception(self):
        instance = paper_example_instance()
        engine, _ = make_engine(instance, backend="shm", workers=2)
        with pytest.raises(RuntimeError, match="boom"):
            with engine_scope(engine):
                assert live_segment_names()
                raise RuntimeError("boom")
        assert not live_segment_names()

    def test_engine_scope_accepts_none(self):
        with engine_scope(None):
            pass

    def test_solver_exception_does_not_leak(self):
        # An exception on the solve path after the engine exists must
        # still unwind through the solver's finally and unlink.
        from repro.core.vectorized import _solve_vectorized

        instance = paper_example_instance()
        improper = {node: 0 for node in instance.node_ids}  # one color
        with pytest.raises(ConfigurationError, match="coloring"):
            _solve_vectorized(
                instance, seed=0, backend="shm", workers=2,
                coloring=improper,
            )
        assert not live_segment_names()
