"""Worker-pool robustness: dead workers, start methods, error relay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import paper_example_instance
from repro.errors import ConfigurationError
from repro.parallel.engine import ShmEngine
from repro.parallel.pool import start_method
from repro.parallel.shm import live_segment_names


def test_start_method_default_is_valid():
    import multiprocessing as mp

    assert start_method(None) in mp.get_all_start_methods()


def test_start_method_rejects_unknown():
    with pytest.raises(ConfigurationError, match="start method"):
        start_method("osiris")


def test_env_override_start_method(monkeypatch):
    import multiprocessing as mp

    methods = mp.get_all_start_methods()
    monkeypatch.setenv("REPRO_MP_START", methods[-1])
    assert start_method(None) == methods[-1]


def test_dead_worker_is_detected_not_hung():
    # Killing a worker mid-life must surface as a RuntimeError naming
    # the dead worker at the next dispatch — never an indefinite hang —
    # and the segment must still be unlinked by shutdown.
    instance = paper_example_instance()
    engine = ShmEngine(instance, workers=2)
    try:
        assignment = np.zeros(instance.n, dtype=np.int64)
        members = np.arange(instance.n, dtype=np.int64)
        engine.scalar_moves(assignment, members)  # pool is live
        victim = engine.pool._procs[0]
        victim.kill()
        victim.join(10)
        with pytest.raises(RuntimeError, match="worker"):
            engine.scalar_moves(assignment, members)
    finally:
        engine.shutdown()
    assert not live_segment_names()


def test_worker_exception_is_relayed_with_traceback():
    # A failing task must come back as a RuntimeError carrying the
    # worker's traceback, not poison the queue or hang the parent.
    instance = paper_example_instance()
    engine = ShmEngine(instance, workers=1)
    try:
        with pytest.raises(RuntimeError, match="unknown task kind"):
            engine.pool.run("no-such-kind", [np.arange(3, dtype=np.int64)])
    finally:
        engine.shutdown()
    assert not live_segment_names()


@pytest.mark.skipif(
    "spawn" not in __import__("multiprocessing").get_all_start_methods(),
    reason="spawn unavailable",
)
def test_spawn_start_method_round_trips():
    # fork is the fast default; spawn must also work (it is the only
    # option on some platforms) — layouts ride the argument list, so
    # nothing depends on inherited memory.
    instance = paper_example_instance()
    engine = ShmEngine(instance, workers=2, start_method="spawn")
    try:
        rng = np.random.default_rng(0)
        assignment = rng.integers(0, instance.k, instance.n).astype(np.int64)
        members = np.arange(instance.n, dtype=np.int64)
        players, bests = engine.scalar_moves(assignment, members)
        from repro.parallel import kernels

        ka = kernels.kernel_arrays(instance)
        ref = kernels.scalar_moves(
            ka.indptr, ka.indices, ka.scaled_dense, ka.maxsc, ka.refunds,
            assignment, members, engine_tol(),
        )
        assert np.array_equal(players, ref[0])
        assert np.array_equal(bests, ref[1])
    finally:
        engine.shutdown()
    assert not live_segment_names()


def engine_tol():
    from repro.core.dynamics import DEVIATION_TOLERANCE

    return DEVIATION_TOLERANCE
