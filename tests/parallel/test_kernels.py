"""Kernel equivalence: loop forms vs numpy forms, float and exact.

The numba backend jits the *loop* kernels; numba is optional, but the
loop kernels are plain Python when it is absent, so their semantics —
which is what the jit compiles — are testable everywhere.  Each loop
form must return bit-identical moves to its numpy counterpart, because
both are documented as byte-identical to the pure solvers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import dynamics
from repro.core.global_table import build_global_table, table_round
from repro.core.objective import player_strategy_costs
from repro.parallel import kernels

from tests.streaming.conftest import INSTANCE_FAMILIES

TOL = dynamics.DEVIATION_TOLERANCE


def _setup(family="erdos_renyi", seed=1):
    instance = INSTANCE_FAMILIES[family](seed=seed)
    ka = kernels.kernel_arrays(instance)
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, instance.k, instance.n).astype(np.int64)
    members = np.arange(instance.n, dtype=np.int64)
    return instance, ka, assignment, members


@pytest.mark.parametrize("family", sorted(INSTANCE_FAMILIES))
def test_scalar_moves_match_objective_module(family):
    # The kernel must agree with the reference implementation the rest
    # of the repo uses (repro.core.objective), move for move.
    instance, ka, assignment, members = _setup(family)
    players, bests = kernels.scalar_moves(
        ka.indptr, ka.indices, ka.scaled_dense, ka.maxsc, ka.refunds,
        assignment, members, TOL,
    )
    expected = []
    for player in members:
        costs = player_strategy_costs(instance, assignment, int(player))
        current = int(assignment[player])
        best = int(costs.argmin())
        if best != current and costs[best] < costs[current] - TOL:
            expected.append((int(player), best))
    assert list(zip(players.tolist(), bests.tolist())) == expected


@pytest.mark.parametrize("family", sorted(INSTANCE_FAMILIES))
def test_scalar_loop_matches_numpy_form(family):
    _, ka, assignment, members = _setup(family)
    a = kernels.scalar_moves(
        ka.indptr, ka.indices, ka.scaled_dense, ka.maxsc, ka.refunds,
        assignment, members, TOL,
    )
    b = kernels._scalar_moves_loop(
        ka.indptr, ka.indices, ka.scaled_dense, ka.maxsc, ka.refunds,
        assignment, members, TOL,
    )
    assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


@pytest.mark.parametrize("family", sorted(INSTANCE_FAMILIES))
def test_batched_loop_matches_numpy_form(family):
    instance, ka, assignment, members = _setup(family)
    a = kernels.batched_moves(
        ka.indptr, ka.indices, ka.scaled_dense, ka.maxsc, ka.refunds,
        assignment, members, instance.k, TOL,
    )
    b = kernels._batched_moves_loop(
        ka.indptr, ka.indices, ka.scaled_dense, ka.maxsc, ka.refunds,
        assignment, members, TOL,
    )
    assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


def test_chunked_batched_moves_equal_whole_batch():
    # The shm merge contract in miniature: evaluating member chunks
    # separately and concatenating equals one whole-batch evaluation,
    # bitwise (chunk keys never mix rows).
    instance, ka, assignment, members = _setup("barabasi_albert")
    whole = kernels.batched_moves(
        ka.indptr, ka.indices, ka.scaled_dense, ka.maxsc, ka.refunds,
        assignment, members, instance.k, TOL,
    )
    for num_chunks in (2, 3, 5):
        parts = [
            kernels.batched_moves(
                ka.indptr, ka.indices, ka.scaled_dense, ka.maxsc,
                ka.refunds, assignment, chunk, instance.k, TOL,
            )
            for chunk in np.array_split(members, num_chunks)
        ]
        players = np.concatenate([p[0] for p in parts])
        bests = np.concatenate([p[1] for p in parts])
        assert np.array_equal(players, whole[0])
        assert np.array_equal(bests, whole[1])


def test_table_rows_chunks_equal_full_build():
    instance, ka, assignment, _ = _setup("planted_partition")
    full = build_global_table(instance, assignment)
    out = np.zeros_like(full)
    edges = [0, instance.n // 3, 2 * instance.n // 3, instance.n]
    for lo, hi in zip(edges, edges[1:]):
        kernels.table_rows(
            ka.indptr, ka.indices, ka.scaled_dense, ka.maxsc, ka.refunds,
            assignment, lo, hi, instance.k, out,
        )
    assert out.tobytes() == full.tobytes()


def test_table_sweep_loop_matches_table_round():
    instance, _, assignment, _ = _setup("erdos_renyi")
    ka = kernels.kernel_arrays(instance)
    sweep = np.argsort(-instance.degrees(), kind="stable").astype(np.int64)

    table_a = build_global_table(instance, assignment)
    table_b = table_a.copy()
    assign_a = assignment.copy()
    assign_b = assignment.copy()
    active_a = dynamics.ActiveSet(instance.n)
    flags_b = np.ones(instance.n, dtype=bool)

    dev_a, exam_a = table_round(
        instance, table_a, assign_a, active_a, sweep.tolist()
    )
    dev_b, exam_b = kernels._table_sweep_loop(
        table_b, assign_b, flags_b, sweep, ka.indptr, ka.indices,
        ka.refunds, TOL,
    )
    assert (dev_a, exam_a) == (dev_b, exam_b)
    assert assign_a.tobytes() == assign_b.tobytes()
    assert table_a.tobytes() == table_b.tobytes()
    assert np.array_equal(active_a.flags, flags_b)


def test_exact_scalar_loop_matches_exact_batched():
    # int64 accumulation is associative, so the sequential loop and the
    # add.at accumulator must agree exactly — this is the property the
    # LocalEngine relies on when numba is absent.
    instance, _, assignment, members = _setup("barabasi_albert")
    payload = kernels.exact_payload(instance, 10**9)
    a = kernels._exact_scalar_moves_loop(
        instance.indptr, instance.indices, payload.int_cost,
        payload.int_maxsc, payload.int_refund, assignment, members,
    )
    b = kernels.exact_batched_moves(
        instance.indptr, instance.indices, payload.int_cost,
        payload.int_maxsc, payload.int_refund, assignment, members,
        instance.k,
    )
    assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


def test_empty_members_return_empty_moves():
    instance, ka, assignment, _ = _setup()
    empty = np.empty(0, dtype=np.int64)
    players, bests = kernels.batched_moves(
        ka.indptr, ka.indices, ka.scaled_dense, ka.maxsc, ka.refunds,
        assignment, empty, instance.k, TOL,
    )
    assert players.size == 0 and bests.size == 0
