"""Backend conformance: every backend × solver × family is byte-identical.

The determinism contract of :mod:`repro.parallel` is not "close": the
shm pool, the (optional) numba kernels and the pure path must produce
**the same bytes** — same assignment, same round trajectory — because
the merge replays the serial commit order and every float is computed
by an operation sequence with identical rounding (see DESIGN.md §4.5).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import SolveOptions
from repro.errors import ConfigurationError
from repro.parallel.backend import numba_available
from repro.runtime.token import CancelToken

from tests.streaming.conftest import INSTANCE_FAMILIES

PARALLEL_SOLVERS = ("is", "vec", "gt", "sync")

BACKENDS = ["shm"] + (["numba"] if numba_available() else [])


def _solve(instance, solver, **kwargs):
    return repro.partition(
        instance, solver=solver, options=SolveOptions(seed=7, **kwargs)
    )


@pytest.mark.parametrize("family", sorted(INSTANCE_FAMILIES))
@pytest.mark.parametrize("solver", PARALLEL_SOLVERS)
@pytest.mark.parametrize("backend", BACKENDS)
class TestByteIdentity:
    def test_assignment_and_trajectory_match_pure(
        self, family, solver, backend
    ):
        instance = INSTANCE_FAMILIES[family](seed=3)
        pure = _solve(instance, solver)
        parallel = _solve(instance, solver, backend=backend, workers=2)
        assert parallel.assignment.tobytes() == pure.assignment.tobytes()
        assert parallel.num_rounds == pure.num_rounds
        assert [r.deviations for r in parallel.rounds] == [
            r.deviations for r in pure.rounds
        ]
        assert parallel.extra["backend"] == backend
        assert parallel.converged == pure.converged


@pytest.mark.parametrize("solver", PARALLEL_SOLVERS)
def test_three_workers_matches_two(solver):
    # The chunking changes with the pool size; the merge must not.
    instance = INSTANCE_FAMILIES["erdos_renyi"](seed=5)
    two = _solve(instance, solver, backend="shm", workers=2)
    three = _solve(instance, solver, backend="shm", workers=3)
    assert two.assignment.tobytes() == three.assignment.tobytes()


def test_workers_alone_selects_shm():
    instance = INSTANCE_FAMILIES["erdos_renyi"]()
    result = _solve(instance, "vec", workers=2)
    assert result.extra["backend"] == "shm"
    assert result.extra["backend_effective"] == "shm"


def test_workers_one_serial_fallback_still_identical():
    instance = INSTANCE_FAMILIES["barabasi_albert"]()
    pure = _solve(instance, "vec")
    fallback = _solve(instance, "vec", backend="shm", workers=1)
    assert fallback.assignment.tobytes() == pure.assignment.tobytes()
    assert fallback.extra["backend_effective"] == "pure"
    assert "serial fallback" in fallback.extra["backend_fallback_reason"]


@pytest.mark.skipif(numba_available(), reason="numba importable here")
def test_numba_fallback_is_recorded_and_identical():
    instance = INSTANCE_FAMILIES["erdos_renyi"]()
    pure = _solve(instance, "vec")
    result = _solve(instance, "vec", backend="numba")
    assert result.assignment.tobytes() == pure.assignment.tobytes()
    assert result.extra["backend"] == "numba"
    assert result.extra["backend_effective"] == "pure"
    assert "numba" in result.extra["backend_fallback_reason"]


def test_threads_and_workers_are_mutually_exclusive():
    instance = INSTANCE_FAMILIES["erdos_renyi"]()
    with pytest.raises(ConfigurationError, match="threads"):
        repro.partition(instance, solver="is", threads=2, workers=2, seed=0)


class TestRuntimeComposition:
    """backend= composes with deadlines, cancellation and checkpoints."""

    def test_cancelled_shm_solve_reports_and_cleans_up(self):
        from repro.parallel.shm import live_segment_names

        instance = INSTANCE_FAMILIES["planted_partition"]()
        token = CancelToken()
        token.cancel()
        result = repro.partition(
            instance, solver="vec",
            options=SolveOptions(seed=7, backend="shm", workers=2,
                                 cancel_token=token),
        )
        assert not result.converged
        assert result.stop_reason == "cancelled"
        assert not live_segment_names()

    def test_deadline_interrupt_then_resume_on_shm(self, tmp_path):
        instance = INSTANCE_FAMILIES["barabasi_albert"](seed=9)
        reference = _solve(instance, "vec", backend="shm", workers=2)
        assert reference.num_rounds >= 2, "need a multi-round instance"

        path = str(tmp_path / "vec.ckpt.json")
        partial = repro.partition(
            instance, solver="vec",
            options=SolveOptions(
                seed=7, backend="shm", workers=2,
                deadline_seconds=1e-9,
                checkpoint_path=path, checkpoint_every=1,
            ),
        )
        assert not partial.converged
        assert partial.stop_reason == "deadline"
        resumed = repro.partition(
            instance, solver="vec",
            options=SolveOptions(
                seed=7, backend="shm", workers=2, resume_from=path
            ),
        )
        assert resumed.converged
        assert (
            resumed.assignment.tobytes() == reference.assignment.tobytes()
        )

    def test_resume_across_backends_is_identical(self, tmp_path):
        # A checkpoint written by a pure solve resumes on shm with the
        # same final bytes: checkpoint state is backend-independent.
        instance = INSTANCE_FAMILIES["barabasi_albert"](seed=9)
        reference = _solve(instance, "vec")
        path = str(tmp_path / "cross.ckpt.json")
        partial = repro.partition(
            instance, solver="vec",
            options=SolveOptions(
                seed=7, deadline_seconds=1e-9,
                checkpoint_path=path, checkpoint_every=1,
            ),
        )
        assert not partial.converged
        resumed = repro.partition(
            instance, solver="vec",
            options=SolveOptions(
                seed=7, backend="shm", workers=2, resume_from=path
            ),
        )
        assert resumed.converged
        assert (
            resumed.assignment.tobytes() == reference.assignment.tobytes()
        )


def test_mutations_compose_with_backend():
    from repro.streaming.mutations import COST_FLOOR, UpdateCostRow

    instance = INSTANCE_FAMILIES["erdos_renyi"](seed=4)
    node = instance.node_ids[0]
    mutation = UpdateCostRow(node, tuple([COST_FLOOR + 0.1] * instance.k))
    pure = repro.partition(
        instance, solver="vec", seed=7, mutations=[mutation]
    )
    parallel = repro.partition(
        instance, solver="vec", seed=7, mutations=[mutation],
        backend="shm", workers=2,
    )
    assert parallel.assignment.tobytes() == pure.assignment.tobytes()
