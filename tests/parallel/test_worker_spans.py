"""Satellite 6: per-worker utilization spans feed the straggler analysis."""

from __future__ import annotations

import repro
from repro.api import SolveOptions
from repro.obs import recording
from repro.obs.analysis import analyze_recorder, format_report
from repro.parallel.engine import WORKER_SPAN

from tests.streaming.conftest import INSTANCE_FAMILIES


def _traced_solve(solver="vec", workers=2):
    instance = INSTANCE_FAMILIES["barabasi_albert"](seed=3)
    with recording() as recorder:
        result = repro.partition(
            instance, solver=solver,
            options=SolveOptions(seed=7, backend="shm", workers=workers),
        )
    return recorder, result


def test_worker_spans_are_adopted_under_round_spans():
    recorder, _ = _traced_solve()
    worker_spans = [
        s for s in recorder.all_spans() if s.name == WORKER_SPAN
    ]
    assert worker_spans, "shm solve must emit worker.compute spans"
    assert {s.node for s in worker_spans} <= {"worker-0", "worker-1"}
    for span in worker_spans:
        assert span.end >= span.start
        assert "players" in span.attrs
        assert span.parent_id is not None, (
            "worker spans must graft under the solve's span tree"
        )


def test_utilization_counters_are_labeled_per_worker():
    recorder, _ = _traced_solve()
    tasks = [
        m for m in recorder.metrics
        if m.name == "parallel.tasks" and m.kind == "counter"
    ]
    busy = [
        m for m in recorder.metrics
        if m.name == "parallel.busy_seconds" and m.kind == "counter"
    ]
    assert tasks and busy
    workers_seen = {dict(m.labels).get("worker") for m in tasks}
    assert workers_seen  # chunk j -> worker j%W: worker 0 always works
    assert all(m.value >= 0 for m in busy)


def test_straggler_analysis_names_a_worker():
    recorder, _ = _traced_solve()
    report = analyze_recorder(recorder)
    assert report.rounds, "parallel rounds must be analyzable"
    assert report.straggler is not None
    assert report.straggler.startswith("worker-")
    text = format_report(report)
    assert "worker-" in text
    assert "critical path" in text


def test_profile_cli_straggler_report(tmp_path, capsys):
    # End to end: `repro profile --backend shm` exports a trace that
    # `repro analyze` digests into a per-worker report.
    from repro.cli import main

    trace = str(tmp_path / "parallel.jsonl")
    assert main([
        "profile", "--dataset", "paper", "--method", "vec",
        "--backend", "shm", "--workers", "2", "--jsonl", trace,
    ]) == 0
    capsys.readouterr()
    assert main(["analyze", trace]) == 0
    out = capsys.readouterr().out
    assert "worker-" in out
