"""Lemma 2 integer scaling: exact fixed-point agreement, no tolerance.

Floats need a byte-identity *argument* (same operation sequence, same
rounding); integers need none — int64 addition is associative, so any
chunking, any backend, any evaluation order produces the same numbers.
These tests assert **exact equality** (``array_equal``, ``tobytes``)
between backends under ``exact_scale`` — there is no ``atol`` anywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import SolveOptions
from repro.errors import ConfigurationError
from repro.parallel.kernels import exact_payload

from tests.streaming.conftest import INSTANCE_FAMILIES

SCALE = 10**9


def _curated_instance():
    # The curated family for the acceptance criterion: community
    # structure plus uniform random costs — ties and near-ties occur, so
    # the exact comparison is doing real work.
    return INSTANCE_FAMILIES["planted_partition"](seed=2)


class TestExactPayload:
    def test_quantization_is_deterministic(self):
        instance = _curated_instance()
        a = exact_payload(instance, SCALE)
        b = exact_payload(instance, SCALE)
        assert np.array_equal(a.int_cost, b.int_cost)
        assert np.array_equal(a.int_refund, b.int_refund)
        assert np.array_equal(a.int_maxsc, b.int_maxsc)
        assert a.int_cost.dtype == np.int64

    def test_maxsc_is_exact_row_sum_of_refunds(self):
        instance = _curated_instance()
        payload = exact_payload(instance, SCALE)
        manual = np.zeros(instance.n, dtype=np.int64)
        np.add.at(manual, instance.edge_owner, payload.int_refund)
        assert np.array_equal(payload.int_maxsc, manual)

    @pytest.mark.parametrize("bad", [0, -1, 0.5])
    def test_scale_must_be_positive_integer(self, bad):
        with pytest.raises(ConfigurationError):
            exact_payload(_curated_instance(), bad)

    def test_overflow_guard(self):
        with pytest.raises(ConfigurationError, match="overflow"):
            exact_payload(_curated_instance(), 10**19)

    def test_overflow_guard_fires_before_wraparound(self):
        # The guard must inspect pre-cast float magnitudes: at extreme
        # scales an int64 accumulate wraps and could land back under the
        # threshold, silently producing garbage payloads.
        with pytest.raises(ConfigurationError, match="overflow"):
            exact_payload(_curated_instance(), 10**25)


@pytest.mark.parametrize("solver", ["is", "vec"])
class TestExactAgreement:
    def test_pure_exact_equals_shm_exact(self, solver):
        instance = _curated_instance()
        pure = repro.partition(
            instance, solver=solver,
            options=SolveOptions(seed=7, exact_scale=SCALE),
        )
        shm = repro.partition(
            instance, solver=solver,
            options=SolveOptions(
                seed=7, exact_scale=SCALE, backend="shm", workers=2
            ),
        )
        # Exact equality between backends — integer arithmetic leaves no
        # room for a float tolerance.
        assert np.array_equal(pure.assignment, shm.assignment)
        assert pure.assignment.tobytes() == shm.assignment.tobytes()
        assert pure.num_rounds == shm.num_rounds
        assert pure.extra["exact_scale"] == SCALE
        assert shm.extra["exact_scale"] == SCALE

    def test_exact_result_is_an_equilibrium_of_the_float_game(self, solver):
        # A sufficiently fine scale preserves every strict preference, so
        # the integer fixed point is a Nash equilibrium of the original
        # float game too.
        from repro.core.objective import player_strategy_costs

        instance = _curated_instance()
        result = repro.partition(
            instance, solver=solver,
            options=SolveOptions(seed=7, exact_scale=SCALE),
        )
        assert result.converged
        for player in range(instance.n):
            costs = player_strategy_costs(
                instance, result.assignment, player
            )
            current = costs[result.assignment[player]]
            assert current <= costs.min() + 1e-9
