"""Smoke tests: every example script runs cleanly end to end.

The examples are part of the public API surface (deliverable walk-
throughs); they must keep working as the library evolves.  Each is run
in a subprocess with the repository sources on the path.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)

EXAMPLES = [
    "quickstart.py",
    "lagp_event_promotion.py",
    "tagp_advertising.py",
    "decentralized_cluster.py",
    "normalization_study.py",
    "online_recommendations.py",
    "capacitated_events.py",
    "multicriteria_profiles.py",
]

EXPECTED_MARKERS = {
    "quickstart.py": ["Nash equilibrium", "v4"],
    "lagp_event_promotion.py": ["area of interest", "alpha=0.9"],
    "tagp_advertising.py": ["ad audiences", "friend pairs sharing an ad"],
    "decentralized_cluster.py": ["DG:", "FaE:", "equilibrium verified: True"],
    "normalization_study.py": ["pessimistic", "C_N"],
    "online_recommendations.py": ["epoch", "incremental"],
    "capacitated_events.py": ["capacitated equilibrium verified: True"],
    "multicriteria_profiles.py": [
        "criterion contributions",
        "own theme",
    ],
}


def test_all_examples_are_covered():
    on_disk = sorted(
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    )
    assert on_disk == sorted(EXAMPLES), "new example? add it to this test"


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    outcome = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert outcome.returncode == 0, outcome.stderr[-2000:]
    for marker in EXPECTED_MARKERS[script]:
        assert marker in outcome.stdout, (
            f"{script}: expected {marker!r} in output"
        )
