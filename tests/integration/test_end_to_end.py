"""End-to-end integration tests across packages."""

import numpy as np
import pytest

from repro.apps import Event, LAGPTask, Rectangle
from repro.baselines import solve_exact, solve_metis_hungarian, solve_uml_lp
from repro.core import (
    RMGPInstance,
    is_nash_equilibrium,
    objective,
    solve_all,
    solve_baseline,
)
from repro.core.normalization import normalize_with_constant
from repro.datasets import gowalla_like
from repro.distributed import DGQuery, build_cluster, hash_partition, run_fae

from tests.core.conftest import tiny_instance


class TestLAGPPipeline:
    """Dataset -> task -> repeated real-time queries."""

    @pytest.fixture(scope="class")
    def task(self):
        return gowalla_like(num_users=600, num_events=16, seed=23).lagp_task()

    def test_citywide_then_area_then_warm(self, task):
        citywide = task.query(method="all", seed=0)
        assert citywide.partition.converged
        assert len(citywide.recommendation) == 600

        area = Rectangle(-80.0, -80.0, 80.0, 80.0)
        local = task.query(area=area, method="all", seed=0)
        assert 0 < len(local.participants) < 600

        warm = task.query(
            method="all", seed=0, warm_start=citywide.partition.assignment
        )
        assert warm.partition.total_deviations == 0

    def test_all_methods_agree_on_equilibrium_validity(self, task):
        game, _, _ = task.build_game(alpha=0.5)
        for method in ("baseline", "se", "is", "gt", "all"):
            result = game.solve(method=method, seed=1)
            assert game.verify(result).is_equilibrium, method


class TestSolverCrossValidation:
    """All five variants against the exact optimum on tiny instances."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equilibria_within_two_of_optimal_from_opt_start(self, seed):
        instance = tiny_instance(seed=seed)
        exact = solve_exact(instance)
        for solver in (solve_baseline, solve_all):
            result = solver(instance, warm_start=exact.assignment, seed=seed)
            assert result.value.total <= 2.0 * exact.value.total + 1e-9

    @pytest.mark.parametrize("seed", [0, 1])
    def test_game_quality_close_to_lp(self, seed):
        """Paper §6.1: the game's quality is comparable to UML_lp."""
        instance = tiny_instance(seed=seed)
        lp = solve_uml_lp(instance, seed=seed)
        game = solve_baseline(instance, init="closest", order="degree", seed=seed)
        assert game.value.total <= 2.5 * lp.extra["lp_value"] + 1e-9

    def test_mh_runs_on_game_instances(self):
        instance = tiny_instance(seed=3)
        mh = solve_metis_hungarian(instance, seed=0)
        instance.validate_assignment(mh.assignment)


class TestDecentralizedEquivalence:
    def test_dg_fae_and_centralized_all_nash(self):
        dataset = gowalla_like(num_users=300, num_events=8, seed=31)
        query = DGQuery(events=dataset.events, alpha=0.5, seed=2)
        shards = hash_partition(dataset.graph.nodes(), 2)

        cluster = build_cluster(dataset, num_slaves=2, shards=shards)
        dg = cluster.game.run(query)
        fae = run_fae(dataset.graph, dataset.checkins, shards, query, seed=2)

        base = RMGPInstance(
            dataset.graph, dataset.event_ids, dataset.cost_matrix(), 0.5
        )
        instance = normalize_with_constant(base, dg.cn)
        dg_assignment = np.array(
            [dg.assignment[u] for u in dataset.graph.nodes()]
        )
        assert is_nash_equilibrium(instance, dg_assignment)
        assert is_nash_equilibrium(instance, fae.partition.assignment)

        centralized = solve_all(instance, seed=2)
        assert is_nash_equilibrium(instance, centralized.assignment)

        # All three equilibria have the same order-of-magnitude quality.
        values = [
            objective(instance, dg_assignment).total,
            objective(instance, fae.partition.assignment).total,
            centralized.value.total,
        ]
        assert max(values) <= 1.5 * min(values)


class TestWarmStartAcrossCheckins:
    def test_incremental_requery(self):
        """The repeated-execution scenario of Section 3.1."""
        dataset = gowalla_like(num_users=300, num_events=8, seed=37)
        task = dataset.lagp_task()
        first = task.query(method="all", seed=0)
        # A handful of users move slightly.
        import random

        rng = random.Random(0)
        for user in rng.sample(dataset.graph.nodes(), 10):
            x, y = task.checkins[user]
            task.check_in(user, (x + 1.0, y - 1.0))
        second = task.query(
            method="all", seed=0, warm_start=first.partition.assignment
        )
        assert second.partition.converged
        # Warm start converges in very few rounds after a small update.
        assert second.partition.num_rounds <= first.partition.num_rounds + 1
