"""DG <-> centralized equivalence: the distributed protocol computes the
*same game* as RMGP_all.

With identical inputs — same coloring, same closest-event initialization,
same normalization constant — a DG round (per color: all unhappy players
of that color best-respond against the current global vector, then the
changes are applied) is exactly one RMGP_all round (sweep the color
groups, members are non-adjacent so batch == sequential).  Hence the two
must produce identical assignments, not merely equally good ones.
"""

import numpy as np
import pytest

from repro.core import RMGPInstance, solve_all
from repro.core.normalization import normalize_with_constant
from repro.datasets import gowalla_like
from repro.distributed import DGQuery, build_cluster, hash_partition
from repro.graph import greedy_coloring


@pytest.mark.parametrize("num_slaves", [1, 2, 3])
def test_dg_matches_centralized_all(num_slaves):
    dataset = gowalla_like(num_users=300, num_events=8, seed=101)
    coloring = greedy_coloring(dataset.graph)
    shards = hash_partition(dataset.graph.nodes(), num_slaves)

    cluster = build_cluster(
        dataset,
        num_slaves=num_slaves,
        shards=shards,
        use_distributed_coloring=False,  # share the exact same coloring
    )
    # build_cluster computes its own greedy coloring over the same graph
    # in the same node order -> identical to `coloring`.
    assert cluster.coloring == coloring

    query = DGQuery(events=dataset.events, alpha=0.5, init="closest")
    dg = cluster.game.run(query)

    base = RMGPInstance(
        dataset.graph, dataset.event_ids, dataset.cost_matrix(), 0.5
    )
    instance = normalize_with_constant(base, dg.cn)
    centralized = solve_all(
        instance, init="closest", order="given", coloring=coloring
    )

    dg_assignment = np.array(
        [dg.assignment[u] for u in dataset.graph.nodes()]
    )
    np.testing.assert_array_equal(dg_assignment, centralized.assignment)
    assert dg.num_rounds == centralized.num_rounds


def test_peer_matches_centralized_too():
    dataset = gowalla_like(num_users=250, num_events=6, seed=103)
    coloring = greedy_coloring(dataset.graph)
    cluster = build_cluster(
        dataset, num_slaves=2, protocol="peer", use_distributed_coloring=False
    )
    query = DGQuery(events=dataset.events, alpha=0.5, init="closest")
    dg = cluster.game.run(query)
    base = RMGPInstance(
        dataset.graph, dataset.event_ids, dataset.cost_matrix(), 0.5
    )
    instance = normalize_with_constant(base, dg.cn)
    centralized = solve_all(
        instance, init="closest", order="given", coloring=coloring
    )
    dg_assignment = np.array(
        [dg.assignment[u] for u in dataset.graph.nodes()]
    )
    np.testing.assert_array_equal(dg_assignment, centralized.assignment)
