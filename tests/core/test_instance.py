"""Unit tests for RMGPInstance index-space construction."""

import numpy as np
import pytest

from repro.core import RMGPInstance
from repro.errors import ConfigurationError
from repro.graph import SocialGraph

from tests.core.conftest import random_instance


def small_graph() -> SocialGraph:
    return SocialGraph.from_edges([("u", "v", 2.0), ("v", "w", 3.0)])


class TestConstruction:
    def test_dimensions(self):
        instance = RMGPInstance(small_graph(), ["a", "b"], np.zeros((3, 2)))
        assert instance.n == 3
        assert instance.k == 2
        assert instance.alpha == 0.5

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ConfigurationError):
            RMGPInstance(small_graph(), ["a"], np.zeros((3, 1)), alpha=alpha)

    def test_rejects_empty_classes(self):
        with pytest.raises(ConfigurationError):
            RMGPInstance(small_graph(), [], np.zeros((3, 0)))

    def test_rejects_duplicate_classes(self):
        with pytest.raises(ConfigurationError):
            RMGPInstance(small_graph(), ["a", "a"], np.zeros((3, 2)))

    def test_rejects_cost_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            RMGPInstance(small_graph(), ["a", "b"], np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            RMGPInstance(small_graph(), ["a", "b"], np.zeros((3, 3)))

    def test_neighbor_arrays_match_graph(self):
        graph = small_graph()
        instance = RMGPInstance(graph, ["a"], np.zeros((3, 1)))
        v_index = instance.index_of["v"]
        neighbors = set(instance.neighbor_indices[v_index].tolist())
        assert neighbors == {instance.index_of["u"], instance.index_of["w"]}
        assert sorted(instance.neighbor_weights[v_index].tolist()) == [2.0, 3.0]

    def test_half_strength(self):
        instance = RMGPInstance(small_graph(), ["a"], np.zeros((3, 1)))
        v = instance.index_of["v"]
        assert instance.half_strength[v] == pytest.approx(2.5)
        assert instance.max_social_cost[v] == pytest.approx(0.5 * 2.5)

    def test_degrees(self):
        instance = RMGPInstance(small_graph(), ["a"], np.zeros((3, 1)))
        degrees = {
            node: instance.degrees()[i]
            for node, i in instance.index_of.items()
        }
        assert degrees == {"u": 1, "v": 2, "w": 1}


class TestClones:
    def test_with_alpha(self):
        base = random_instance(alpha=0.5)
        clone = base.with_alpha(0.8)
        assert clone.alpha == 0.8
        assert clone.n == base.n
        assert base.alpha == 0.5

    def test_with_cost(self):
        base = random_instance()
        from repro.core import ScaledCost

        clone = base.with_cost(ScaledCost(base.cost, 2.0))
        assert clone.cost.cost(0, 0) == pytest.approx(2 * base.cost.cost(0, 0))


class TestAssignmentConversion:
    def test_round_trip(self):
        instance = RMGPInstance(small_graph(), ["a", "b"], np.zeros((3, 2)))
        assignment = np.array([0, 1, 0])
        labels = instance.assignment_to_labels(assignment)
        assert labels == {"u": "a", "v": "b", "w": "a"}
        back = instance.labels_to_assignment(labels)
        np.testing.assert_array_equal(back, assignment)

    def test_labels_with_unknown_user(self):
        instance = RMGPInstance(small_graph(), ["a"], np.zeros((3, 1)))
        with pytest.raises(ConfigurationError):
            instance.labels_to_assignment({"zz": "a"})

    def test_labels_with_unknown_class(self):
        instance = RMGPInstance(small_graph(), ["a"], np.zeros((3, 1)))
        with pytest.raises(ConfigurationError):
            instance.labels_to_assignment({"u": "zz", "v": "a", "w": "a"})

    def test_labels_incomplete(self):
        instance = RMGPInstance(small_graph(), ["a"], np.zeros((3, 1)))
        with pytest.raises(ConfigurationError):
            instance.labels_to_assignment({"u": "a"})

    def test_validate_rejects_bad_shape(self):
        instance = RMGPInstance(small_graph(), ["a"], np.zeros((3, 1)))
        with pytest.raises(ConfigurationError):
            instance.validate_assignment(np.zeros(2, dtype=np.int64))

    def test_validate_rejects_out_of_range(self):
        instance = RMGPInstance(small_graph(), ["a", "b"], np.zeros((3, 2)))
        with pytest.raises(ConfigurationError):
            instance.validate_assignment(np.array([0, 1, 2]))
        with pytest.raises(ConfigurationError):
            instance.validate_assignment(np.array([0, -1, 1]))
