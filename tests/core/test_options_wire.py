"""`SolveOptions` wire round-trips: lossless, strict, solver-complete."""

import json

import numpy as np
import pytest

from repro.api import SolveOptions, partition
from repro.core.registry import (
    SOLVERS,
    accepted_parameters,
    canonical_solver_name,
)
from repro.datasets import paper_example_instance
from repro.errors import ConfigurationError
from repro.obs import Recorder
from repro.runtime import CancelToken

#: A representative wire value for every SolveOptions field a solver
#: can accept.  Values only need to type-check — semantic validation
#: happens inside partition()/the solver, not in from_dict.
_SAMPLE_VALUES = {
    "alpha": 0.25,
    "init": "random",
    "order": "sequential",
    "seed": 11,
    "max_rounds": 40,
    "warm_start": [0, 1, 2],
    "deadline_seconds": 9.5,
    "round_budget_seconds": 1.5,
    "checkpoint_every": 5,
    "checkpoint_path": "out/ckpt.npz",
    "resume_from": "out/ckpt.npz",
    "backend": "pure",
    "workers": 1,
    "exact_scale": 2,
}


class TestRoundTrip:
    def test_empty_options_round_trip(self):
        options = SolveOptions()
        assert options.to_dict() == {}
        assert SolveOptions.from_dict({}) == options

    def test_full_wire_round_trip_is_lossless(self):
        payload = dict(_SAMPLE_VALUES)
        options = SolveOptions.from_dict(payload)
        wire = options.to_dict()
        # JSON-ready: survives an actual encode/decode cycle.
        rebuilt = SolveOptions.from_dict(json.loads(json.dumps(wire)))
        assert rebuilt.to_dict() == wire
        for name, value in _SAMPLE_VALUES.items():
            if name == "warm_start":
                assert wire[name] == value
            else:
                assert wire[name] == pytest.approx(value)

    def test_warm_start_becomes_int64_array(self):
        options = SolveOptions.from_dict({"warm_start": [2, 0, 1]})
        assert isinstance(options.warm_start, np.ndarray)
        assert options.warm_start.dtype == np.int64
        assert options.to_dict()["warm_start"] == [2, 0, 1]

    def test_int_alpha_normalizes_to_float(self):
        options = SolveOptions.from_dict({"alpha": 1})
        assert options.to_dict()["alpha"] == 1.0
        assert isinstance(options.to_dict()["alpha"], float)

    @pytest.mark.parametrize(
        "solver", sorted({canonical_solver_name(name) for name in SOLVERS})
    )
    def test_every_solver_knob_set_round_trips(self, solver):
        """For each registry solver: the options fields it accepts all
        survive ``to_dict``/``from_dict`` unchanged."""
        accepted = accepted_parameters(SOLVERS[solver])
        payload = {
            name: value
            for name, value in _SAMPLE_VALUES.items()
            if name in accepted or name in SolveOptions._BUDGET_FIELDS
        }
        assert payload, f"solver {solver} accepts no wire options?"
        options = SolveOptions.from_dict(payload)
        assert SolveOptions.from_dict(options.to_dict()).to_dict() == (
            options.to_dict()
        )


class TestRejections:
    def test_unknown_field_path(self):
        with pytest.raises(
            ConfigurationError, match=r"options\.seedz: unknown field"
        ):
            SolveOptions.from_dict({"seedz": 1})

    def test_custom_prefix_in_errors(self):
        with pytest.raises(
            ConfigurationError, match=r"request\.options\.seedz"
        ):
            SolveOptions.from_dict({"seedz": 1}, field_prefix="request.options")

    @pytest.mark.parametrize(
        "field, bad",
        [
            ("alpha", "half"),
            ("seed", 1.5),
            ("seed", True),
            ("max_rounds", "ten"),
            ("warm_start", "012"),
            ("deadline_seconds", "soon"),
            ("backend", 3),
            ("workers", 2.0),
            ("exact_scale", False),
        ],
    )
    def test_ill_typed_values(self, field, bad):
        with pytest.raises(
            ConfigurationError, match=rf"options\.{field}"
        ):
            SolveOptions.from_dict({field: bad})

    def test_non_dict_payload(self):
        with pytest.raises(ConfigurationError, match="expected an object"):
            SolveOptions.from_dict("seed=1")

    @pytest.mark.parametrize(
        "field, value",
        [
            ("recorder", Recorder()),
            ("cancel_token", CancelToken()),
        ],
    )
    def test_runtime_objects_cannot_serialize(self, field, value):
        options = SolveOptions(**{field: value})
        with pytest.raises(
            ConfigurationError, match=rf"options\.{field}.*live in-process"
        ):
            options.to_dict()

    def test_invalid_backend_fails_at_construction(self):
        with pytest.raises(ConfigurationError):
            SolveOptions.from_dict({"backend": "gpu"})


class TestPartitionAcceptsDictOptions:
    def test_dict_and_object_options_agree(self):
        instance = paper_example_instance()
        payload = {"seed": 4, "max_rounds": 30}
        via_dict = partition(instance, solver="gt", options=payload)
        via_object = partition(
            instance, solver="gt", options=SolveOptions.from_dict(payload)
        )
        assert (
            via_dict.to_dict()["assignment_sha256"]
            == via_object.to_dict()["assignment_sha256"]
        )

    def test_bad_dict_options_fail_before_solving(self):
        instance = paper_example_instance()
        with pytest.raises(ConfigurationError, match=r"options\.sed"):
            partition(instance, solver="gt", options={"sed": 1})
