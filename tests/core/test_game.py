"""Unit tests for the RMGPGame facade and the result container."""

import numpy as np
import pytest

from repro.core import RMGPGame, RoundStats, make_result
from repro.errors import ConfigurationError
from repro.graph import erdos_renyi

from tests.core.conftest import random_instance


@pytest.fixture
def game():
    import random

    graph = erdos_renyi(15, 0.25, random.Random(0))
    cost = np.random.default_rng(0).uniform(0, 1, (15, 3))
    return RMGPGame(graph, ["x", "y", "z"], cost, alpha=0.5)


class TestFacade:
    @pytest.mark.parametrize("method", ["baseline", "se", "is", "gt", "all"])
    def test_all_methods_solve(self, game, method):
        result = game.solve(method=method, seed=0)
        assert result.converged
        assert game.verify(result).is_equilibrium

    def test_short_and_long_names_agree(self, game):
        short = game.solve(method="gt", init="closest", order="given")
        long = game.solve(method="global_table", init="closest", order="given")
        np.testing.assert_array_equal(short.assignment, long.assignment)

    def test_unknown_method(self, game):
        with pytest.raises(ConfigurationError):
            game.solve(method="bogus")

    def test_unknown_normalization(self, game):
        with pytest.raises(ConfigurationError):
            game.solve(normalize_method="bogus")

    @pytest.mark.parametrize("norm", ["optimistic", "pessimistic"])
    def test_normalized_solve_and_verify(self, game, norm):
        result = game.solve(method="all", normalize_method=norm, seed=1)
        assert "normalization" in result.extra
        assert game.normalization is not None
        assert game.normalization.cn > 0
        # verify() re-applies the stored C_N before checking.
        assert game.verify(result).is_equilibrium

    def test_alpha_property(self, game):
        assert game.alpha == 0.5

    def test_solver_kwargs_forwarded(self, game):
        result = game.solve(method="is", threads=2, seed=0)
        assert result.extra["threads"] == 2


class TestResultContainer:
    def test_make_result_computes_value(self):
        instance = random_instance(seed=1)
        assignment = np.zeros(instance.n, dtype=np.int64)
        result = make_result(
            solver="test",
            instance=instance,
            assignment=assignment,
            rounds=[RoundStats(0, 0, 0.01), RoundStats(1, 3, 0.02)],
            converged=True,
            wall_seconds=0.03,
        )
        assert result.num_rounds == 1
        assert result.total_deviations == 3
        assert result.round_seconds() == [0.01, 0.02]
        assert result.value.alpha == instance.alpha
        assert set(result.labels) == set(instance.node_ids)

    def test_make_result_copies_assignment(self):
        instance = random_instance(seed=2)
        assignment = np.zeros(instance.n, dtype=np.int64)
        result = make_result(
            solver="test",
            instance=instance,
            assignment=assignment,
            rounds=[],
            converged=True,
            wall_seconds=0.0,
        )
        assignment[0] = 1
        assert result.assignment[0] == 0

    def test_make_result_validates(self):
        instance = random_instance(seed=3)
        with pytest.raises(ConfigurationError):
            make_result(
                solver="test",
                instance=instance,
                assignment=np.full(instance.n, instance.k),
                rounds=[],
                converged=True,
                wall_seconds=0.0,
            )

    def test_round_stats_str(self):
        stats = RoundStats(round_index=2, deviations=5, seconds=0.001,
                           potential=1.25)
        text = str(stats)
        assert "round 2" in text
        assert "5 deviations" in text
        assert "phi=" in text
