"""Additional property-based tests: normalization, capacities, warm starts."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    RMGPInstance,
    estimate_cn,
    is_capacitated_equilibrium,
    normalize,
    solve_baseline,
    solve_capacitated,
    solve_vectorized,
)
from repro.core.capacitated import capacity_violations
from repro.graph import SocialGraph


@st.composite
def small_instances(draw):
    n = draw(st.integers(3, 9))
    k = draw(st.integers(2, 4))
    alpha = draw(st.floats(0.1, 0.9))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
    )
    graph = SocialGraph(range(n))
    for u, v in chosen:
        graph.add_edge(u, v, draw(st.floats(0.1, 3.0)))
    cost = np.array(
        draw(
            st.lists(st.floats(0.01, 5.0), min_size=n * k, max_size=n * k)
        )
    ).reshape(n, k)
    return RMGPInstance(graph, list(range(k)), cost, alpha=alpha)


@settings(max_examples=40, deadline=None)
@given(small_instances(), st.floats(0.01, 100.0))
def test_normalization_undoes_uniform_cost_scaling(instance, scale):
    """normalize(scale * C) equals scale-invariant effective costs.

    The pessimistic C_N is inversely proportional to the cost scale, so
    the normalized effective matrices C_N·C agree and deterministic
    dynamics land on identical assignments.
    """
    scaled = RMGPInstance(
        instance.graph,
        instance.classes,
        instance.cost.dense() * scale,
        alpha=instance.alpha,
    )
    base_norm, base_est = normalize(instance, "pessimistic")
    scaled_norm, scaled_est = normalize(scaled, "pessimistic")
    # Degenerate instances (no edges / zero median cost) fall back to the
    # identity scaling, where the inverse relation does not apply.
    assume(instance.graph.num_edges > 0 and base_est.avg_median_cost > 0)
    assert scaled_est.cn * scale == pytest.approx(base_est.cn, rel=1e-9)
    a = solve_baseline(base_norm, init="closest", order="given")
    b = solve_baseline(scaled_norm, init="closest", order="given")
    # The effective games are identical up to float rounding.  Rounding
    # can flip exact argmin ties, sending the deterministic dynamics to
    # different (equally valid) equilibria — so assert the transferable
    # property: each result is a Nash equilibrium of the *other's*
    # normalized instance.
    from repro.core import is_nash_equilibrium

    assert is_nash_equilibrium(base_norm, b.assignment, tolerance=1e-6)
    assert is_nash_equilibrium(scaled_norm, a.assignment, tolerance=1e-6)


@settings(max_examples=40, deadline=None)
@given(small_instances())
def test_optimistic_vs_pessimistic_ratio(instance):
    """Both estimates are positive; their ratio follows the formulas."""
    optimistic = estimate_cn(instance, "optimistic")
    pessimistic = estimate_cn(instance, "pessimistic")
    assert optimistic.cn > 0
    assert pessimistic.cn > 0
    if (
        instance.graph.num_edges > 0
        and optimistic.avg_min_cost > 0
        and pessimistic.avg_median_cost > 0
    ):
        k = instance.k
        expected_ratio = (
            (1.0 / (optimistic.avg_min_cost * k**0.5))
            / ((k - 1) / (pessimistic.avg_median_cost * k))
        )
        assert optimistic.cn / pessimistic.cn == pytest.approx(
            expected_ratio, rel=1e-9
        )


@settings(max_examples=30, deadline=None)
@given(small_instances(), st.integers(0, 3))
def test_capacitated_always_feasible_and_stable(instance, seed):
    """Capacities hold throughout and the result is a constrained
    equilibrium, for the tightest uniform capacity that fits."""
    per_class = -(-instance.n // instance.k)  # ceil division
    caps = [per_class] * instance.k
    result = solve_capacitated(instance, caps, seed=seed)
    assert not capacity_violations(result.assignment, caps)
    assert is_capacitated_equilibrium(instance, result.assignment, caps)


@settings(max_examples=30, deadline=None)
@given(small_instances(), st.integers(0, 3))
def test_warm_start_idempotence_across_solvers(instance, seed):
    """Any solver warm-started at another's equilibrium stays there."""
    first = solve_baseline(instance, seed=seed)
    second = solve_vectorized(instance, warm_start=first.assignment)
    assert second.total_deviations == 0
    np.testing.assert_array_equal(first.assignment, second.assignment)
