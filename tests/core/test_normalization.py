"""Unit tests for RMGP_N normalization (Section 3.3)."""

from math import sqrt

import numpy as np
import pytest

from repro.core import (
    RMGPInstance,
    average_median_cost,
    average_min_cost,
    estimate_cn,
    exact_cn,
    normalize,
    normalize_with_constant,
    objective,
    solve_baseline,
)
from repro.errors import ConfigurationError
from repro.graph import SocialGraph

from tests.core.conftest import random_instance


def scaled_instance(scale: float, seed: int = 0) -> RMGPInstance:
    """Random instance whose assignment costs are multiplied by scale."""
    base = random_instance(seed=seed)
    matrix = base.cost.dense() * scale
    return RMGPInstance(base.graph, base.classes, matrix, alpha=base.alpha)


class TestDistanceStatistics:
    def test_average_min_cost(self):
        graph = SocialGraph.from_edges([(0, 1, 1.0)])
        cost = np.array([[1.0, 3.0], [5.0, 2.0]])
        instance = RMGPInstance(graph, ["a", "b"], cost)
        assert average_min_cost(instance) == pytest.approx((1.0 + 2.0) / 2)

    def test_average_median_cost(self):
        graph = SocialGraph.from_edges([(0, 1, 1.0)])
        cost = np.array([[1.0, 3.0, 5.0], [2.0, 4.0, 6.0]])
        instance = RMGPInstance(graph, ["a", "b", "c"], cost)
        assert average_median_cost(instance) == pytest.approx((3.0 + 4.0) / 2)


class TestEstimates:
    def test_optimistic_formula(self, instance):
        est = estimate_cn(instance, "optimistic")
        expected = (est.deg_avg * est.w_avg) / (
            2.0 * est.avg_min_cost * sqrt(instance.k)
        )
        assert est.cn == pytest.approx(expected)

    def test_pessimistic_formula(self, instance):
        est = estimate_cn(instance, "pessimistic")
        expected = (est.deg_avg * (instance.k - 1) * est.w_avg) / (
            2.0 * est.avg_median_cost * instance.k
        )
        assert est.cn == pytest.approx(expected)

    def test_unknown_method_rejected(self, instance):
        with pytest.raises(ConfigurationError):
            estimate_cn(instance, "bogus")

    def test_degenerate_no_edges(self):
        instance = random_instance(edge_probability=0.0, seed=1)
        est = estimate_cn(instance, "pessimistic")
        assert est.cn == 1.0  # falls back to the identity scaling

    def test_cn_scales_inversely_with_costs(self):
        """Doubling all distances halves C_N (the space contracts back)."""
        small = estimate_cn(scaled_instance(1.0), "pessimistic").cn
        big = estimate_cn(scaled_instance(2.0), "pessimistic").cn
        assert big == pytest.approx(small / 2.0)


class TestNormalize:
    def test_returns_scaled_instance(self, instance):
        normalized, est = normalize(instance, "pessimistic")
        assert normalized.cost.cost(0, 0) == pytest.approx(
            est.cn * instance.cost.cost(0, 0)
        )
        assert normalized.alpha == instance.alpha
        assert normalized.graph is instance.graph

    def test_normalization_balances_components(self):
        """After pessimistic normalization the two cost scales are close.

        We check the *potential* scale: normalized total assignment cost
        and social cost of the solved game are within a modest factor,
        whereas raw they differ by the cost scale (x100 here).
        """
        raw = scaled_instance(100.0, seed=3)
        result_raw = solve_baseline(raw, init="closest", order="given")
        value_raw = objective(raw, result_raw.assignment)
        ratio_raw = value_raw.assignment_cost / max(value_raw.social_cost, 1e-9)

        normalized, _ = normalize(raw, "pessimistic")
        result_norm = solve_baseline(normalized, init="closest", order="given")
        value_norm = objective(normalized, result_norm.assignment)
        ratio_norm = value_norm.assignment_cost / max(value_norm.social_cost, 1e-9)

        assert ratio_raw > 10 * ratio_norm

    def test_scaling_invariance_of_solution(self):
        """Normalizing fully compensates a uniform rescale of the costs.

        An instance with costs c and one with costs 100c normalize to the
        same effective game, so deterministic dynamics coincide.
        """
        a, _ = normalize(scaled_instance(1.0, seed=4), "pessimistic")
        b, _ = normalize(scaled_instance(100.0, seed=4), "pessimistic")
        result_a = solve_baseline(a, init="closest", order="given")
        result_b = solve_baseline(b, init="closest", order="given")
        np.testing.assert_array_equal(result_a.assignment, result_b.assignment)

    def test_normalize_with_constant(self, instance):
        scaled = normalize_with_constant(instance, 3.0)
        assert scaled.cost.cost(1, 1) == pytest.approx(3 * instance.cost.cost(1, 1))

    @pytest.mark.parametrize("cn", [0.0, -2.0])
    def test_normalize_with_bad_constant(self, instance, cn):
        with pytest.raises(ConfigurationError):
            normalize_with_constant(instance, cn)


class TestExactCN:
    def test_definition(self, instance):
        result = solve_baseline(instance, seed=0)
        value = objective(instance, result.assignment)
        ac = value.assignment_cost / instance.n
        sc = 2.0 * value.social_cost / instance.n
        assert exact_cn(instance, result.assignment) == pytest.approx(
            sc / (2.0 * ac)
        )

    def test_zero_assignment_cost(self):
        graph = SocialGraph.from_edges([(0, 1, 1.0)])
        instance = RMGPInstance(graph, ["a"], np.zeros((2, 1)))
        assert exact_cn(instance, np.zeros(2, dtype=np.int64)) == 1.0
