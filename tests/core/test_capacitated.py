"""Unit tests for capacity-constrained RMGP."""

import numpy as np
import pytest

from repro.core import (
    capacity_violations,
    is_capacitated_equilibrium,
    solve_capacitated,
)
from repro.core.capacitated import (
    feasible_initial_assignment,
    validate_capacities,
)
from repro.errors import ConfigurationError

from tests.core.conftest import random_instance


class TestValidation:
    def test_accepts_feasible(self, instance):
        caps = validate_capacities(instance, [instance.n] * instance.k)
        assert caps.sum() >= instance.n

    def test_rejects_wrong_length(self, instance):
        with pytest.raises(ConfigurationError):
            validate_capacities(instance, [instance.n])

    def test_rejects_negative(self, instance):
        caps = [instance.n] * instance.k
        caps[0] = -1
        with pytest.raises(ConfigurationError):
            validate_capacities(instance, caps)

    def test_rejects_insufficient_total(self, instance):
        per_class = (instance.n - 1) // instance.k
        with pytest.raises(ConfigurationError):
            validate_capacities(instance, [per_class] * instance.k)


class TestFeasibleInit:
    @pytest.mark.parametrize("init", ["closest", "random"])
    def test_respects_capacities(self, instance, init):
        import random

        caps = validate_capacities(
            instance, [(instance.n + instance.k - 1) // instance.k] * instance.k
        )
        assignment = feasible_initial_assignment(
            instance, caps, random.Random(0), init
        )
        assert not capacity_violations(assignment, caps)
        assert (assignment >= 0).all()


class TestSolver:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reaches_capacitated_equilibrium(self, seed):
        instance = random_instance(seed=seed)
        caps = [(instance.n + instance.k - 1) // instance.k + 1] * instance.k
        result = solve_capacitated(instance, caps, seed=seed)
        assert result.converged
        assert not capacity_violations(result.assignment, caps)
        assert is_capacitated_equilibrium(instance, result.assignment, caps)

    def test_unbounded_capacities_reduce_to_nash(self, instance):
        """With capacities >= n the constrained game is the plain game."""
        from repro.core import is_nash_equilibrium

        caps = [instance.n] * instance.k
        result = solve_capacitated(instance, caps, seed=0)
        assert is_nash_equilibrium(instance, result.assignment)

    def test_tight_capacities_spread_players(self, instance):
        """Exact capacities force a perfectly spread assignment."""
        per_class = instance.n // instance.k
        caps = [per_class] * instance.k
        # Make the total exactly n (pad the last class if needed).
        caps[-1] += instance.n - per_class * instance.k
        result = solve_capacitated(instance, caps, seed=0)
        loads = np.bincount(result.assignment, minlength=instance.k)
        np.testing.assert_array_equal(loads, caps)

    def test_loads_reported(self, instance):
        caps = [instance.n] * instance.k
        result = solve_capacitated(instance, caps, seed=0)
        assert sum(result.extra["loads"]) == instance.n
        assert result.extra["capacities"] == caps


class TestMinimumParticipation:
    def test_no_cancellations_when_threshold_low(self, instance):
        from repro.core.capacitated import solve_with_minimums

        result = solve_with_minimums(instance, min_participants=0, seed=0)
        assert result.converged
        assert result.extra["canceled"] == []
        assert result.solver == "RMGP_minpart"

    def test_small_events_get_canceled(self, instance):
        from repro.core.capacitated import solve_with_minimums

        threshold = max(2, instance.n // instance.k)
        result = solve_with_minimums(
            instance, min_participants=threshold, seed=0
        )
        loads = np.bincount(result.assignment, minlength=instance.k)
        for klass in range(instance.k):
            # Survivors meet the minimum; canceled classes are empty.
            assert loads[klass] == 0 or loads[klass] >= threshold
        for klass in result.extra["canceled"]:
            assert loads[klass] == 0

    def test_everyone_in_one_event_extreme(self, instance):
        from repro.core.capacitated import solve_with_minimums

        result = solve_with_minimums(
            instance, min_participants=instance.n, seed=0
        )
        loads = np.bincount(result.assignment, minlength=instance.k)
        assert sorted(loads.tolist(), reverse=True)[0] == instance.n

    def test_rejects_negative_minimum(self, instance):
        from repro.core.capacitated import solve_with_minimums

        with pytest.raises(ConfigurationError):
            solve_with_minimums(instance, min_participants=-1)

    def test_capacity_conflict_detected(self, instance):
        from repro.core.capacitated import solve_with_minimums

        # Tight per-class capacity + impossible minimum: cancellations
        # would leave too few seats, which must raise, not loop.
        per_class = -(-instance.n // instance.k)
        with pytest.raises(ConfigurationError):
            solve_with_minimums(
                instance,
                min_participants=per_class + 1,
                capacities=[per_class] * instance.k,
                seed=0,
            )


class TestViolations:
    def test_reports_overload(self):
        assignment = np.array([0, 0, 0, 1])
        assert capacity_violations(assignment, [2, 2]) == {0: 1}

    def test_no_violations(self):
        assignment = np.array([0, 1, 0, 1])
        assert capacity_violations(assignment, [2, 2]) == {}

    def test_equilibrium_check_rejects_overload(self, instance):
        caps = [instance.n] * instance.k
        result = solve_capacitated(instance, caps, seed=0)
        tight = [0] * instance.k
        tight[0] = instance.n
        # The solved assignment almost surely violates "everyone in class
        # 0"; the check must reject infeasible assignments outright.
        if capacity_violations(result.assignment, tight):
            assert not is_capacitated_equilibrium(
                instance, result.assignment, tight
            )
