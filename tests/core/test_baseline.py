"""Unit tests for RMGP_b (Figure 3)."""

import numpy as np
import pytest

from repro.core import (
    is_nash_equilibrium,
    objective,
    potential,
    solve_baseline,
)
from repro.errors import ConfigurationError, ConvergenceError

from tests.core.conftest import random_instance


class TestConvergence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_reaches_nash_equilibrium(self, seed):
        instance = random_instance(seed=seed)
        result = solve_baseline(instance, seed=seed)
        assert result.converged
        assert is_nash_equilibrium(instance, result.assignment)

    @pytest.mark.parametrize("init,order", [
        ("random", "random"),
        ("closest", "random"),
        ("closest", "degree"),
        ("random", "given"),
    ])
    def test_all_variants_converge(self, init, order, instance):
        result = solve_baseline(instance, init=init, order=order, seed=0)
        assert result.converged
        assert is_nash_equilibrium(instance, result.assignment)

    def test_last_round_has_no_deviations(self, instance):
        result = solve_baseline(instance, seed=0)
        assert result.rounds[-1].deviations == 0

    def test_value_matches_objective(self, instance):
        result = solve_baseline(instance, seed=0)
        recomputed = objective(instance, result.assignment)
        assert result.value.total == pytest.approx(recomputed.total)

    def test_round_budget_error(self, instance):
        with pytest.raises(ConvergenceError):
            solve_baseline(instance, init="random", seed=4, max_rounds=0)


class TestDeterminism:
    def test_same_seed_same_result(self, instance):
        a = solve_baseline(instance, seed=42)
        b = solve_baseline(instance, seed=42)
        np.testing.assert_array_equal(a.assignment, b.assignment)
        assert a.num_rounds == b.num_rounds

    def test_closest_init_deterministic_without_seed(self, instance):
        a = solve_baseline(instance, init="closest", order="given")
        b = solve_baseline(instance, init="closest", order="given")
        np.testing.assert_array_equal(a.assignment, b.assignment)


class TestHeuristics:
    def test_warm_start_from_equilibrium_is_noop(self, instance):
        first = solve_baseline(instance, seed=0)
        second = solve_baseline(instance, warm_start=first.assignment, seed=0)
        np.testing.assert_array_equal(first.assignment, second.assignment)
        assert second.num_rounds == 1  # one confirming round, no deviations
        assert second.total_deviations == 0

    def test_closest_init_starts_at_min_assignment_cost(self, instance):
        result = solve_baseline(
            instance, init="closest", order="given", max_rounds=10_000
        )
        # Every player's final class costs at most VR_v; weaker sanity:
        # the solution is an equilibrium.
        assert is_nash_equilibrium(instance, result.assignment)

    def test_variant_names(self, instance):
        assert solve_baseline(instance, seed=0).solver == "RMGP_b"
        assert (
            solve_baseline(instance, init="closest", seed=0).solver == "RMGP_b+i"
        )
        assert (
            solve_baseline(instance, init="closest", order="degree", seed=0).solver
            == "RMGP_b+i+o"
        )

    def test_unknown_init_rejected(self, instance):
        with pytest.raises(ConfigurationError):
            solve_baseline(instance, init="bogus")

    def test_unknown_order_rejected(self, instance):
        with pytest.raises(ConfigurationError):
            solve_baseline(instance, order="bogus")


class TestPotentialTracking:
    def test_potential_non_increasing_across_rounds(self, instance):
        result = solve_baseline(instance, seed=1, track_potential=True)
        potentials = [r.potential for r in result.rounds]
        assert all(p is not None for p in potentials)
        for before, after in zip(potentials, potentials[1:]):
            assert after <= before + 1e-9

    def test_final_potential_matches(self, instance):
        result = solve_baseline(instance, seed=1, track_potential=True)
        assert result.rounds[-1].potential == pytest.approx(
            potential(instance, result.assignment)
        )


class TestResultShape:
    def test_labels_cover_all_users(self, instance):
        result = solve_baseline(instance, seed=0)
        assert set(result.labels) == set(instance.node_ids)

    def test_round_zero_present(self, instance):
        result = solve_baseline(instance, seed=0)
        assert result.rounds[0].round_index == 0
        assert result.rounds[0].deviations == 0

    def test_summary_mentions_solver(self, instance):
        result = solve_baseline(instance, seed=0)
        assert "RMGP_b" in result.summary()
        assert "converged" in result.summary()
