"""Unit tests for the shared dynamics helpers."""

import random

import numpy as np
import pytest

from repro.core import initial_assignment, player_order
from repro.core.dynamics import RoundClock, check_round_budget
from repro.errors import ConfigurationError, ConvergenceError

from tests.core.conftest import random_instance


class TestInitialAssignment:
    def test_random_within_range(self, instance):
        assignment = initial_assignment(instance, "random", random.Random(0))
        assert assignment.shape == (instance.n,)
        assert assignment.min() >= 0
        assert assignment.max() < instance.k

    def test_random_deterministic_with_seed(self, instance):
        a = initial_assignment(instance, "random", random.Random(3))
        b = initial_assignment(instance, "random", random.Random(3))
        np.testing.assert_array_equal(a, b)

    def test_closest_minimizes_each_row(self, instance):
        assignment = initial_assignment(instance, "closest")
        for player in range(instance.n):
            row = instance.cost.row(player)
            assert row[assignment[player]] == pytest.approx(row.min())

    def test_warm_start_overrides_method(self, instance):
        warm = np.zeros(instance.n, dtype=np.int64)
        assignment = initial_assignment(instance, "random", warm_start=warm)
        np.testing.assert_array_equal(assignment, warm)

    def test_warm_start_is_copied(self, instance):
        warm = np.zeros(instance.n, dtype=np.int64)
        assignment = initial_assignment(instance, "random", warm_start=warm)
        assignment[0] = 1
        assert warm[0] == 0

    def test_warm_start_validated(self, instance):
        with pytest.raises(ConfigurationError):
            initial_assignment(
                instance,
                "random",
                warm_start=np.full(instance.n, instance.k, dtype=np.int64),
            )

    def test_unknown_method(self, instance):
        with pytest.raises(ConfigurationError):
            initial_assignment(instance, "bogus")


class TestPlayerOrder:
    def test_given_is_identity(self, instance):
        assert player_order(instance, "given") == list(range(instance.n))

    def test_random_is_permutation(self, instance):
        order = player_order(instance, "random", random.Random(1))
        assert sorted(order) == list(range(instance.n))

    def test_degree_descending(self, instance):
        order = player_order(instance, "degree")
        degrees = instance.degrees()
        for a, b in zip(order, order[1:]):
            assert degrees[a] >= degrees[b]

    def test_degree_ties_by_index(self):
        instance = random_instance(edge_probability=0.0, seed=0)
        assert player_order(instance, "degree") == list(range(instance.n))

    def test_unknown_method(self, instance):
        with pytest.raises(ConfigurationError):
            player_order(instance, "bogus")


class TestClockAndBudget:
    def test_clock_laps_accumulate(self):
        clock = RoundClock()
        first = clock.lap()
        second = clock.lap()
        assert first >= 0.0
        assert second >= 0.0
        assert clock.total() >= first + second

    def test_budget_ok(self):
        check_round_budget(5, 10, "test")  # no raise

    def test_budget_exceeded(self):
        with pytest.raises(ConvergenceError):
            check_round_budget(11, 10, "test")
