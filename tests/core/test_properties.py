"""Property-based tests (hypothesis) for the game-theoretic core.

These pin down the paper's theory on arbitrary random instances:

* Theorem 1 (exact potential game): a unilateral deviation changes the
  potential by exactly the change in the deviating player's own cost.
* Best responses never increase the potential; strict deviations
  strictly decrease it — hence termination (Lemma 2).
* Every solver variant terminates at a pure Nash equilibrium with
  identical validity guarantees.
* The objective always decomposes into per-player costs (Section 3.1).
* Inequality (5): C/2 <= Phi <= C.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    RMGPInstance,
    best_response,
    is_nash_equilibrium,
    objective,
    player_cost,
    potential,
    solve_all,
    solve_baseline,
    solve_global_table,
    solve_independent_sets,
    solve_strategy_elimination,
    total_player_cost,
)
from repro.graph import SocialGraph


@st.composite
def rmgp_instances(draw, max_players: int = 10, max_classes: int = 4):
    """Random small RMGP instances with weighted graphs."""
    n = draw(st.integers(2, max_players))
    k = draw(st.integers(1, max_classes))
    alpha = draw(st.floats(0.05, 0.95))
    possible_edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(
        st.lists(
            st.sampled_from(possible_edges),
            unique=True,
            max_size=len(possible_edges),
        )
    ) if possible_edges else []
    weights = draw(
        st.lists(
            st.floats(0.1, 5.0), min_size=len(chosen), max_size=len(chosen)
        )
    )
    graph = SocialGraph(range(n))
    for (u, v), w in zip(chosen, weights):
        graph.add_edge(u, v, w)
    cost_values = draw(
        st.lists(st.floats(0.0, 10.0), min_size=n * k, max_size=n * k)
    )
    cost = np.array(cost_values).reshape(n, k)
    return RMGPInstance(graph, list(range(k)), cost, alpha=alpha)


@st.composite
def instances_with_assignment(draw):
    instance = draw(rmgp_instances())
    assignment = np.array(
        [draw(st.integers(0, instance.k - 1)) for _ in range(instance.n)],
        dtype=np.int64,
    )
    return instance, assignment


@settings(max_examples=60, deadline=None)
@given(instances_with_assignment())
def test_exact_potential_property(data):
    """Theorem 1: Phi's change equals the deviating player's cost change."""
    instance, assignment = data
    phi_before = potential(instance, assignment)
    for player in range(instance.n):
        for klass in range(instance.k):
            moved = assignment.copy()
            moved[player] = klass
            delta_phi = potential(instance, moved) - phi_before
            delta_cost = player_cost(instance, moved, player) - player_cost(
                instance, assignment, player
            )
            assert delta_phi == pytest.approx(delta_cost, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(instances_with_assignment())
def test_objective_decomposes_into_player_costs(data):
    """Section 3.1: RMGP(G, P, alpha) == sum_v C_v(s_v, pi_v)."""
    instance, assignment = data
    assert total_player_cost(instance, assignment) == pytest.approx(
        objective(instance, assignment).total, abs=1e-9
    )


@settings(max_examples=60, deadline=None)
@given(instances_with_assignment())
def test_potential_sandwich_inequality(data):
    """Inequality (5): C/2 <= Phi <= C (for non-negative costs)."""
    instance, assignment = data
    c = objective(instance, assignment).total
    phi = potential(instance, assignment)
    assert 0.5 * c - 1e-9 <= phi <= c + 1e-9


@settings(max_examples=60, deadline=None)
@given(instances_with_assignment())
def test_best_response_never_increases_potential(data):
    instance, assignment = data
    for player in range(instance.n):
        response = best_response(instance, assignment, player)
        moved = assignment.copy()
        moved[player] = response
        assert potential(instance, moved) <= potential(instance, assignment) + 1e-9


SOLVERS = [
    solve_baseline,
    solve_strategy_elimination,
    solve_independent_sets,
    solve_global_table,
    solve_all,
]


@settings(max_examples=25, deadline=None)
@given(rmgp_instances(), st.integers(0, len(SOLVERS) - 1), st.integers(0, 3))
def test_every_solver_reaches_nash_equilibrium(instance, which, seed):
    result = SOLVERS[which](instance, seed=seed)
    assert result.converged
    assert is_nash_equilibrium(instance, result.assignment)


@settings(max_examples=25, deadline=None)
@given(rmgp_instances(), st.integers(0, 3))
def test_potential_monotone_along_dynamics(instance, seed):
    """The tracked potential never increases round over round."""
    result = solve_baseline(instance, seed=seed, track_potential=True)
    values = [r.potential for r in result.rounds]
    for before, after in zip(values, values[1:]):
        assert after <= before + 1e-9


@settings(max_examples=25, deadline=None)
@given(rmgp_instances())
def test_deterministic_variants_agree(instance):
    """With identical init and sweep order, b / se / gt walk one path."""
    kwargs = {"init": "closest", "order": "given"}
    a = solve_baseline(instance, **kwargs)
    b = solve_strategy_elimination(instance, **kwargs)
    c = solve_global_table(instance, **kwargs)
    np.testing.assert_array_equal(a.assignment, b.assignment)
    np.testing.assert_array_equal(a.assignment, c.assignment)
