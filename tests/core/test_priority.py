"""Unit tests for max-gain (best-improvement) dynamics."""

import numpy as np
import pytest

from repro.core import is_nash_equilibrium, solve_baseline
from repro.core.priority import solve_max_gain
from repro.errors import ConvergenceError

from tests.core.conftest import random_instance


class TestConvergence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_reaches_nash_equilibrium(self, seed):
        instance = random_instance(seed=seed)
        result = solve_max_gain(instance, seed=seed)
        assert result.converged
        assert is_nash_equilibrium(instance, result.assignment)

    def test_random_init_converges(self, instance):
        result = solve_max_gain(instance, init="random", seed=7)
        assert is_nash_equilibrium(instance, result.assignment)

    def test_warm_start_noop(self, instance):
        first = solve_baseline(instance, seed=0)
        second = solve_max_gain(instance, warm_start=first.assignment)
        assert second.extra["total_moves"] == 0
        np.testing.assert_array_equal(first.assignment, second.assignment)

    def test_move_budget_enforced(self, instance):
        with pytest.raises(ConvergenceError):
            solve_max_gain(instance, init="random", seed=1, max_moves=0)

    def test_moves_reported(self, instance):
        result = solve_max_gain(instance, init="random", seed=2)
        assert result.extra["total_moves"] == result.total_deviations
        assert result.extra["total_moves"] >= 0

    def test_no_more_moves_than_round_robin_deviations_order(self, instance):
        """Max-gain usually needs no more moves than round-robin.

        Not a theorem — asserted with slack as a regression canary for
        the priority scheduling.
        """
        round_robin = solve_baseline(instance, init="closest", order="given")
        max_gain = solve_max_gain(instance, init="closest")
        assert (
            max_gain.extra["total_moves"]
            <= 2 * max(round_robin.total_deviations, 1)
        )

    def test_potential_decreases_overall(self, instance):
        from repro.core import potential
        from repro.core.dynamics import initial_assignment

        start = initial_assignment(instance, "closest")
        result = solve_max_gain(instance, init="closest")
        assert potential(instance, result.assignment) <= potential(
            instance, start
        ) + 1e-9
