"""Unit tests for the cost-provider layer."""

import numpy as np
import pytest

from repro.core import (
    CombinedCost,
    FunctionCost,
    MatrixCost,
    ScaledCost,
    as_cost_provider,
)
from repro.errors import ConfigurationError


class TestMatrixCost:
    def test_row_is_a_copy(self):
        matrix = np.ones((2, 3))
        cost = MatrixCost(matrix)
        row = cost.row(0)
        row[0] = 99.0
        assert cost.cost(0, 0) == 1.0

    def test_cost_entry(self):
        cost = MatrixCost(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert cost.cost(1, 0) == 3.0
        assert cost.num_players == 2
        assert cost.num_classes == 2

    def test_dense_is_a_copy(self):
        cost = MatrixCost(np.ones((2, 2)))
        dense = cost.dense()
        dense[0, 0] = 5.0
        assert cost.cost(0, 0) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MatrixCost(np.array([[-1.0, 0.0]]))

    def test_rejects_non_finite(self):
        with pytest.raises(ConfigurationError):
            MatrixCost(np.array([[np.inf, 0.0]]))

    def test_rejects_wrong_dims(self):
        with pytest.raises(ConfigurationError):
            MatrixCost(np.zeros(3))


class TestFunctionCost:
    def test_computes_rows_on_demand(self):
        cost = FunctionCost(lambda v: [float(v), float(v + 1)], 3, 2)
        assert cost.cost(2, 1) == 3.0
        np.testing.assert_allclose(cost.row(1), [1.0, 2.0])

    def test_materialized(self):
        cost = FunctionCost(lambda v: [float(v)] * 2, 3, 2)
        dense = cost.materialized()
        assert isinstance(dense, MatrixCost)
        np.testing.assert_allclose(dense.dense(), [[0, 0], [1, 1], [2, 2]])

    def test_rejects_wrong_row_shape(self):
        cost = FunctionCost(lambda v: [1.0], 2, 3)
        with pytest.raises(ConfigurationError):
            cost.row(0)

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            FunctionCost(lambda v: [1.0], 2, 0)


class TestScaledCost:
    def test_scales_rows_and_entries(self):
        base = MatrixCost(np.array([[1.0, 2.0]]))
        scaled = ScaledCost(base, 2.5)
        np.testing.assert_allclose(scaled.row(0), [2.5, 5.0])
        assert scaled.cost(0, 1) == 5.0

    @pytest.mark.parametrize("factor", [0.0, -1.0, float("inf")])
    def test_rejects_bad_factor(self, factor):
        base = MatrixCost(np.ones((1, 1)))
        with pytest.raises(ConfigurationError):
            ScaledCost(base, factor)


class TestCombinedCost:
    def test_default_weights_average(self):
        a = MatrixCost(np.array([[2.0, 0.0]]))
        b = MatrixCost(np.array([[0.0, 2.0]]))
        combined = CombinedCost([a, b])
        np.testing.assert_allclose(combined.row(0), [1.0, 1.0])

    def test_explicit_weights(self):
        a = MatrixCost(np.array([[1.0, 1.0]]))
        b = MatrixCost(np.array([[1.0, 0.0]]))
        combined = CombinedCost([a, b], weights=[1.0, 3.0])
        np.testing.assert_allclose(combined.row(0), [4.0, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            CombinedCost([])

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ConfigurationError):
            CombinedCost([MatrixCost(np.ones((1, 2))), MatrixCost(np.ones((2, 2)))])

    def test_rejects_weight_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            CombinedCost([MatrixCost(np.ones((1, 2)))], weights=[1.0, 2.0])

    def test_rejects_negative_weight(self):
        with pytest.raises(ConfigurationError):
            CombinedCost([MatrixCost(np.ones((1, 2)))], weights=[-1.0])


class TestCoercion:
    def test_passthrough_provider(self):
        provider = MatrixCost(np.ones((1, 1)))
        assert as_cost_provider(provider) is provider

    def test_matrix_coerced(self):
        provider = as_cost_provider(np.ones((2, 3)))
        assert provider.num_players == 2
        assert provider.num_classes == 3

    def test_callable_needs_dims(self):
        with pytest.raises(ConfigurationError):
            as_cost_provider(lambda v: [1.0])

    def test_callable_with_dims(self):
        provider = as_cost_provider(lambda v: [1.0, 2.0], 4, 2)
        assert provider.cost(0, 1) == 2.0
