"""Unit tests for the dynamics-analysis helpers."""

import numpy as np
import pytest

from repro.core import potential, solve_baseline
from repro.core.analysis import (
    assignment_diff,
    class_profiles,
    convergence_report,
    potential_trace,
    quality_summary,
)

from tests.core.conftest import random_instance


class TestPotentialTrace:
    def test_strictly_decreasing(self, instance):
        events = potential_trace(instance, seed=0)
        values = [e.potential_after for e in events]
        for before, after in zip(values, values[1:]):
            assert after < before + 1e-12

    def test_improvements_positive(self, instance):
        events = potential_trace(instance, seed=1)
        assert all(e.improvement > 0 for e in events)

    def test_incremental_phi_matches_direct(self, instance):
        """The O(1) potential updates agree with a full re-evaluation."""
        import random

        from repro.core import dynamics

        rng = random.Random(2)
        assignment = dynamics.initial_assignment(instance, "random", rng)
        events = potential_trace(instance, init="random", seed=2)
        # Replay the moves on the same initial assignment.
        for event in events:
            assignment[event.player] = event.to_class
        assert potential(instance, assignment) == pytest.approx(
            events[-1].potential_after, abs=1e-9
        )

    def test_steps_and_rounds_monotone(self, instance):
        events = potential_trace(instance, seed=3)
        steps = [e.step for e in events]
        assert steps == sorted(steps)
        rounds = [e.round_index for e in events]
        assert rounds == sorted(rounds)


class TestConvergenceReport:
    def test_report_fields(self, instance):
        result = solve_baseline(instance, seed=0, track_potential=True)
        report = convergence_report(instance, result)
        assert report.rounds == result.num_rounds
        assert report.total_deviations == result.total_deviations
        assert len(report.deviations_per_round) == result.num_rounds
        assert report.final_potential == pytest.approx(
            potential(instance, result.assignment)
        )
        assert report.potential_drop >= -1e-9

    def test_far_below_lemma2_ceiling(self, instance):
        result = solve_baseline(instance, seed=0, track_potential=True)
        report = convergence_report(instance, result)
        assert report.rounds <= report.lemma2_ceiling
        assert report.ceiling_utilization < 0.01


class TestAssignmentDiff:
    def test_no_change(self, instance):
        assignment = np.zeros(instance.n, dtype=np.int64)
        assert assignment_diff(instance, assignment, assignment) == {}

    def test_reports_moves_with_labels(self, instance):
        before = np.zeros(instance.n, dtype=np.int64)
        after = before.copy()
        after[2] = 1
        diff = assignment_diff(instance, before, after)
        node = instance.node_ids[2]
        assert diff == {node: (instance.classes[0], instance.classes[1])}


class TestClassProfiles:
    def test_members_sum_to_n(self, instance):
        result = solve_baseline(instance, seed=0)
        profiles = class_profiles(instance, result.assignment)
        assert sum(p.members for p in profiles) == instance.n
        assert len(profiles) == instance.k

    def test_internal_external_consistent_with_cut(self, instance):
        from repro.core import social_cost_sum

        result = solve_baseline(instance, seed=0)
        profiles = class_profiles(instance, result.assignment)
        external = sum(p.external_weight for p in profiles)
        # Every crossing edge is external for both endpoints.
        assert external == pytest.approx(
            2.0 * social_cost_sum(instance, result.assignment)
        )
        internal = sum(p.internal_weight for p in profiles)
        assert internal + external / 2.0 == pytest.approx(
            instance.graph.total_edge_weight()
        )

    def test_assignment_costs_sum(self, instance):
        from repro.core import assignment_cost_sum

        result = solve_baseline(instance, seed=0)
        profiles = class_profiles(instance, result.assignment)
        assert sum(p.assignment_cost for p in profiles) == pytest.approx(
            assignment_cost_sum(instance, result.assignment)
        )

    def test_cohesion_range(self, instance):
        result = solve_baseline(instance, seed=0)
        for profile in class_profiles(instance, result.assignment):
            assert 0.0 <= profile.cohesion <= 1.0


class TestQualitySummary:
    def test_keys_and_consistency(self, instance):
        result = solve_baseline(instance, seed=0)
        summary = quality_summary(instance, result.assignment)
        assert summary["total"] == pytest.approx(result.value.total)
        assert summary["classes_used"] <= instance.k
        assert summary["largest_class"] <= instance.n
        assert 0.0 <= summary["mean_cohesion"] <= 1.0
