"""Unit tests for the synchronous-dynamics ablation."""

import numpy as np
import pytest

from repro.core import RMGPInstance, is_nash_equilibrium, solve_simultaneous
from repro.errors import ConfigurationError
from repro.graph import SocialGraph

from tests.core.conftest import random_instance


def oscillator() -> RMGPInstance:
    """Two friends who each prefer the other's current class.

    Both players start at their individually cheapest class; the strong
    edge makes each one's best response "follow the friend", so the
    synchronous update swaps them forever.
    """
    graph = SocialGraph.from_edges([(0, 1, 10.0)])
    cost = np.array([[0.0, 0.1], [0.1, 0.0]])
    return RMGPInstance(graph, ["a", "b"], cost, alpha=0.5)


class TestOscillation:
    def test_undamped_oscillates(self):
        instance = oscillator()
        result = solve_simultaneous(
            instance, init="closest", damping=1.0, max_rounds=50
        )
        assert not result.converged
        assert result.extra["cycle_detected"]

    def test_damping_breaks_cycles(self):
        instance = oscillator()
        result = solve_simultaneous(
            instance, init="closest", damping=0.5, seed=0, max_rounds=500
        )
        assert result.converged
        assert is_nash_equilibrium(instance, result.assignment)


class TestGeneralBehaviour:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_converged_results_are_nash(self, seed):
        instance = random_instance(seed=seed)
        result = solve_simultaneous(instance, seed=seed, damping=0.7,
                                    max_rounds=1000)
        if result.converged:
            assert is_nash_equilibrium(instance, result.assignment)

    def test_potential_tracked_each_round(self):
        instance = random_instance(seed=3)
        result = solve_simultaneous(instance, seed=3, damping=0.8)
        assert all(r.potential is not None for r in result.rounds)

    def test_reports_potential_increases(self):
        # On the oscillator the potential bounces: at least one round
        # must have increased it.
        instance = oscillator()
        result = solve_simultaneous(
            instance, init="closest", damping=1.0, max_rounds=20
        )
        assert result.extra["potential_increases"] >= 1

    def test_rejects_bad_damping(self):
        instance = random_instance(seed=0)
        with pytest.raises(ConfigurationError):
            solve_simultaneous(instance, damping=0.0)
        with pytest.raises(ConfigurationError):
            solve_simultaneous(instance, damping=1.5)

    def test_warm_start_at_equilibrium_stays(self):
        from repro.core import solve_baseline

        instance = random_instance(seed=5)
        equilibrium = solve_baseline(instance, seed=5)
        result = solve_simultaneous(
            instance, warm_start=equilibrium.assignment, seed=5
        )
        assert result.converged
        assert result.total_deviations == 0
