"""Unit tests for the incremental (online) RMGP engine."""

import numpy as np
import pytest

from repro.core import (
    IncrementalRMGP,
    build_global_table,
    is_nash_equilibrium,
    solve_global_table,
)
from repro.errors import ConfigurationError

from tests.core.conftest import random_instance


@pytest.fixture
def engine(instance):
    return IncrementalRMGP(instance, seed=0)


class TestInitialSolve:
    def test_starts_at_equilibrium(self, engine):
        assert is_nash_equilibrium(engine.instance, engine.assignment)

    def test_matches_global_table_solver(self, instance):
        engine = IncrementalRMGP(instance, init="closest")
        direct = solve_global_table(instance, init="closest", order="given")
        np.testing.assert_array_equal(engine.assignment, direct.assignment)


class TestCostUpdates:
    def test_update_then_resolve_is_equilibrium(self, engine):
        node = engine.instance.node_ids[0]
        new_row = np.zeros(engine.instance.k)
        new_row[1] = 0.0  # class 1 becomes free for this player
        new_row[0] = 10.0
        engine.update_player_costs(node, new_row)
        engine.resolve()
        assert is_nash_equilibrium(engine.instance, engine.assignment)
        # Table must equal a from-scratch rebuild.
        rebuilt = build_global_table(engine.instance, engine.assignment)
        np.testing.assert_allclose(engine._table, rebuilt, atol=1e-9)

    def test_dramatic_update_moves_player(self, engine):
        node = engine.instance.node_ids[0]
        player = engine.instance.index_of[node]
        current = int(engine.assignment[player])
        new_row = np.full(engine.instance.k, 1000.0)
        target = (current + 1) % engine.instance.k
        new_row[target] = 0.0
        engine.update_player_costs(node, new_row)
        engine.resolve()
        assert engine.assignment[player] == target

    def test_rejects_bad_rows(self, engine):
        node = engine.instance.node_ids[0]
        with pytest.raises(ConfigurationError):
            engine.update_player_costs(node, [1.0])  # wrong length
        with pytest.raises(ConfigurationError):
            engine.update_player_costs(
                node, [-1.0] * engine.instance.k
            )
        with pytest.raises(ConfigurationError):
            engine.update_player_costs("not-a-user", [0.0] * engine.instance.k)

    def test_noop_update_causes_no_deviations(self, engine):
        node = engine.instance.node_ids[3]
        player = engine.instance.index_of[node]
        engine.update_player_costs(node, engine._matrix[player].copy())
        result = engine.resolve()
        assert result.total_deviations == 0


class TestEdgeUpdates:
    def test_add_edge_consistency(self, engine):
        nodes = engine.instance.node_ids
        # Find a non-adjacent pair.
        graph = engine.instance.graph
        pair = None
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                if not graph.has_edge(u, v):
                    pair = (u, v)
                    break
            if pair:
                break
        assert pair is not None
        engine.add_edge(*pair, weight=2.0)
        engine.resolve()
        assert is_nash_equilibrium(engine.instance, engine.assignment)
        rebuilt = build_global_table(engine.instance, engine.assignment)
        np.testing.assert_allclose(engine._table, rebuilt, atol=1e-9)

    def test_remove_edge_consistency(self, engine):
        u, v, _ = next(iter(engine.instance.graph.edges()))
        engine.remove_edge(u, v)
        engine.resolve()
        assert is_nash_equilibrium(engine.instance, engine.assignment)
        rebuilt = build_global_table(engine.instance, engine.assignment)
        np.testing.assert_allclose(engine._table, rebuilt, atol=1e-9)

    def test_strong_edge_pulls_friends_together(self):
        instance = random_instance(seed=4)
        engine = IncrementalRMGP(instance, seed=0)
        nodes = engine.instance.node_ids
        graph = engine.instance.graph
        pair = None
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                if not graph.has_edge(u, v):
                    pair = (u, v)
                    break
            if pair:
                break
        # An overwhelming friendship forces co-location.
        engine.add_edge(*pair, weight=1000.0)
        engine.resolve()
        iu = engine.instance.index_of[pair[0]]
        iv = engine.instance.index_of[pair[1]]
        assert engine.assignment[iu] == engine.assignment[iv]


class TestRepeatedUpdates:
    def test_many_updates_stay_consistent(self, engine):
        rng = np.random.default_rng(0)
        for step in range(10):
            node = engine.instance.node_ids[
                int(rng.integers(engine.instance.n))
            ]
            engine.update_player_costs(
                node, rng.uniform(0, 1, engine.instance.k)
            )
            engine.resolve()
        assert is_nash_equilibrium(engine.instance, engine.assignment)
        rebuilt = build_global_table(engine.instance, engine.assignment)
        np.testing.assert_allclose(engine._table, rebuilt, atol=1e-9)
        assert engine.resolve_count == 11  # initial + 10

    def test_current_value_matches_objective(self, engine):
        from repro.core import objective

        value = engine.current_value()
        direct = objective(engine.instance, engine.assignment)
        assert value.total == pytest.approx(direct.total)
