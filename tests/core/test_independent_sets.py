"""Unit tests for RMGP_is (Section 4.2)."""

import numpy as np
import pytest

from repro.core import (
    groups_from_coloring,
    is_nash_equilibrium,
    solve_independent_sets,
)
from repro.errors import ConfigurationError
from repro.graph import greedy_coloring

from tests.core.conftest import random_instance


class TestGroups:
    def test_groups_cover_all_players(self, instance):
        groups = groups_from_coloring(instance)
        flattened = sorted(p for group in groups for p in group)
        assert flattened == list(range(instance.n))

    def test_groups_are_independent(self, instance):
        groups = groups_from_coloring(instance)
        for group in groups:
            members = set(group)
            for player in group:
                neighbors = set(instance.neighbor_indices[player].tolist())
                assert not (neighbors & members)

    def test_accepts_explicit_coloring(self, instance):
        coloring = greedy_coloring(instance.graph)
        groups = groups_from_coloring(instance, coloring)
        assert sum(len(g) for g in groups) == instance.n

    def test_rejects_improper_coloring(self, instance):
        bad = {node: 0 for node in instance.graph.nodes()}
        with pytest.raises(ConfigurationError):
            groups_from_coloring(instance, bad)


class TestSolver:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reaches_nash_equilibrium(self, seed):
        instance = random_instance(seed=seed)
        result = solve_independent_sets(instance, seed=seed)
        assert result.converged
        assert is_nash_equilibrium(instance, result.assignment)

    @pytest.mark.parametrize("threads", [2, 4])
    def test_threads_match_sequential(self, threads, instance):
        sequential = solve_independent_sets(instance, seed=5, threads=1)
        threaded = solve_independent_sets(instance, seed=5, threads=threads)
        np.testing.assert_array_equal(sequential.assignment, threaded.assignment)

    def test_rejects_bad_threads(self, instance):
        with pytest.raises(ConfigurationError):
            solve_independent_sets(instance, threads=0)

    def test_model_speedup_reported(self, instance):
        result = solve_independent_sets(instance, seed=0, threads=4)
        extra = result.extra
        assert extra["threads"] == 4
        assert extra["model_players_per_round"] <= instance.n
        assert extra["model_speedup"] >= 1.0
        assert extra["num_groups"] >= 1

    def test_single_thread_model_is_sequential(self, instance):
        result = solve_independent_sets(instance, seed=0, threads=1)
        assert result.extra["model_players_per_round"] == instance.n
        assert result.extra["model_speedup"] == pytest.approx(1.0)

    def test_explicit_coloring_used(self, instance):
        coloring = greedy_coloring(instance.graph)
        result = solve_independent_sets(instance, seed=0, coloring=coloring)
        assert result.converged
        assert result.extra["num_groups"] == len(set(coloring.values()))
