"""Unit tests for the vectorized group-batched solver."""

import numpy as np
import pytest

from repro.core import (
    is_nash_equilibrium,
    solve_independent_sets,
    solve_vectorized,
)
from repro.graph import greedy_coloring

from tests.core.conftest import random_instance


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_reaches_nash_equilibrium(self, seed):
        instance = random_instance(seed=seed)
        result = solve_vectorized(instance, seed=seed)
        assert result.converged
        assert is_nash_equilibrium(instance, result.assignment)

    def test_matches_independent_sets_schedule(self, instance):
        """Same coloring + deterministic init => the same game trajectory.

        Within a group the batch commit equals sequential processing
        (members are non-adjacent), so RMGP_vec must land exactly where
        RMGP_is does when both sweep groups in the same (color) order.
        """
        coloring = greedy_coloring(instance.graph)
        scalar = solve_independent_sets(
            instance, init="closest", order="given", coloring=coloring
        )
        batched = solve_vectorized(
            instance, init="closest", coloring=coloring
        )
        np.testing.assert_array_equal(scalar.assignment, batched.assignment)
        assert scalar.num_rounds == batched.num_rounds

    def test_warm_start_noop(self, instance):
        first = solve_vectorized(instance, seed=0)
        second = solve_vectorized(instance, warm_start=first.assignment)
        assert second.total_deviations == 0
        np.testing.assert_array_equal(first.assignment, second.assignment)

    def test_isolated_players(self):
        instance = random_instance(edge_probability=0.0, seed=1)
        result = solve_vectorized(instance, init="closest")
        for player in range(instance.n):
            assert result.assignment[player] == int(
                instance.cost.row(player).argmin()
            )

    def test_value_matches_objective(self, instance):
        from repro.core import objective

        result = solve_vectorized(instance, seed=2)
        assert result.value.total == pytest.approx(
            objective(instance, result.assignment).total
        )

    def test_facade_exposes_vec(self, instance):
        from repro.core import RMGPGame

        game = RMGPGame(
            instance.graph, instance.classes, instance.cost, instance.alpha
        )
        result = game.solve(method="vec", seed=0)
        assert result.solver == "RMGP_vec"
        assert game.verify(result).is_equilibrium


class TestLargerScale:
    def test_medium_instance(self):
        instance = random_instance(
            num_players=300, num_classes=12, edge_probability=0.04, seed=9
        )
        result = solve_vectorized(instance, seed=0)
        assert is_nash_equilibrium(instance, result.assignment)
