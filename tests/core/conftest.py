"""Shared fixtures and instance factories for core tests."""

from __future__ import annotations

import random
from typing import Optional

import numpy as np
import pytest

from repro.core import RMGPInstance
from repro.graph import SocialGraph, erdos_renyi


def random_instance(
    num_players: int = 20,
    num_classes: int = 4,
    alpha: float = 0.5,
    edge_probability: float = 0.2,
    seed: int = 0,
) -> RMGPInstance:
    """A reproducible random RMGP instance for tests."""
    graph = erdos_renyi(num_players, edge_probability, random.Random(seed))
    cost = np.random.default_rng(seed).uniform(0.0, 1.0, (num_players, num_classes))
    return RMGPInstance(graph, list(range(num_classes)), cost, alpha=alpha)


def tiny_instance(seed: int = 0, alpha: float = 0.5) -> RMGPInstance:
    """Small enough for exact branch-and-bound comparisons."""
    return random_instance(
        num_players=8, num_classes=3, alpha=alpha, edge_probability=0.4, seed=seed
    )


@pytest.fixture
def instance() -> RMGPInstance:
    return random_instance()


@pytest.fixture
def line_instance() -> RMGPInstance:
    """Three players on a path, two classes, hand-checkable numbers."""
    graph = SocialGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
    cost = np.array([[0.0, 1.0], [1.0, 0.0], [0.0, 1.0]])
    return RMGPInstance(graph, ["a", "b"], cost, alpha=0.5)
