"""Unit tests for the Equation 1/3/4 evaluators."""

import numpy as np
import pytest

from repro.core import (
    assignment_cost_sum,
    best_response,
    objective,
    player_cost,
    player_strategy_costs,
    potential,
    social_cost_sum,
    total_player_cost,
)

from tests.core.conftest import random_instance


class TestLineInstance:
    """Hand-checked numbers on the 3-player path fixture."""

    def test_all_same_class(self, line_instance):
        assignment = np.array([0, 0, 0])
        value = objective(line_instance, assignment)
        assert value.assignment_cost == pytest.approx(1.0)  # 0 + 1 + 0
        assert value.social_cost == 0.0
        assert value.total == pytest.approx(0.5)

    def test_middle_defects(self, line_instance):
        assignment = np.array([0, 1, 0])
        value = objective(line_instance, assignment)
        assert value.assignment_cost == pytest.approx(0.0)
        assert value.social_cost == pytest.approx(2.0)
        assert value.total == pytest.approx(1.0)

    def test_player_cost_shares_edges(self, line_instance):
        assignment = np.array([0, 1, 0])
        # Middle player pays half of both crossing edges.
        middle = player_cost(line_instance, assignment, 1)
        assert middle == pytest.approx(0.5 * 0.0 + 0.5 * 1.0)
        edge_player = player_cost(line_instance, assignment, 0)
        assert edge_player == pytest.approx(0.5 * 0.0 + 0.5 * 0.5)

    def test_potential_halves_social(self, line_instance):
        assignment = np.array([0, 1, 0])
        phi = potential(line_instance, assignment)
        assert phi == pytest.approx(0.5 * 0.0 + 0.5 * 0.5 * 2.0)

    def test_strategy_costs_match_figure3(self, line_instance):
        assignment = np.array([0, 0, 0])
        costs = player_strategy_costs(line_instance, assignment, 1)
        # Staying at 0: alpha*c(1,0)=0.5 plus no social cost.
        assert costs[0] == pytest.approx(0.5)
        # Moving to 1: alpha*c(1,1)=0 plus both edges crossing at half.
        assert costs[1] == pytest.approx(0.5 * 1.0)

    def test_best_response_keeps_current_on_tie(self, line_instance):
        assignment = np.array([0, 0, 0])
        # Costs are (0.5, 0.5): a tie, so the player must stay put.
        assert best_response(line_instance, assignment, 1) == 0


class TestDecomposition:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("alpha", [0.2, 0.5, 0.8])
    def test_objective_equals_sum_of_player_costs(self, seed, alpha):
        """Section 3.1: RMGP(G,P,alpha) == sum_v C_v."""
        instance = random_instance(seed=seed, alpha=alpha)
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, instance.k, instance.n)
        total = total_player_cost(instance, assignment)
        assert total == pytest.approx(objective(instance, assignment).total)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_potential_sandwich(self, seed):
        """Theorem 2's inequality (5): C/2 <= Phi <= C."""
        instance = random_instance(seed=seed)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            assignment = rng.integers(0, instance.k, instance.n)
            c = objective(instance, assignment).total
            phi = potential(instance, assignment)
            assert 0.5 * c - 1e-12 <= phi <= c + 1e-12

    def test_social_cost_counts_each_edge_once(self):
        instance = random_instance(seed=5)
        assignment = np.zeros(instance.n, dtype=np.int64)
        assert social_cost_sum(instance, assignment) == 0.0
        # Isolate player 0 in its own class: its incident weight crosses.
        assignment[0] = 1
        expected = instance.graph.weighted_degree(instance.node_ids[0])
        assert social_cost_sum(instance, assignment) == pytest.approx(expected)

    def test_assignment_cost_sum_matches_matrix(self):
        instance = random_instance(seed=6)
        rng = np.random.default_rng(0)
        assignment = rng.integers(0, instance.k, instance.n)
        expected = sum(
            instance.cost.cost(v, int(assignment[v])) for v in range(instance.n)
        )
        assert assignment_cost_sum(instance, assignment) == pytest.approx(expected)


class TestStrategyCosts:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_brute_force(self, seed):
        """player_strategy_costs[p] equals C_v after moving v to p."""
        instance = random_instance(seed=seed)
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, instance.k, instance.n)
        for player in range(0, instance.n, 3):
            costs = player_strategy_costs(instance, assignment, player)
            for klass in range(instance.k):
                moved = assignment.copy()
                moved[player] = klass
                assert costs[klass] == pytest.approx(
                    player_cost(instance, moved, player)
                )

    def test_best_response_improves_or_keeps(self):
        instance = random_instance(seed=2)
        rng = np.random.default_rng(2)
        assignment = rng.integers(0, instance.k, instance.n)
        for player in range(instance.n):
            response = best_response(instance, assignment, player)
            costs = player_strategy_costs(instance, assignment, player)
            assert costs[response] <= costs[int(assignment[player])] + 1e-12
