"""Conformance of the unified ``repro.partition()`` API.

Every registry solver must (a) agree byte-for-byte with its legacy
``solve_*`` entry point, (b) return the shared ``PartitionResult``
contract, and (c) reject options it does not understand.  The legacy
entry points must keep working but warn.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import SolveOptions, partition
from repro.core import registry
from repro.core.result import PartitionResult, RoundStats
from repro.errors import ConfigurationError
from tests.core.conftest import random_instance

#: canonical name -> (legacy entry point, extra kwargs it needs)
LEGACY = {
    "b": ("repro.core.baseline", "solve_baseline", {}),
    "se": ("repro.core.strategy_elimination", "solve_strategy_elimination", {}),
    "is": ("repro.core.independent_sets", "solve_independent_sets", {}),
    "gt": ("repro.core.global_table", "solve_global_table", {}),
    "all": ("repro.core.combined", "solve_all", {}),
    "vec": ("repro.core.vectorized", "solve_vectorized", {}),
    "mg": ("repro.core.priority", "solve_max_gain", {}),
    "sync": ("repro.core.simultaneous", "solve_simultaneous", {}),
    "cap": ("repro.core.capacitated", "solve_capacitated",
            {"capacities": [12] * 4}),
    "minpart": ("repro.core.capacitated", "solve_with_minimums",
                {"min_participants": 2}),
}


def legacy_entry(name):
    import importlib

    module_name, function_name, extra = LEGACY[name]
    return getattr(importlib.import_module(module_name), function_name), extra


@pytest.fixture(scope="module")
def instance():
    return random_instance(num_players=40, num_classes=4, seed=5)


class TestRegistry:
    def test_short_and_long_names_resolve_to_same_impl(self):
        assert registry.SOLVERS["b"] is registry.SOLVERS["baseline"]
        assert registry.SOLVERS["gt"] is registry.SOLVERS["global_table"]
        assert registry.SOLVERS["minpart"] is registry.SOLVERS["with_minimums"]

    def test_canonical_names(self):
        assert registry.canonical_solver_name("b") == "baseline"
        assert registry.canonical_solver_name("baseline") == "baseline"

    def test_unknown_solver_lists_registry(self, instance):
        with pytest.raises(ConfigurationError, match="baseline"):
            partition(instance, solver="nope")


@pytest.mark.parametrize("name", sorted(LEGACY))
class TestConformance:
    def test_partition_matches_legacy(self, instance, name):
        legacy, extra = legacy_entry(name)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            old = legacy(instance, seed=9, **extra)
        new = partition(instance, solver=name, seed=9, **extra)
        assert np.array_equal(old.assignment, new.assignment)
        assert old.total_deviations == new.total_deviations
        assert old.converged == new.converged

    def test_result_contract(self, instance, name):
        _, extra = legacy_entry(name)
        result = partition(instance, solver=name, seed=9, **extra)
        assert isinstance(result, PartitionResult)
        assert result.solver.startswith("RMGP_")
        assert result.assignment.dtype == np.int64
        assert result.assignment.shape == (instance.n,)
        assert len(result.labels) == instance.n
        assert result.rounds and all(
            isinstance(r, RoundStats) for r in result.rounds
        )
        assert result.rounds[0].round_index == 0
        assert result.wall_seconds >= 0
        # players_examined is real per-round work, never a stale default.
        assert all(
            r.players_examined >= 0 for r in result.rounds
        )
        assert any(r.players_examined > 0 for r in result.rounds)

    def test_assignment_is_a_fresh_copy(self, instance, name):
        _, extra = legacy_entry(name)
        result = partition(instance, solver=name, seed=9, **extra)
        before = result.assignment.copy()
        result.assignment[:] = -1
        again = partition(instance, solver=name, seed=9, **extra)
        assert np.array_equal(again.assignment, before)

    def test_to_dict_is_json_ready(self, instance, name):
        import json

        _, extra = legacy_entry(name)
        result = partition(instance, solver=name, seed=9, **extra)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["solver"] == result.solver
        assert payload["n"] == instance.n
        assert len(payload["assignment_sha256"]) == 64
        assert len(payload["round_trace"]) == len(result.rounds)


class TestSolveOptions:
    def test_options_equal_kwargs(self, instance):
        via_options = partition(
            instance, solver="gt",
            options=SolveOptions(seed=4, init="closest", order="given"),
        )
        via_kwargs = partition(
            instance, solver="gt", seed=4, init="closest", order="given"
        )
        assert np.array_equal(via_options.assignment, via_kwargs.assignment)

    def test_alpha_override(self, instance):
        result = partition(
            instance, solver="b", options=SolveOptions(alpha=0.9, seed=0)
        )
        assert result.value.alpha == pytest.approx(0.9)

    def test_conflicting_option_and_kwarg_raises(self, instance):
        with pytest.raises(ConfigurationError, match="seed"):
            partition(
                instance, solver="b", options=SolveOptions(seed=1), seed=2
            )

    def test_unsupported_option_raises(self, instance):
        # The vectorized solver has no `order` parameter.
        with pytest.raises(ConfigurationError, match="order"):
            partition(
                instance, solver="vec", options=SolveOptions(order="degree")
            )

    def test_unsupported_kwarg_raises(self, instance):
        with pytest.raises(ConfigurationError, match="capacities"):
            partition(instance, solver="gt", capacities=[1, 2, 3, 4])

    def test_defaults_are_not_forwarded(self, instance):
        # An untouched SolveOptions must work for every solver, even ones
        # that accept only a subset of the fields.
        result = partition(instance, solver="vec", options=SolveOptions())
        assert result.converged

    def test_recorder_option_routes_to_solver(self, instance):
        from repro.obs import TraceRecorder

        recorder = TraceRecorder()
        partition(
            instance, solver="gt", options=SolveOptions(seed=0, recorder=recorder)
        )
        assert recorder.spans
        assert recorder.spans[0].name == "solve"
        assert recorder.spans[0].attrs["solver"] == "RMGP_gt"


class TestFacadeRouting:
    def test_game_solve_goes_through_registry(self):
        instance = random_instance(num_players=30, num_classes=3, seed=2)
        game = repro.RMGPGame(
            instance.graph,
            list(range(instance.k)),
            instance.cost.dense(),
            alpha=instance.alpha,
        )
        via_game = game.solve(method="gt", seed=1)
        via_partition = partition(instance, solver="gt", seed=1)
        assert np.array_equal(via_game.assignment, via_partition.assignment)

    def test_game_solve_rejects_unknown_method(self):
        instance = random_instance(num_players=10, num_classes=3, seed=2)
        game = repro.RMGPGame(
            instance.graph,
            list(range(instance.k)),
            instance.cost.dense(),
            alpha=instance.alpha,
        )
        with pytest.raises(ConfigurationError):
            game.solve(method="bogus")
