"""Unit tests for RMGP_gt (Figure 5)."""

import numpy as np
import pytest

from repro.core import (
    build_global_table,
    happiness,
    is_nash_equilibrium,
    player_strategy_costs,
    solve_baseline,
    solve_global_table,
)

from tests.core.conftest import random_instance


class TestTableConstruction:
    def test_matches_strategy_costs(self, instance):
        rng = np.random.default_rng(0)
        assignment = rng.integers(0, instance.k, instance.n)
        table = build_global_table(instance, assignment)
        for player in range(instance.n):
            np.testing.assert_allclose(
                table[player],
                player_strategy_costs(instance, assignment, player),
            )

    def test_happiness_flags(self, instance):
        rng = np.random.default_rng(1)
        assignment = rng.integers(0, instance.k, instance.n)
        table = build_global_table(instance, assignment)
        happy = happiness(table, assignment)
        for player in range(instance.n):
            row = table[player]
            expected = row[assignment[player]] <= row.min() + 1e-12
            assert happy[player] == expected


class TestSolver:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reaches_nash_equilibrium(self, seed):
        instance = random_instance(seed=seed)
        result = solve_global_table(instance, seed=seed)
        assert result.converged
        assert is_nash_equilibrium(instance, result.assignment)

    def test_matches_baseline_from_same_start(self, instance):
        """Same init + same order => identical best-response trajectory.

        RMGP_gt performs "the same number of rounds as RMGP_b assuming
        both use the same initial assignments" (Section 4.3) — and the
        same final equilibrium, since only the bookkeeping differs.
        """
        baseline = solve_baseline(instance, init="closest", order="given")
        table = solve_global_table(instance, init="closest", order="given")
        np.testing.assert_array_equal(baseline.assignment, table.assignment)

    def test_examines_fewer_players_over_time(self):
        instance = random_instance(num_players=60, seed=7)
        result = solve_global_table(instance, init="random", seed=7)
        examined = [
            r.players_examined for r in result.rounds if r.round_index > 0
        ]
        if len(examined) > 2:
            # The number of unhappy players examined decays.
            assert examined[-1] <= examined[0]

    def test_table_consistent_at_termination(self, instance):
        result = solve_global_table(instance, seed=0)
        table = build_global_table(instance, result.assignment)
        happy = happiness(table, result.assignment)
        assert happy.all()

    def test_reports_table_bytes(self, instance):
        result = solve_global_table(instance, seed=0)
        assert result.extra["table_bytes"] == instance.n * instance.k * 8
