"""The frozen ``repro-result/v1`` contract and its validator."""

import json

import pytest

from repro.api import partition
from repro.core.result_schema import (
    RESULT_SCHEMA_VERSION,
    main,
    validate_result,
    validate_result_file,
)
from repro.datasets import paper_example_instance


@pytest.fixture(scope="module")
def payload():
    result = partition(paper_example_instance(), solver="gt", seed=0)
    return result.to_dict(include_assignment=True)


class TestConformingPayloads:
    def test_real_result_conforms(self, payload):
        assert payload["schema"] == RESULT_SCHEMA_VERSION
        assert validate_result(payload) == []

    def test_every_solver_payload_conforms(self):
        from repro.core.registry import SOLVERS, canonical_solver_name

        instance = paper_example_instance()
        n = instance.n
        extra = {
            "capacitated": {"capacities": [n] * instance.k},
            "with_minimums": {"min_participants": 0},
        }
        for solver in sorted(
            {canonical_solver_name(name) for name in SOLVERS}
        ):
            result = partition(
                instance, solver=solver, seed=0, **extra.get(solver, {})
            )
            errors = validate_result(result.to_dict(include_assignment=True))
            assert errors == [], f"{solver}: {errors}"

    def test_interrupted_result_conforms(self):
        result = partition(
            paper_example_instance(), solver="gt", deadline_seconds=1e-9
        )
        payload = result.to_dict()
        assert payload["stop_reason"] == "deadline"
        assert validate_result(payload) == []

    def test_extension_keys_are_allowed(self, payload):
        annotated = dict(payload)
        annotated["job"] = "job-3"
        annotated["dataset"] = {"name": "paper"}
        assert validate_result(annotated) == []


class TestViolations:
    def test_not_an_object(self):
        assert validate_result([1, 2]) == [
            "payload: expected an object, got list"
        ]

    def test_missing_required_key(self, payload):
        broken = {k: v for k, v in payload.items() if k != "objective"}
        assert any(
            "objective: required key missing" in e
            for e in validate_result(broken)
        )

    def test_wrong_schema_tag(self, payload):
        broken = dict(payload, schema="repro-result/v0")
        assert any("schema: expected" in e for e in validate_result(broken))

    def test_unknown_stop_reason(self, payload):
        broken = dict(payload, stop_reason="tired", converged=False)
        assert any("stop_reason" in e for e in validate_result(broken))

    def test_converged_must_match_stop_reason(self, payload):
        broken = dict(payload, converged=False)
        assert any(
            "converged: inconsistent" in e for e in validate_result(broken)
        )

    def test_bool_is_not_a_number(self, payload):
        broken = dict(payload, rounds=True)
        assert any("rounds: expected int" in e for e in validate_result(broken))

    def test_objective_key_set_is_closed(self, payload):
        broken = dict(payload, objective=dict(payload["objective"], bonus=1.0))
        assert any(
            "objective.bonus: unknown key" in e
            for e in validate_result(broken)
        )

    def test_rounds_must_match_trace(self, payload):
        broken = dict(payload, rounds=payload["rounds"] + 1)
        assert any(
            "does not match the trace" in e for e in validate_result(broken)
        )

    def test_deviation_sum_checked(self, payload):
        broken = dict(
            payload, total_deviations=payload["total_deviations"] + 1
        )
        assert any("total_deviations" in e for e in validate_result(broken))

    def test_trace_rounds_strictly_increasing(self, payload):
        trace = [dict(entry) for entry in payload["round_trace"]]
        trace.append(dict(trace[-1]))  # duplicate round index
        broken = dict(payload, round_trace=trace)
        assert any(
            "not strictly increasing" in e for e in validate_result(broken)
        )

    def test_trace_key_set_is_closed(self, payload):
        trace = [dict(entry) for entry in payload["round_trace"]]
        trace[0]["speed"] = 1
        broken = dict(payload, round_trace=trace)
        assert any("speed: unknown key" in e for e in validate_result(broken))

    def test_assignment_must_hash_to_sha(self, payload):
        tampered = list(payload["assignment"])
        tampered[0] = (tampered[0] + 1) % 3
        broken = dict(payload, assignment=tampered)
        assert any(
            "does not match assignment_sha256" in e
            for e in validate_result(broken)
        )

    def test_assignment_length_checked(self, payload):
        broken = dict(payload, assignment=payload["assignment"][:-1])
        assert any("length" in e for e in validate_result(broken))

    def test_malformed_sha(self, payload):
        broken = dict(payload, assignment_sha256="XYZ")
        assert any(
            "assignment_sha256" in e for e in validate_result(broken)
        )


class TestFileAndCli:
    def test_json_file_ok(self, payload, tmp_path, capsys):
        path = tmp_path / "result.json"
        path.write_text(json.dumps(payload))
        assert validate_result_file(str(path)) == []
        assert main([str(path)]) == 0
        assert "conforms" in capsys.readouterr().out

    def test_jsonl_file_with_violation(self, payload, tmp_path, capsys):
        broken = dict(payload, rounds=payload["rounds"] + 1)
        path = tmp_path / "results.jsonl"
        path.write_text(
            json.dumps(payload) + "\n" + json.dumps(broken) + "\n"
        )
        errors = validate_result_file(str(path))
        assert errors and all(e.startswith("payload 1: ") for e in errors)
        assert main([str(path)]) == 1
        assert "payload 1" in capsys.readouterr().err

    def test_missing_file(self, tmp_path):
        errors = validate_result_file(str(tmp_path / "nope.json"))
        assert errors

    def test_usage_error(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err
