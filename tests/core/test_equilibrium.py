"""Unit tests for equilibrium verification and the Theorem 2 bounds."""

import numpy as np
import pytest

from repro.baselines import solve_exact
from repro.core import (
    RMGPInstance,
    equilibrium_report,
    is_nash_equilibrium,
    price_of_anarchy_bound,
    price_of_stability_bound,
    round_bound,
    solve_baseline,
)
from repro.core.equilibrium import anarchy_gap
from repro.graph import SocialGraph

from tests.core.conftest import tiny_instance


class TestReport:
    def test_equilibrium_detected(self, instance):
        result = solve_baseline(instance, seed=0)
        report = equilibrium_report(instance, result.assignment)
        assert report.is_equilibrium
        assert report.max_regret <= 1e-9
        assert report.unstable_players == []
        assert "Nash" in str(report)

    def test_non_equilibrium_detected(self):
        # Two friends with opposite preferences but a dominating edge:
        # both in different classes is unstable.
        graph = SocialGraph.from_edges([(0, 1, 10.0)])
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        instance = RMGPInstance(graph, ["a", "b"], cost, alpha=0.5)
        split = np.array([0, 1])
        report = equilibrium_report(instance, split)
        assert not report.is_equilibrium
        assert report.max_regret > 0
        assert report.unstable_players  # at least one wants to move
        assert "not an equilibrium" in str(report)

    def test_is_nash_wrapper(self, instance):
        result = solve_baseline(instance, seed=1)
        assert is_nash_equilibrium(instance, result.assignment)
        broken = result.assignment.copy()
        # Perturb a player with friends to break the equilibrium, if any
        # non-trivial alternative exists.
        degrees = instance.degrees()
        player = int(degrees.argmax())
        broken[player] = (broken[player] + 1) % instance.k
        # Not guaranteed unstable, but the report must still be valid.
        report = equilibrium_report(instance, broken)
        assert isinstance(report.is_equilibrium, bool)


class TestBounds:
    def test_pos_constant(self):
        assert price_of_stability_bound() == 2.0

    def test_poa_formula(self, instance):
        bound = price_of_anarchy_bound(instance)
        deg_avg = instance.graph.average_degree()
        w_avg = instance.graph.average_edge_weight()
        c_avg = float(
            np.mean([instance.cost.row(v).min() for v in range(instance.n)])
        )
        expected = 1.0 + ((1 - instance.alpha) / instance.alpha) * (
            deg_avg * w_avg
        ) / (2 * c_avg)
        assert bound == pytest.approx(expected)

    def test_poa_infinite_when_free_class(self):
        graph = SocialGraph.from_edges([(0, 1, 1.0)])
        cost = np.zeros((2, 2))
        instance = RMGPInstance(graph, ["a", "b"], cost)
        assert price_of_anarchy_bound(instance) == float("inf")

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_every_equilibrium_within_poa_bound(self, seed):
        """Theorem 2: any Nash equilibrium is within the PoA bound of OPT."""
        instance = tiny_instance(seed=seed)
        optimal = solve_exact(instance).value.total
        equilibrium = solve_baseline(instance, seed=seed).value.total
        ratio, bound = anarchy_gap(instance, equilibrium, optimal)
        assert ratio <= bound + 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_pos_bound_via_opt_warm_start(self, seed):
        """Dynamics warm-started at OPT reach an equilibrium <= 2*OPT.

        Proof sketch (from the paper's inequality (5)): best responses
        only lower Phi, Phi(OPT) <= C(OPT), and C <= 2*Phi, hence the
        reached equilibrium costs at most 2*OPT — the PoS bound.
        """
        instance = tiny_instance(seed=seed)
        exact = solve_exact(instance)
        optimal = exact.value.total
        reached = solve_baseline(
            instance, warm_start=exact.assignment, seed=seed
        )
        assert reached.value.total <= 2.0 * optimal + 1e-9

    def test_round_bound_formula(self, instance):
        bound = round_bound(instance, scale=10.0)
        worst_assignment = sum(
            instance.cost.row(v).max() for v in range(instance.n)
        )
        c_star = 10.0 * worst_assignment
        w_star = 5.0 * instance.graph.total_edge_weight()
        assert bound == pytest.approx(max(c_star, w_star))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_rounds_far_below_lemma2_bound(self, seed):
        """Observed rounds are well under the (loose) Lemma 2 ceiling."""
        instance = tiny_instance(seed=seed)
        result = solve_baseline(instance, seed=seed, track_potential=True)
        # Costs are floats; a scale of 1e6 makes an integer-ish potential.
        assert result.num_rounds <= round_bound(instance, scale=1e6)
