"""Frontier scheduling must be observably identical to full sweeps.

The dirty-frontier scheduler (:class:`repro.core.dynamics.ActiveSet`)
claims to skip only players whose examination would provably be a no-op.
These tests pin that claim: reference implementations of the *seed*
full-sweep dynamics (every round examines every player) are kept inline
here, and every production solver must reproduce their assignments
byte for byte — same moves, same rounds, same potential — across
initializations, orderings, alphas, warm starts and the normalized
(:class:`~repro.core.costs.ScaledCost`) path.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import dynamics
from repro.core.baseline import solve_baseline
from repro.core.equilibrium import equilibrium_report
from repro.core.global_table import solve_global_table
from repro.core.independent_sets import solve_independent_sets
from repro.core.normalization import normalize
from repro.core.objective import player_strategy_costs, potential
from repro.core.vectorized import solve_vectorized
from repro.datasets.paper_example import paper_example_instance
from repro.graph import greedy_coloring

from .conftest import random_instance


def _full_sweep_baseline(
    instance,
    init="random",
    order="random",
    seed=None,
    warm_start=None,
    reshuffle_each_round=False,
):
    """The seed RMGP_b: every round examines *every* player."""
    rng = random.Random(seed)
    assignment = dynamics.initial_assignment(instance, init, rng, warm_start)
    sweep = dynamics.player_order(instance, order, rng)
    num_rounds = 0
    while True:
        num_rounds += 1
        if reshuffle_each_round and order == "random":
            sweep = dynamics.player_order(instance, order, rng)
        deviations = 0
        for player in sweep:
            costs = player_strategy_costs(instance, assignment, player)
            current = int(assignment[player])
            best = int(costs.argmin())
            if (
                best != current
                and costs[best] < costs[current] - dynamics.DEVIATION_TOLERANCE
            ):
                assignment[player] = best
                deviations += 1
        if deviations == 0:
            return assignment, num_rounds


class TestBaselineMatchesFullSweep:
    @pytest.mark.parametrize("init", ["random", "closest"])
    @pytest.mark.parametrize("order", ["random", "given", "degree"])
    @pytest.mark.parametrize("alpha", [0.3, 0.5, 0.7])
    def test_byte_identical_trajectory(self, init, order, alpha):
        instance = random_instance(num_players=40, alpha=alpha, seed=3)
        expected, expected_rounds = _full_sweep_baseline(
            instance, init=init, order=order, seed=11
        )
        result = solve_baseline(instance, init=init, order=order, seed=11)
        assert result.assignment.tobytes() == expected.tobytes()
        assert result.num_rounds == expected_rounds
        assert potential(instance, result.assignment) == potential(
            instance, expected
        )

    def test_reshuffle_each_round(self):
        instance = random_instance(num_players=40, seed=6)
        expected, expected_rounds = _full_sweep_baseline(
            instance,
            init="random",
            order="random",
            seed=9,
            reshuffle_each_round=True,
        )
        result = solve_baseline(
            instance,
            init="random",
            order="random",
            seed=9,
            reshuffle_each_round=True,
        )
        assert result.assignment.tobytes() == expected.tobytes()
        assert result.num_rounds == expected_rounds

    def test_warm_start(self):
        instance = random_instance(num_players=30, seed=2)
        start = solve_baseline(instance, init="random", seed=1).assignment
        perturbed = start.copy()
        perturbed[::5] = (perturbed[::5] + 1) % instance.k
        expected, _ = _full_sweep_baseline(
            instance, order="given", warm_start=perturbed
        )
        result = solve_baseline(instance, order="given", warm_start=perturbed)
        assert result.assignment.tobytes() == expected.tobytes()

    def test_normalized_scaled_cost_path(self):
        instance, _ = normalize(
            random_instance(num_players=40, seed=5), "pessimistic"
        )
        expected, expected_rounds = _full_sweep_baseline(
            instance, init="closest", order="degree", seed=0
        )
        result = solve_baseline(
            instance, init="closest", order="degree", seed=0
        )
        assert result.assignment.tobytes() == expected.tobytes()
        assert result.num_rounds == expected_rounds


class TestCrossSolverAgreement:
    @pytest.mark.parametrize("alpha", [0.3, 0.5, 0.7])
    def test_global_table_matches_full_sweep(self, alpha):
        instance = random_instance(num_players=40, alpha=alpha, seed=4)
        expected, expected_rounds = _full_sweep_baseline(
            instance, init="closest", order="given", seed=0
        )
        result = solve_global_table(
            instance, init="closest", order="given", seed=0
        )
        assert result.assignment.tobytes() == expected.tobytes()
        assert result.num_rounds == expected_rounds

    @pytest.mark.parametrize("alpha", [0.3, 0.5, 0.7])
    def test_vectorized_matches_independent_sets(self, alpha):
        instance = random_instance(num_players=40, alpha=alpha, seed=7)
        coloring = greedy_coloring(instance.graph)
        scalar = solve_independent_sets(
            instance, init="closest", order="given", seed=0, coloring=coloring
        )
        batched = solve_vectorized(
            instance, init="closest", seed=0, coloring=coloring
        )
        assert batched.assignment.tobytes() == scalar.assignment.tobytes()
        assert batched.num_rounds == scalar.num_rounds


class TestFrontierProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        alpha=st.sampled_from([0.2, 0.5, 0.8]),
        solver=st.sampled_from(["baseline", "global_table", "vectorized"]),
    )
    def test_frontier_quiet_state_is_nash(self, seed, alpha, solver):
        """An empty frontier certifies equilibrium (Theorem 1 via ActiveSet)."""
        instance = random_instance(
            num_players=25, num_classes=3, alpha=alpha, seed=seed % 50
        )
        if solver == "baseline":
            result = solve_baseline(
                instance, init="random", order="random", seed=seed
            )
        elif solver == "global_table":
            result = solve_global_table(instance, init="random", seed=seed)
        else:
            result = solve_vectorized(instance, init="random", seed=seed)
        assert result.converged
        assert equilibrium_report(instance, result.assignment).is_equilibrium

    @pytest.mark.parametrize(
        "solve",
        [
            lambda inst: solve_baseline(
                inst, init="random", order="given", seed=2
            ),
            lambda inst: solve_global_table(
                inst, init="random", order="given", seed=2
            ),
        ],
        ids=["baseline", "global_table"],
    )
    def test_players_examined_shrinks_on_paper_example(self, solve):
        """The frontier, not ``n``: examined counts strictly decrease."""
        result = solve(paper_example_instance())
        examined = [r.players_examined for r in result.rounds[1:]]
        assert len(examined) >= 2
        assert all(b < a for a, b in zip(examined, examined[1:]))
        # Round 1 of a cold solve examines at most every player once.
        assert examined[0] <= len(result.assignment)


class TestActiveSetUnit:
    def test_mark_clear_pending_roundtrip(self):
        active = dynamics.ActiveSet(6)
        assert active.any_dirty() and active.count() == 6
        active.clear(np.arange(6))
        assert not active.any_dirty()
        active.mark([4, 1])
        assert active.is_dirty(1) and active.is_dirty(4)
        assert list(active.pending()) == [1, 4]
        # Restriction preserves the caller's member order (sweep order).
        assert list(active.pending(np.array([4, 2, 1]))) == [4, 1]

    def test_initial_dirty_vector_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            dynamics.ActiveSet(4, dirty=np.ones(3, dtype=bool))
