"""Input hardening: RMGPInstance rejects malformed costs and graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RMGPInstance
from repro.core.costs import FunctionCost
from repro.errors import ConfigurationError, DataError, GraphError
from repro.graph import SocialGraph


def make_graph():
    return SocialGraph.from_edges([(0, 1, 1.0), (1, 2, 2.0)])


class TestCostMatrixHardening:
    def test_nan_cost_rejected(self):
        cost = np.zeros((3, 2))
        cost[1, 0] = np.nan
        with pytest.raises(ConfigurationError, match="finite"):
            RMGPInstance(make_graph(), ["a", "b"], cost)

    def test_inf_cost_rejected(self):
        cost = np.zeros((3, 2))
        cost[2, 1] = np.inf
        with pytest.raises(ConfigurationError, match="finite"):
            RMGPInstance(make_graph(), ["a", "b"], cost)

    def test_negative_cost_rejected(self):
        cost = np.zeros((3, 2))
        cost[0, 1] = -0.25
        with pytest.raises(ConfigurationError, match="non-negative"):
            RMGPInstance(make_graph(), ["a", "b"], cost)

    def test_lazy_cost_row_nan_rejected(self):
        instance = RMGPInstance(
            make_graph(), ["a", "b"],
            FunctionCost(lambda p: [np.nan, 0.0] if p == 1 else [0.0, 0.0],
                         num_players=3, num_classes=2),
        )
        with pytest.raises(DataError, match="NaN"):
            instance.cost.row(1)

    def test_lazy_cost_row_negative_rejected(self):
        instance = RMGPInstance(
            make_graph(), ["a", "b"],
            FunctionCost(lambda p: [-1.0, 0.0],
                         num_players=3, num_classes=2),
        )
        with pytest.raises(DataError, match="negative"):
            instance.cost.row(0)


class TestGraphHardening:
    def test_nan_edge_weight_rejected(self):
        # add_edge's positivity check cannot see NaN (NaN <= 0 is False),
        # so the instance-level finite sweep must catch it.
        graph = make_graph()
        graph.add_edge(0, 2, float("nan"))
        with pytest.raises(GraphError, match="finite"):
            RMGPInstance(graph, ["a", "b"], np.zeros((3, 2)))

    def test_inf_edge_weight_rejected(self):
        graph = make_graph()
        graph.add_edge(0, 2, float("inf"))
        with pytest.raises(GraphError, match="finite"):
            RMGPInstance(graph, ["a", "b"], np.zeros((3, 2)))

    def test_dangling_endpoint_rejected(self):
        # Simulate a corrupted adjacency table: node 1 lists a friend
        # that is not a node of the graph.
        graph = make_graph()
        graph._adj[1]["ghost"] = 1.0
        with pytest.raises(GraphError, match="dangles"):
            RMGPInstance(graph, ["a", "b"], np.zeros((3, 2)))

    def test_clean_instance_constructs(self):
        instance = RMGPInstance(make_graph(), ["a", "b"], np.zeros((3, 2)))
        assert instance.n == 3
        assert instance.k == 2
