"""Unit tests for RMGP_se (Section 4.1)."""

import numpy as np
import pytest

from repro.core import (
    build_elimination_plan,
    is_nash_equilibrium,
    player_strategy_costs,
    solve_strategy_elimination,
)

from tests.core.conftest import random_instance


class TestEliminationPlan:
    def test_valid_regions_formula(self, instance):
        plan = build_elimination_plan(instance)
        ratio = (1 - instance.alpha) / instance.alpha
        for player in range(instance.n):
            row = instance.cost.row(player)
            expected = row.min() + ratio * instance.half_strength[player]
            assert plan.valid_regions[player] == pytest.approx(expected)

    def test_valid_sets_definition(self, instance):
        plan = build_elimination_plan(instance)
        for player in range(instance.n):
            row = instance.cost.row(player)
            bound = plan.valid_regions[player]
            expected = set(np.flatnonzero(row <= bound + 1e-12).tolist())
            assert set(plan.valid_classes[player].tolist()) == expected

    def test_cheapest_class_always_valid(self, instance):
        plan = build_elimination_plan(instance)
        for player in range(instance.n):
            cheapest = int(instance.cost.row(player).argmin())
            assert cheapest in plan.valid_classes[player]

    def test_isolated_player_is_fixed(self):
        # A player with no friends can only follow the cheapest class.
        instance = random_instance(edge_probability=0.0, seed=1)
        plan = build_elimination_plan(instance)
        assert plan.num_fixed == instance.n

    def test_strategies_remaining_bounds(self, instance):
        plan = build_elimination_plan(instance)
        assert instance.n <= plan.strategies_remaining() <= instance.n * instance.k


class TestNeverPrunesBestResponse:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_best_response_always_valid(self, seed):
        """Any best response against any profile stays inside S'_v."""
        instance = random_instance(seed=seed)
        plan = build_elimination_plan(instance)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            assignment = rng.integers(0, instance.k, instance.n)
            for player in range(instance.n):
                costs = player_strategy_costs(instance, assignment, player)
                best = int(costs.argmin())
                assert best in plan.valid_classes[player], (
                    f"player {player}: best response {best} was pruned"
                )


class TestSolver:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reaches_nash_equilibrium(self, seed):
        instance = random_instance(seed=seed)
        result = solve_strategy_elimination(instance, seed=seed)
        assert result.converged
        assert is_nash_equilibrium(instance, result.assignment)

    def test_fixed_players_at_cheapest_class(self, instance):
        plan = build_elimination_plan(instance)
        result = solve_strategy_elimination(instance, plan=plan, seed=0)
        for player in range(instance.n):
            if plan.fixed_class[player] >= 0:
                assert result.assignment[player] == plan.fixed_class[player]

    def test_final_classes_within_valid_sets(self, instance):
        plan = build_elimination_plan(instance)
        result = solve_strategy_elimination(instance, plan=plan, seed=0)
        for player in range(instance.n):
            assert result.assignment[player] in plan.valid_classes[player]

    def test_reusing_plan_matches_fresh(self, instance):
        plan = build_elimination_plan(instance)
        fresh = solve_strategy_elimination(instance, seed=3)
        reused = solve_strategy_elimination(instance, plan=plan, seed=3)
        np.testing.assert_array_equal(fresh.assignment, reused.assignment)

    def test_extra_diagnostics(self, instance):
        result = solve_strategy_elimination(instance, seed=0)
        assert result.extra["strategies_total"] == instance.n * instance.k
        assert 0 <= result.extra["num_fixed"] <= instance.n
        assert result.extra["strategies_remaining"] <= instance.n * instance.k

    def test_matches_baseline_quality_from_same_start(self):
        """From closest-init + given order, se explores the same responses."""
        from repro.core import solve_baseline

        instance = random_instance(seed=9)
        baseline = solve_baseline(instance, init="closest", order="given")
        pruned = solve_strategy_elimination(instance, init="closest", order="given")
        np.testing.assert_array_equal(baseline.assignment, pruned.assignment)
