"""Unit tests for RMGP_all (all optimizations composed)."""

import numpy as np
import pytest

from repro.core import (
    build_elimination_plan,
    is_nash_equilibrium,
    player_strategy_costs,
    solve_all,
)
from repro.core.combined import build_pruned_table
from repro.graph import greedy_coloring

from tests.core.conftest import random_instance


class TestPrunedTable:
    def test_valid_entries_match_strategy_costs(self, instance):
        plan = build_elimination_plan(instance)
        rng = np.random.default_rng(0)
        assignment = rng.integers(0, instance.k, instance.n)
        table = build_pruned_table(instance, assignment, plan)
        for player in range(instance.n):
            costs = player_strategy_costs(instance, assignment, player)
            for klass in plan.valid_classes[player]:
                assert table[player, klass] == pytest.approx(costs[klass])

    def test_pruned_entries_are_inf(self, instance):
        plan = build_elimination_plan(instance)
        assignment = np.zeros(instance.n, dtype=np.int64)
        table = build_pruned_table(instance, assignment, plan)
        for player in range(instance.n):
            valid = set(plan.valid_classes[player].tolist())
            for klass in range(instance.k):
                if klass not in valid:
                    assert np.isinf(table[player, klass])


class TestSolver:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_reaches_nash_equilibrium(self, seed):
        instance = random_instance(seed=seed)
        result = solve_all(instance, seed=seed)
        assert result.converged
        assert is_nash_equilibrium(instance, result.assignment)

    def test_fixed_players_respected(self, instance):
        plan = build_elimination_plan(instance)
        result = solve_all(instance, plan=plan, seed=0)
        for player in range(instance.n):
            if plan.fixed_class[player] >= 0:
                assert result.assignment[player] == plan.fixed_class[player]

    def test_accepts_explicit_coloring(self, instance):
        coloring = greedy_coloring(instance.graph)
        result = solve_all(instance, coloring=coloring, seed=0)
        assert result.converged
        assert is_nash_equilibrium(instance, result.assignment)

    def test_diagnostics(self, instance):
        result = solve_all(instance, seed=0)
        assert result.extra["num_groups"] >= 1
        assert 0 <= result.extra["num_fixed"] <= instance.n
        assert result.extra["strategies_remaining"] <= instance.n * instance.k

    def test_warm_start_from_equilibrium(self, instance):
        first = solve_all(instance, seed=0)
        second = solve_all(instance, warm_start=first.assignment, seed=0)
        np.testing.assert_array_equal(first.assignment, second.assignment)
        assert second.total_deviations == 0

    def test_isolated_players_all_fixed(self):
        instance = random_instance(edge_probability=0.0, seed=2)
        result = solve_all(instance, seed=0)
        assert result.extra["num_fixed"] == instance.n
        # Everyone sits at the cheapest class.
        for player in range(instance.n):
            cheapest = int(instance.cost.row(player).argmin())
            assert result.assignment[player] == cheapest
