"""Property-based stress test: the incremental engine never drifts.

After *any* interleaving of cost updates, edge insertions, edge removals
and resolves, the engine's cached global table must equal a from-scratch
rebuild, and resolving must land on a Nash equilibrium of the mutated
instance.  This is the invariant that makes the online scenario safe.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    IncrementalRMGP,
    build_global_table,
    is_nash_equilibrium,
)

from tests.core.conftest import random_instance


@st.composite
def update_scripts(draw):
    """A list of update operations against a 12-player instance."""
    operations = []
    for _ in range(draw(st.integers(1, 12))):
        kind = draw(st.sampled_from(["cost", "add_edge", "remove_edge", "resolve"]))
        if kind == "cost":
            operations.append(
                (
                    "cost",
                    draw(st.integers(0, 11)),
                    [draw(st.floats(0.0, 5.0)) for _ in range(3)],
                )
            )
        elif kind == "add_edge":
            u = draw(st.integers(0, 11))
            v = draw(st.integers(0, 11).filter(lambda x: True))
            operations.append(("add_edge", u, v, draw(st.floats(0.1, 4.0))))
        elif kind == "remove_edge":
            operations.append(("remove_edge", draw(st.integers(0, 200))))
        else:
            operations.append(("resolve",))
    return operations


@settings(max_examples=40, deadline=None)
@given(update_scripts(), st.integers(0, 5))
def test_incremental_consistency_under_any_script(script, seed):
    instance = random_instance(
        num_players=12, num_classes=3, edge_probability=0.3, seed=seed
    )
    engine = IncrementalRMGP(instance, seed=0)
    for operation in script:
        if operation[0] == "cost":
            _, player, row = operation
            node = engine.instance.node_ids[player]
            engine.update_player_costs(node, row)
        elif operation[0] == "add_edge":
            _, u, v, weight = operation
            nu = engine.instance.node_ids[u % 12]
            nv = engine.instance.node_ids[v % 12]
            if nu != nv:
                engine.add_edge(nu, nv, weight)
        elif operation[0] == "remove_edge":
            edges = list(engine.instance.graph.edges())
            if edges:
                u, v, _ = edges[operation[1] % len(edges)]
                engine.remove_edge(u, v)
        else:
            engine.resolve()

    engine.resolve()
    # Invariant 1: the cached table matches a from-scratch rebuild.
    rebuilt = build_global_table(engine.instance, engine.assignment)
    np.testing.assert_allclose(engine._table, rebuilt, atol=1e-9)
    # Invariant 2: the final state is a Nash equilibrium.
    assert is_nash_equilibrium(engine.instance, engine.assignment)
    # Invariant 3: adjacency caches agree with the mutated graph.
    for player, node in enumerate(engine.instance.node_ids):
        neighbors = engine.instance.graph.neighbors(node)
        cached = {
            engine.instance.node_ids[int(i)]
            for i in engine.instance.neighbor_indices[player]
        }
        assert cached == set(neighbors)
        assert engine.instance.half_strength[player] == pytest.approx(
            0.5 * sum(neighbors.values())
        )
