"""Unit tests for JSON result persistence."""

import json

import numpy as np
import pytest

from repro.core import solve_baseline
from repro.core.serialize import (
    FORMAT_VERSION,
    load_assignment,
    load_labels,
    save_result,
)
from repro.errors import DataError

from tests.core.conftest import random_instance


@pytest.fixture
def saved(tmp_path, instance):
    result = solve_baseline(instance, seed=0)
    path = str(tmp_path / "result.json")
    save_result(result, path)
    return instance, result, path


class TestRoundTrip:
    def test_assignment_round_trip(self, saved):
        instance, result, path = saved
        loaded = load_assignment(path, instance)
        np.testing.assert_array_equal(loaded, result.assignment)

    def test_warm_start_from_file(self, saved):
        instance, result, path = saved
        warm = solve_baseline(
            instance, warm_start=load_assignment(path, instance), seed=0
        )
        assert warm.total_deviations == 0

    def test_labels_round_trip(self, saved):
        _, result, path = saved
        labels = load_labels(path)
        assert len(labels) == len(result.labels)

    def test_metadata_preserved(self, saved):
        _, result, path = saved
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["solver"] == result.solver
        assert payload["converged"] is True
        assert payload["format_version"] == FORMAT_VERSION
        assert len(payload["rounds"]) == len(result.rounds)


class TestValidation:
    def test_missing_file(self, instance):
        with pytest.raises(DataError):
            load_assignment("/nonexistent/result.json", instance)

    def test_bad_json(self, tmp_path, instance):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(DataError):
            load_assignment(str(path), instance)

    def test_wrong_version(self, tmp_path, instance):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 99, "assignment": []}))
        with pytest.raises(DataError):
            load_assignment(str(path), instance)

    def test_malformed_assignment(self, tmp_path, instance):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"format_version": FORMAT_VERSION, "assignment": "xx"})
        )
        with pytest.raises(DataError):
            load_assignment(str(path))

    def test_mismatched_instance(self, saved):
        _, _, path = saved
        other = random_instance(num_players=5, num_classes=2, seed=9)
        with pytest.raises(DataError):
            load_assignment(path, other)

    def test_labels_missing_section(self, tmp_path):
        path = tmp_path / "nolabels.json"
        path.write_text(json.dumps({"format_version": FORMAT_VERSION}))
        with pytest.raises(DataError):
            load_labels(str(path))
