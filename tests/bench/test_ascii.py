"""Unit tests for the terminal bar charts."""

import pytest

from repro.bench.ascii import bar_chart, table_chart
from repro.bench.harness import Table
from repro.errors import ConfigurationError


class TestBarChart:
    def test_scales_to_max(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_value_no_bar(self):
        text = bar_chart(["a", "b"], [0.0, 4.0], width=8)
        assert text.splitlines()[0].count("#") == 0

    def test_small_positive_gets_one_mark(self):
        text = bar_chart(["a", "b"], [0.0001, 100.0], width=10)
        assert text.splitlines()[0].count("#") == 1

    def test_title_and_values_shown(self):
        text = bar_chart(["x"], [3.0], title="My Chart")
        assert "My Chart" in text
        assert "3" in text

    def test_empty(self):
        assert "(no data)" in bar_chart([], [])

    def test_rejects_mismatched(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [-1.0])

    def test_rejects_tiny_width(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0], width=2)


class TestTableChart:
    def make_table(self):
        table = Table(title="T", columns=["round", "ms"])
        table.add_row(round=0, ms=10.0)
        table.add_row(round=1, ms=5.0)
        table.add_row(round=2)  # missing value skipped
        return table

    def test_charts_numeric_rows(self):
        text = table_chart(self.make_table(), "ms")
        assert "T — ms" in text
        assert text.count("|") == 2  # two charted rows

    def test_label_column_default_first(self):
        text = table_chart(self.make_table(), "ms")
        assert "0 |" in text
        assert "1 |" in text

    def test_rejects_unknown_column(self):
        with pytest.raises(ConfigurationError):
            table_chart(self.make_table(), "nope")


class TestCLIIntegration:
    def test_figure_with_chart(self, capsys):
        from repro.cli import main

        assert main(["figure", "table1", "--chart", "cost_p1"]) == 0
        output = capsys.readouterr().out
        assert "#" in output
        assert "cost_p1" in output
