"""Unit tests for the benchmark harness utilities."""

import pytest

from repro.bench import Table, full_scale, time_call
from repro.bench.harness import FULL_SCALE_ENV, Measurement
from repro.errors import ConfigurationError


class TestTimeCall:
    def test_repeats_and_result(self):
        calls = []
        measured = time_call(lambda: calls.append(1) or len(calls), repeats=3)
        assert len(measured.seconds) == 3
        assert measured.result == 3
        assert measured.median >= 0.0
        assert measured.best <= measured.mean + 1e-9

    def test_rejects_bad_repeats(self):
        with pytest.raises(ConfigurationError):
            time_call(lambda: None, repeats=0)


class TestFullScale:
    def test_env_controls(self, monkeypatch):
        monkeypatch.delenv(FULL_SCALE_ENV, raising=False)
        assert not full_scale()
        monkeypatch.setenv(FULL_SCALE_ENV, "1")
        assert full_scale()
        monkeypatch.setenv(FULL_SCALE_ENV, "0")
        assert not full_scale()


class TestTable:
    def test_add_and_column(self):
        table = Table(title="t", columns=["a", "b"])
        table.add_row(a=1, b=2.5)
        table.add_row(a=3)
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2.5, None]

    def test_rejects_unknown_column(self):
        table = Table(title="t", columns=["a"])
        with pytest.raises(ConfigurationError):
            table.add_row(zzz=1)
        with pytest.raises(ConfigurationError):
            table.column("zzz")

    def test_render_contains_everything(self):
        table = Table(title="My Figure", columns=["k", "ms"])
        table.add_row(k=8, ms=1.234)
        table.notes.append("a note")
        text = table.render()
        assert "My Figure" in text
        assert "1.234" in text
        assert "a note" in text
        assert str(table) == text

    def test_to_csv_round_trip(self, tmp_path):
        import csv

        table = Table(title="t", columns=["k", "ms"])
        table.add_row(k=8, ms=1.5)
        table.add_row(k=16)
        path = str(tmp_path / "out" / "table.csv")
        table.to_csv(path)
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0] == {"k": "8", "ms": "1.5"}
        assert rows[1] == {"k": "16", "ms": ""}

    def test_render_formats_numbers(self):
        table = Table(title="t", columns=["x"])
        table.add_row(x=123456.0)
        table.add_row(x=0.00001)
        table.add_row(x=0.0)
        text = table.render()
        assert "1.23e+05" in text or "123456" in text.replace(",", "")
        assert "1e-05" in text
