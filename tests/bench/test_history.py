"""Bench-history store: records, atomic appends, statistical gate."""

from __future__ import annotations

import json

from repro.bench.history import (
    HISTORY_SCHEMA,
    append_run,
    git_revision,
    history_file,
    load_history,
    make_record,
    regression_messages,
)


def record_with(normalized, key="fig8-tiny/RMGP_gt"):
    return {
        "schema": HISTORY_SCHEMA,
        "timestamp": 0.0,
        "git_sha": "abc",
        "profile": "smoke",
        "calibration_ms": 10.0,
        "results": {key: {"wall_ms": normalized * 10.0,
                          "normalized": normalized}},
    }


class TestRecords:
    def test_make_record_derives_normalized_ratio(self):
        record = make_record(
            "smoke", 20.0, {"a/b": {"wall_ms": 5.0, "rounds": 3}},
            timestamp=123.0,
        )
        assert record["schema"] == HISTORY_SCHEMA
        assert record["profile"] == "smoke"
        assert record["timestamp"] == 123.0
        assert record["results"]["a/b"]["normalized"] == 0.25
        assert record["results"]["a/b"]["rounds"] == 3

    def test_git_revision_inside_repo(self):
        from pathlib import Path

        sha = git_revision(Path(__file__).resolve().parents[2])
        assert sha == "unknown" or len(sha) == 40

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(tmp_path) == "unknown"


class TestStore:
    def test_append_and_load_round_trip(self, tmp_path):
        for value in (1.0, 1.1):
            append_run(tmp_path, "smoke", record_with(value))
        records = load_history(tmp_path, "smoke")
        assert len(records) == 2
        assert records[0]["results"]["fig8-tiny/RMGP_gt"][
            "normalized"
        ] == 1.0

    def test_append_leaves_no_tmp_file(self, tmp_path):
        append_run(tmp_path, "smoke", record_with(1.0))
        assert list(tmp_path.glob("*.tmp")) == []
        assert history_file(tmp_path, "smoke").exists()

    def test_profiles_are_isolated(self, tmp_path):
        append_run(tmp_path, "smoke", record_with(1.0))
        append_run(tmp_path, "core", record_with(2.0))
        assert len(load_history(tmp_path, "smoke")) == 1
        assert len(load_history(tmp_path, "core")) == 1

    def test_corrupt_lines_are_skipped(self, tmp_path):
        append_run(tmp_path, "smoke", record_with(1.0))
        with open(history_file(tmp_path, "smoke"), "a") as handle:
            handle.write("{broken\n")
            handle.write(json.dumps({"schema": "other/v1"}) + "\n")
        assert len(load_history(tmp_path, "smoke")) == 1

    def test_missing_history_is_empty(self, tmp_path):
        assert load_history(tmp_path, "smoke") == []


class TestRegressionGate:
    def test_flags_significant_regression(self):
        history = [record_with(v) for v in (1.0, 1.01, 0.99, 1.0)]
        messages = regression_messages(history, record_with(2.0))
        assert len(messages) == 1
        assert "fig8-tiny/RMGP_gt" in messages[0]
        assert "mean" in messages[0]

    def test_in_line_run_passes(self):
        history = [record_with(v) for v in (1.0, 1.02, 0.98, 1.0)]
        assert regression_messages(history, record_with(1.03)) == []

    def test_gate_stays_disarmed_below_min_samples(self):
        history = [record_with(1.0), record_with(1.0)]
        assert regression_messages(history, record_with(50.0)) == []

    def test_noisy_history_requires_ratio_threshold_too(self):
        # Tight sigma band but below 1.2x the mean: not flagged.
        history = [record_with(v) for v in (1.0, 1.0, 1.0, 1.0)]
        assert regression_messages(history, record_with(1.1)) == []

    def test_unknown_keys_are_ignored(self):
        history = [record_with(1.0, key="other/solver")] * 4
        assert regression_messages(history, record_with(9.0)) == []
