"""Smoke tests: every figure runner produces a well-formed table.

These run the benchmark code paths at miniature scale so that breakage in
a figure script is caught by ``pytest tests/`` without waiting on the
full benchmark suite.
"""

import pytest

from repro.bench import (
    run_fig7,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12_per_round,
    run_fig12_vs_k,
    run_fig13,
    run_fig14,
    run_table1,
    small_uml_dataset,
)
from repro.bench.workloads import event_sweep, instance_for


class TestWorkloads:
    def test_small_uml_dataset_size(self):
        dataset = small_uml_dataset(60, 3, seed=0)
        assert dataset.graph.num_nodes == 60
        assert len(dataset.events) == 3

    def test_instance_for_event_subset(self):
        dataset = small_uml_dataset(50, 4, seed=0)
        instance = instance_for(dataset, num_events=2, alpha=0.3, seed=0)
        assert instance.k == 2
        assert instance.alpha == 0.3

    def test_event_sweep_quick_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        assert event_sweep() == [8, 16, 32]
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert event_sweep() == [8, 16, 32, 64, 128]


class TestFigureRunnersSmoke:
    def test_table1(self):
        table = run_table1()
        assert table.rows
        assert any(row["deviated"] == "*" for row in table.rows)

    def test_fig7(self):
        table = run_fig7(event_counts=[3], num_users=60, seed=0)
        assert len(table.rows) == 1
        row = table.rows[0]
        assert row["UML_lp_cost"] <= row["MH_cost"] + 1e-9

    def test_fig9(self):
        table = run_fig9(event_counts=[4], seed=0)
        variants = {row["variant"] for row in table.rows}
        assert variants == {"raw", "optimistic", "pessimistic"}

    def test_fig10(self):
        table = run_fig10(event_counts=[4], seed=0)
        assert len(table.rows) == 3  # three variants for one k

    def test_fig11(self):
        table = run_fig11(alphas=[0.5], num_events=4, seed=0)
        assert len(table.rows) == 3

    def test_fig12_vs_k(self):
        table = run_fig12_vs_k(event_counts=[4], seed=0)
        assert len(table.rows) == 1
        assert all(v is not None for v in table.rows[0].values())

    def test_fig12_per_round(self):
        table = run_fig12_per_round(num_events=4, seed=0)
        assert table.rows[0]["round"] == 0

    def test_fig13(self):
        table = run_fig13(event_counts=[4], seed=0)
        row = table.rows[0]
        assert row["fae_total_s"] >= row["fae_transfer_s"]
        assert row["dg_rounds"] >= 1

    def test_fig14(self):
        table = run_fig14(num_events=4, seed=0)
        assert table.rows[0]["round"] == 0
        assert table.rows[-1]["deviations"] == 0
