"""Unit tests for the streaming (online) recommender."""

import pytest

from repro.apps import Event, StreamingRecommender, simulate_stream
from repro.core import is_nash_equilibrium
from repro.datasets import gowalla_like
from repro.errors import ConfigurationError
from repro.graph import SocialGraph


@pytest.fixture
def recommender():
    graph = SocialGraph.from_edges(
        [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]
    )
    checkins = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (9.0, 9.0), 3: (10.0, 9.0)}
    events = [Event("west", (0.5, 0.0)), Event("east", (9.5, 9.0))]
    return StreamingRecommender(
        graph, checkins, events, normalize_method=None, seed=0
    )


class TestConstruction:
    def test_initial_recommendations(self, recommender):
        recs = recommender.recommendations()
        assert recs[0] == "west"
        assert recs[3] == "east"

    def test_initial_state_is_equilibrium(self, recommender):
        assert is_nash_equilibrium(
            recommender.engine.instance, recommender.engine.assignment
        )

    def test_rejects_empty_events(self):
        graph = SocialGraph.from_edges([(0, 1)])
        with pytest.raises(ConfigurationError):
            StreamingRecommender(graph, {0: (0, 0), 1: (1, 1)}, [])

    def test_rejects_missing_checkins(self):
        graph = SocialGraph.from_edges([(0, 1)])
        with pytest.raises(ConfigurationError):
            StreamingRecommender(graph, {0: (0, 0)}, [Event("e", (0, 0))])


class TestCheckins:
    def test_checkin_moves_recommendation(self, recommender):
        recommender.observe_checkin(0, (9.2, 9.1))
        stats = recommender.tick()
        assert stats.checkins_ingested == 1
        assert recommender.recommendations()[0] == "east"
        assert is_nash_equilibrium(
            recommender.engine.instance, recommender.engine.assignment
        )

    def test_unknown_user_rejected(self, recommender):
        with pytest.raises(ConfigurationError):
            recommender.observe_checkin(99, (0.0, 0.0))

    def test_noop_epoch(self, recommender):
        stats = recommender.tick()
        assert stats.checkins_ingested == 0
        assert stats.deviations == 0
        assert stats.users_reassigned == 0

    def test_friendship_event(self, recommender):
        recommender.observe_friendship(0, 2, weight=50.0)
        recommender.tick()
        recs = recommender.recommendations()
        assert recs[0] == recs[2]  # the heavy edge forces co-location


class TestSimulation:
    def test_stream_over_synthetic_dataset(self):
        data = gowalla_like(num_users=250, num_events=8, seed=61)
        recommender = StreamingRecommender(
            data.graph, data.checkins, data.events, seed=0
        )
        history = simulate_stream(
            recommender, epochs=4, checkins_per_epoch=10, seed=1
        )
        assert len(history) == 4
        assert [s.epoch for s in history] == [1, 2, 3, 4]
        assert all(s.checkins_ingested == 10 for s in history)
        # Every epoch ends at an equilibrium of the current instance.
        assert is_nash_equilibrium(
            recommender.engine.instance, recommender.engine.assignment
        )
        # History accumulates on the recommender too.
        assert recommender.history == history

    def test_rejects_bad_parameters(self, recommender):
        with pytest.raises(ConfigurationError):
            simulate_stream(recommender, epochs=0, checkins_per_epoch=1)
        with pytest.raises(ConfigurationError):
            simulate_stream(recommender, epochs=1, checkins_per_epoch=-1)
