"""Unit tests for spatial primitives and the grid index."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    GridIndex,
    Rectangle,
    distance_matrix,
    euclidean,
    haversine_km,
)
from repro.errors import ConfigurationError


class TestDistances:
    def test_euclidean(self):
        assert euclidean((0, 0), (3, 4)) == pytest.approx(5.0)
        assert euclidean((1, 1), (1, 1)) == 0.0

    def test_haversine_equator_degree(self):
        # One degree of longitude at the equator is ~111.2 km.
        assert haversine_km((0, 0), (0, 1)) == pytest.approx(111.2, rel=0.01)

    def test_haversine_symmetry(self):
        a, b = (40.7, -74.0), (34.05, -118.24)  # NYC <-> LA
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))
        assert haversine_km(a, b) == pytest.approx(3936, rel=0.02)

    def test_distance_matrix_euclidean(self):
        users = [(0.0, 0.0), (1.0, 0.0)]
        events = [(0.0, 0.0), (0.0, 2.0)]
        matrix = distance_matrix(users, events)
        np.testing.assert_allclose(
            matrix, [[0.0, 2.0], [1.0, math.sqrt(5.0)]]
        )

    def test_distance_matrix_haversine(self):
        matrix = distance_matrix([(0, 0)], [(0, 1)], metric="haversine")
        assert matrix[0, 0] == pytest.approx(111.2, rel=0.01)

    def test_distance_matrix_empty(self):
        assert distance_matrix([], [(0, 0)]).shape == (0, 1)
        assert distance_matrix([(0, 0)], []).shape == (1, 0)

    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError):
            distance_matrix([(0, 0)], [(1, 1)], metric="manhattan")


class TestRectangle:
    def test_contains(self):
        rect = Rectangle(0, 0, 2, 3)
        assert rect.contains((1, 1))
        assert rect.contains((0, 0))  # border included
        assert rect.contains((2, 3))
        assert not rect.contains((2.1, 1))
        assert not rect.contains((1, -0.1))

    def test_extent(self):
        rect = Rectangle(-1, -2, 3, 4)
        assert rect.width == 4
        assert rect.height == 6

    def test_rejects_negative_extent(self):
        with pytest.raises(ConfigurationError):
            Rectangle(1, 0, 0, 1)


class TestGridIndex:
    def test_rejects_bad_cell(self):
        with pytest.raises(ConfigurationError):
            GridIndex({}, 0.0)

    def test_range_query_matches_brute_force(self):
        rng = random.Random(0)
        points = {i: (rng.uniform(0, 10), rng.uniform(0, 10)) for i in range(200)}
        index = GridIndex(points, cell_size=1.3)
        rect = Rectangle(2.0, 3.0, 6.5, 7.25)
        expected = {pid for pid, p in points.items() if rect.contains(p)}
        assert set(index.range_query(rect)) == expected

    def test_nearest_matches_brute_force(self):
        rng = random.Random(1)
        points = {i: (rng.uniform(0, 5), rng.uniform(0, 5)) for i in range(100)}
        index = GridIndex(points, cell_size=0.8)
        for _ in range(10):
            query = (rng.uniform(0, 5), rng.uniform(0, 5))
            found = index.nearest(query, count=3)
            brute = sorted(points, key=lambda pid: euclidean(query, points[pid]))
            found_d = [euclidean(query, points[p]) for p in found]
            brute_d = [euclidean(query, points[p]) for p in brute[:3]]
            assert found_d == pytest.approx(brute_d)

    def test_nearest_count_clamped(self):
        index = GridIndex({0: (0, 0), 1: (1, 1)}, cell_size=1.0)
        assert len(index.nearest((0, 0), count=10)) == 2

    def test_nearest_empty_index(self):
        assert GridIndex({}, 1.0).nearest((0, 0)) == []

    def test_nearest_rejects_bad_count(self):
        index = GridIndex({0: (0, 0)}, 1.0)
        with pytest.raises(ConfigurationError):
            index.nearest((0, 0), count=0)

    def test_location_lookup(self):
        index = GridIndex({7: (1.5, 2.5)}, 1.0)
        assert index.location(7) == (1.5, 2.5)
        assert len(index) == 1


@settings(max_examples=30, deadline=None)
@given(
    points=st.lists(
        st.tuples(st.floats(-50, 50), st.floats(-50, 50)), min_size=1, max_size=60
    ),
    query=st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
)
def test_property_grid_nearest_is_exact(points, query):
    """Grid 1-NN always equals the brute-force nearest distance."""
    table = {i: p for i, p in enumerate(points)}
    index = GridIndex(table, cell_size=7.0)
    found = index.nearest(query, count=1)[0]
    best = min(euclidean(query, p) for p in points)
    assert euclidean(query, table[found]) == pytest.approx(best)
