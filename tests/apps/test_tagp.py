"""Unit tests for the TAGP application."""

import pytest

from repro.apps import (
    Advertisement,
    DiscussionThread,
    TAGPTask,
    co_participation_graph,
    user_documents,
)
from repro.errors import ConfigurationError

THREADS = [
    DiscussionThread(0, "bike trail ride gear", [1, 2, 3]),
    DiscussionThread(1, "bike race wheel carbon", [1, 2]),
    DiscussionThread(2, "oven pasta recipe sauce", [4, 5]),
    DiscussionThread(3, "kitchen oven bake bread", [4, 5, 3]),
]

ADS = [
    Advertisement("bike-ad", "carbon bike wheel gear sale"),
    Advertisement("cook-ad", "oven kitchen pasta recipe deals"),
]


class TestCoParticipationGraph:
    def test_weights_count_common_threads(self):
        graph = co_participation_graph(THREADS)
        assert graph.weight(1, 2) == 2.0  # threads 0 and 1
        assert graph.weight(4, 5) == 2.0  # threads 2 and 3
        assert graph.weight(1, 3) == 1.0

    def test_duplicate_participants_counted_once(self):
        graph = co_participation_graph(
            [DiscussionThread(0, "x", [1, 1, 2])]
        )
        assert graph.weight(1, 2) == 1.0

    def test_solo_thread_adds_node(self):
        graph = co_participation_graph([DiscussionThread(0, "x", [9])])
        assert 9 in graph
        assert graph.degree(9) == 0


class TestUserDocuments:
    def test_concatenates_texts(self):
        docs = user_documents(THREADS)
        assert "bike" in docs[1]
        assert "oven" in docs[4]
        # User 3 participated in a bike and a cooking thread.
        assert "bike" in docs[3] and "oven" in docs[3]


class TestTask:
    def test_rejects_empty_threads(self):
        with pytest.raises(ConfigurationError):
            TAGPTask([])

    def test_cost_matrix_shape_and_range(self):
        task = TAGPTask(THREADS)
        matrix = task.cost_matrix(ADS)
        assert matrix.shape == (task.graph.num_nodes, 2)
        assert (matrix >= 0).all() and (matrix <= 1).all()

    def test_cost_matrix_rejects_empty_ads(self):
        task = TAGPTask(THREADS)
        with pytest.raises(ConfigurationError):
            task.cost_matrix([])

    def test_topical_users_prefer_matching_ads(self):
        task = TAGPTask(THREADS)
        matrix = task.cost_matrix(ADS)
        users = task.graph.nodes()
        bike_user = users.index(1)
        cook_user = users.index(4)
        assert matrix[bike_user, 0] < matrix[bike_user, 1]
        assert matrix[cook_user, 1] < matrix[cook_user, 0]

    def test_placement_end_to_end(self):
        task = TAGPTask(THREADS)
        placement, partition = task.place_advertisements(
            ADS, method="baseline", init="closest", order="given",
            normalize_method=None,
        )
        assert partition.converged
        assert placement[1].ad_id == "bike-ad"
        assert placement[4].ad_id == "cook-ad"

    def test_rejects_duplicate_ad_ids(self):
        task = TAGPTask(THREADS)
        with pytest.raises(ConfigurationError):
            task.build_game([ADS[0], ADS[0]])

    def test_normalized_placement_runs(self):
        task = TAGPTask(THREADS)
        placement, partition = task.place_advertisements(
            ADS, method="all", normalize_method="pessimistic", seed=0
        )
        assert set(placement) == set(task.graph.nodes())
        assert partition.converged
