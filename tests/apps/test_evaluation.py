"""Unit tests for recommendation-quality metrics."""

import numpy as np
import pytest

from repro.apps.evaluation import (
    attendance_gini,
    distance_percentiles,
    satisfaction_report,
    user_satisfaction,
)
from repro.core import RMGPInstance, solve_baseline
from repro.errors import ConfigurationError
from repro.graph import SocialGraph

from tests.core.conftest import random_instance


@pytest.fixture
def pair_instance():
    graph = SocialGraph.from_edges([(0, 1, 1.0)])
    cost = np.array([[0.0, 2.0], [2.0, 0.0]])
    return RMGPInstance(graph, ["a", "b"], cost, alpha=0.5)


class TestUserSatisfaction:
    def test_at_cheapest_class(self, pair_instance):
        scores = user_satisfaction(pair_instance, np.array([0, 1]))
        assert scores[0].assignment_cost == 0.0
        assert scores[0].detour_ratio == 1.0
        assert scores[0].social_fraction == 0.0  # friend elsewhere

    def test_detour(self, pair_instance):
        scores = user_satisfaction(pair_instance, np.array([1, 1]))
        assert scores[0].assignment_cost == 2.0
        assert scores[0].detour_ratio == float("inf")  # cheapest was free
        assert scores[0].social_fraction == 1.0

    def test_no_friends_full_social(self):
        graph = SocialGraph(nodes=[0])
        instance = RMGPInstance(graph, ["a"], np.array([[1.0]]))
        scores = user_satisfaction(instance, np.array([0]))
        assert scores[0].social_fraction == 1.0
        assert scores[0].friends_total == 0


class TestGini:
    def test_even_is_zero(self):
        assignment = np.array([0, 0, 1, 1, 2, 2])
        assert attendance_gini(assignment, 3) == pytest.approx(0.0, abs=1e-12)

    def test_all_in_one_class(self):
        assignment = np.zeros(10, dtype=np.int64)
        value = attendance_gini(assignment, 5)
        assert value == pytest.approx(1.0 - 1.0 / 5.0)

    def test_monotone_in_skew(self):
        even = attendance_gini(np.array([0, 0, 1, 1]), 2)
        skew = attendance_gini(np.array([0, 0, 0, 1]), 2)
        assert skew > even

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            attendance_gini(np.array([0]), 0)


class TestPercentiles:
    def test_values(self, pair_instance):
        result = distance_percentiles(
            pair_instance, np.array([0, 0]), percentiles=(0, 100)
        )
        assert result[0] == 0.0
        assert result[100] == 2.0


class TestReport:
    def test_equilibrium_report_consistency(self):
        instance = random_instance(seed=0)
        result = solve_baseline(instance, seed=0)
        report = satisfaction_report(instance, result.assignment)
        assert report.mean_detour_ratio >= 1.0
        assert 0 <= report.users_at_cheapest <= instance.n
        assert 0.0 <= report.mean_social_fraction <= 1.0
        assert 0.0 <= report.attendance_gini <= 1.0
        assert "detour" in str(report)

    def test_closest_init_everyone_at_cheapest(self):
        instance = random_instance(edge_probability=0.0, seed=2)
        result = solve_baseline(instance, init="closest", order="given")
        report = satisfaction_report(instance, result.assignment)
        assert report.users_at_cheapest == instance.n
        assert report.mean_detour_ratio == pytest.approx(1.0)
        assert report.isolated_users == instance.n
