"""Unit tests for the LAGP application."""

import pytest

from repro.apps import Event, LAGPTask, Rectangle
from repro.errors import ConfigurationError
from repro.graph import SocialGraph


@pytest.fixture
def task() -> LAGPTask:
    graph = SocialGraph.from_edges(
        [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)]
    )
    checkins = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (9.0, 9.0), 3: (10.0, 9.0)}
    events = [
        Event("west", (0.5, 0.0)),
        Event("east", (9.5, 9.0)),
    ]
    return LAGPTask(graph, checkins, events)


class TestConstruction:
    def test_rejects_missing_checkins(self):
        graph = SocialGraph.from_edges([(0, 1)])
        with pytest.raises(ConfigurationError):
            LAGPTask(graph, {0: (0, 0)}, [Event("e", (0, 0))])

    def test_rejects_empty_events(self):
        graph = SocialGraph.from_edges([(0, 1)])
        with pytest.raises(ConfigurationError):
            LAGPTask(graph, {0: (0, 0), 1: (1, 1)}, [])

    def test_rejects_duplicate_event_ids(self):
        graph = SocialGraph.from_edges([(0, 1)])
        with pytest.raises(ConfigurationError):
            LAGPTask(
                graph,
                {0: (0, 0), 1: (1, 1)},
                [Event("e", (0, 0)), Event("e", (1, 1))],
            )


class TestQueries:
    def test_full_query_recommends_nearby_events(self, task):
        result = task.query(alpha=0.5, method="baseline", init="closest",
                            order="given", normalize_method=None)
        assert result.recommendation[0].event_id == "west"
        assert result.recommendation[1].event_id == "west"
        assert result.recommendation[2].event_id == "east"
        assert result.recommendation[3].event_id == "east"

    def test_attendees_grouping(self, task):
        result = task.query(method="baseline", init="closest", order="given",
                            normalize_method=None)
        attendees = result.attendees()
        assert sorted(attendees["west"]) == [0, 1]
        assert sorted(attendees["east"]) == [2, 3]

    def test_area_of_interest(self, task):
        area = Rectangle(-1.0, -1.0, 2.0, 1.0)
        result = task.query(area=area, method="baseline", normalize_method=None)
        assert sorted(result.participants) == [0, 1]
        assert set(result.recommendation) == {0, 1}

    def test_empty_area_rejected(self, task):
        area = Rectangle(100.0, 100.0, 101.0, 101.0)
        with pytest.raises(ConfigurationError):
            task.query(area=area)

    def test_event_subset(self, task):
        only_west = [task.events[0]]
        result = task.query(events=only_west, method="baseline",
                            normalize_method=None)
        assert all(e.event_id == "west" for e in result.recommendation.values())

    def test_empty_event_subset_rejected(self, task):
        with pytest.raises(ConfigurationError):
            task.query(events=[])

    def test_check_in_moves_user(self, task):
        task.check_in(0, (9.0, 8.5))
        result = task.query(method="baseline", init="closest", order="given",
                            normalize_method=None)
        assert result.recommendation[0].event_id == "east"

    def test_check_in_unknown_user(self, task):
        with pytest.raises(ConfigurationError):
            task.check_in(99, (0, 0))

    def test_warm_start_round_trip(self, task):
        first = task.query(method="all", seed=0, normalize_method=None)
        second = task.query(
            method="all",
            seed=0,
            normalize_method=None,
            warm_start=first.partition.assignment,
        )
        assert second.partition.total_deviations == 0

    def test_build_game_without_solving(self, task):
        game, participants, events = task.build_game(alpha=0.3)
        assert game.alpha == 0.3
        assert len(participants) == 4
        assert len(events) == 2


class TestEventStr:
    def test_event_str(self):
        event = Event("e1", (1.0, 2.0), name="concert")
        assert "concert" in str(event)
