"""Unit tests for multi-criteria assignment costs."""

import numpy as np
import pytest

from repro.apps import (
    Criterion,
    combine_criteria,
    criterion_breakdown,
    min_max_rescaled,
)
from repro.core import MatrixCost, RMGPInstance, solve_baseline
from repro.errors import ConfigurationError
from repro.graph import SocialGraph


class TestRescale:
    def test_maps_to_unit_interval(self):
        matrix = np.array([[10.0, 20.0], [30.0, 40.0]])
        scaled = min_max_rescaled(matrix)
        assert scaled.min() == 0.0
        assert scaled.max() == 1.0
        np.testing.assert_allclose(
            scaled, [[0.0, 1.0 / 3.0], [2.0 / 3.0, 1.0]]
        )

    def test_constant_matrix_becomes_zero(self):
        np.testing.assert_allclose(
            min_max_rescaled(np.full((2, 2), 7.0)), np.zeros((2, 2))
        )


class TestCombine:
    def test_weighted_sum_of_rescaled(self):
        distance = np.array([[0.0, 100.0]])
        preference = np.array([[1.0, 0.0]])
        combined = combine_criteria(
            [
                Criterion("distance", distance, weight=1.0),
                Criterion("preference", preference, weight=1.0),
            ]
        )
        np.testing.assert_allclose(combined.row(0), [1.0, 1.0])

    def test_without_rescale(self):
        distance = np.array([[0.0, 100.0]])
        combined = combine_criteria(
            [Criterion("distance", distance)], rescale=False
        )
        np.testing.assert_allclose(combined.row(0), [0.0, 100.0])

    def test_provider_criteria_used_as_is(self):
        provider = MatrixCost(np.array([[1.0, 2.0]]))
        combined = combine_criteria([Criterion("p", provider)], rescale=True)
        np.testing.assert_allclose(combined.row(0), [1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            combine_criteria([])

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ConfigurationError):
            combine_criteria([Criterion("d", np.ones((1, 2)), weight=0.0)])

    def test_rejects_negative_weight(self):
        with pytest.raises(ConfigurationError):
            Criterion("d", np.ones((1, 2)), weight=-1.0)


class TestBreakdown:
    def test_per_criterion_totals(self):
        distance = np.array([[0.0, 4.0], [4.0, 0.0]])
        preference = np.array([[1.0, 0.0], [0.0, 1.0]])
        criteria = [
            Criterion("distance", distance, weight=2.0),
            Criterion("preference", preference, weight=1.0),
        ]
        assignment = np.array([0, 1])
        breakdown = criterion_breakdown(criteria, assignment, rescale=False)
        assert breakdown["distance"] == pytest.approx(0.0)
        assert breakdown["preference"] == pytest.approx(2.0)

    def test_rescaled_breakdown_matches_combined_objective(self):
        rng = np.random.default_rng(0)
        distance = rng.uniform(0, 500, (6, 3))
        preference = rng.uniform(0, 1, (6, 3))
        criteria = [
            Criterion("distance", distance, weight=0.7),
            Criterion("preference", preference, weight=0.3),
        ]
        combined = combine_criteria(criteria)
        assignment = rng.integers(0, 3, 6)
        total = sum(
            combined.cost(v, int(assignment[v])) for v in range(6)
        )
        breakdown = criterion_breakdown(criteria, assignment)
        assert sum(breakdown.values()) == pytest.approx(total)


class TestGameIntegration:
    def test_multicriteria_game_solves(self):
        graph = SocialGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        distance = np.array([[0.0, 9.0], [5.0, 5.0], [9.0, 0.0]])
        preference = np.array([[0.1, 0.9], [0.5, 0.5], [0.9, 0.1]])
        cost = combine_criteria(
            [Criterion("d", distance), Criterion("p", preference)]
        )
        instance = RMGPInstance(graph, ["a", "b"], cost, alpha=0.5)
        result = solve_baseline(instance, init="closest", order="given")
        assert result.converged
