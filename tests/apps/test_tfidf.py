"""Unit tests for the tf-idf pipeline."""

import pytest

from repro.apps import (
    cosine_dissimilarity,
    cosine_similarity,
    fit_tfidf,
    term_frequencies,
    tokenize,
)
from repro.errors import ConfigurationError


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello, World! 123") == ["hello", "world", "123"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("!!! ...") == []


class TestTermFrequencies:
    def test_relative_frequencies(self):
        tf = term_frequencies(["a", "b", "a", "a"])
        assert tf == {"a": 0.75, "b": 0.25}

    def test_empty(self):
        assert term_frequencies([]) == {}


class TestFit:
    def test_rare_terms_weighted_higher(self):
        model = fit_tfidf(["cat dog", "cat bird", "cat fish"])
        assert model.idf["cat"] < model.idf["dog"]

    def test_num_documents(self):
        model = fit_tfidf(["a", "b"])
        assert model.num_documents == 2

    def test_rejects_empty_corpus(self):
        with pytest.raises(ConfigurationError):
            fit_tfidf([])

    def test_transform_drops_oov(self):
        model = fit_tfidf(["cat dog"])
        vector = model.transform("cat spaceship")
        assert "cat" in vector
        assert "spaceship" not in vector

    def test_transform_empty_text(self):
        model = fit_tfidf(["cat dog"])
        assert model.transform("") == {}


class TestCosine:
    def test_identical_vectors(self):
        v = {"a": 1.0, "b": 2.0}
        assert cosine_similarity(v, v) == pytest.approx(1.0)
        assert cosine_dissimilarity(v, v) == pytest.approx(0.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0
        assert cosine_dissimilarity({"a": 1.0}, {"b": 1.0}) == 1.0

    def test_empty_vector(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0

    def test_symmetry(self):
        a = {"x": 1.0, "y": 3.0}
        b = {"y": 2.0, "z": 1.0}
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(b, a))

    def test_range(self):
        a = {"x": 2.0, "y": 1.0}
        b = {"x": 1.0, "z": 5.0}
        value = cosine_similarity(a, b)
        assert 0.0 <= value <= 1.0

    def test_end_to_end_similarity_ranking(self):
        model = fit_tfidf([
            "bike ride trail mountain",
            "oven recipe pasta kitchen",
            "bike race wheel",
        ])
        cyclist = model.transform("bike trail ride")
        cook = model.transform("pasta oven recipe")
        bike_ad = model.transform("new bike wheel sale")
        assert cosine_similarity(cyclist, bike_ad) > cosine_similarity(
            cook, bike_ad
        )
