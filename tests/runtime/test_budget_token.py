"""Unit tests for the real-time primitives: tokens, clocks, budgets."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.runtime import (
    CancelToken,
    CountdownToken,
    RuntimeBudget,
    SteppingClock,
)


class TestCancelToken:
    def test_starts_live(self):
        token = CancelToken()
        assert not token.cancelled

    def test_cancel_is_sticky(self):
        token = CancelToken()
        token.cancel()
        assert token.cancelled
        token.cancel()  # idempotent
        assert token.cancelled


class TestCountdownToken:
    def test_fires_after_exact_poll_count(self):
        token = CountdownToken(3)
        observed = [token.cancelled for _ in range(5)]
        assert observed == [False, False, False, True, True]

    def test_zero_polls_fires_immediately(self):
        assert CountdownToken(0).cancelled

    def test_negative_polls_rejected(self):
        with pytest.raises(ConfigurationError):
            CountdownToken(-1)


class TestSteppingClock:
    def test_advances_one_step_per_read(self):
        clock = SteppingClock(start=10.0, step=2.5)
        assert [clock() for _ in range(3)] == [10.0, 12.5, 15.0]

    def test_default_unit_step(self):
        clock = SteppingClock()
        assert [clock() for _ in range(3)] == [0.0, 1.0, 2.0]


class TestRuntimeBudget:
    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ConfigurationError):
            RuntimeBudget(deadline_seconds=0.0)
        with pytest.raises(ConfigurationError):
            RuntimeBudget(round_budget_seconds=-1.0)

    def test_deadline_on_manual_clock(self):
        budget = RuntimeBudget(deadline_seconds=2.5, clock=SteppingClock())
        budget.start()  # t=0
        assert budget.check(1) is None  # t=1
        assert budget.check(2) is None  # t=2
        interrupt = budget.check(3)  # t=3 >= 2.5
        assert interrupt is not None
        assert interrupt.reason == "deadline"
        assert interrupt.round_index == 3
        assert interrupt.elapsed_seconds == 3.0

    def test_start_is_idempotent(self):
        budget = RuntimeBudget(deadline_seconds=5.0, clock=SteppingClock())
        budget.start()
        budget.start()  # must not re-read the clock as a new origin
        assert budget.check(1) is None

    def test_token_beats_deadline(self):
        token = CancelToken()
        token.cancel()
        budget = RuntimeBudget(
            deadline_seconds=0.5, token=token, clock=SteppingClock()
        )
        budget.start()
        interrupt = budget.check(1)
        assert interrupt is not None and interrupt.reason == "cancelled"

    def test_round_budget_trips_on_slow_round(self):
        # Steps of 3 simulated seconds per read: every round "takes" 3s.
        budget = RuntimeBudget(
            round_budget_seconds=2.0, clock=SteppingClock(step=3.0)
        )
        budget.start()
        interrupt = budget.check(1)
        assert interrupt is not None and interrupt.reason == "deadline"

    def test_round_budget_reserve_against_deadline(self):
        # 1s rounds, deadline 10, per-round reserve 5: while the reserve
        # still fits the remaining time another round may start, but once
        # elapsed + reserve crosses the deadline the budget refuses to
        # start a round it cannot finish.
        budget = RuntimeBudget(
            deadline_seconds=10.0,
            round_budget_seconds=5.0,
            clock=SteppingClock(),
        )
        budget.start()
        assert budget.check(1) is None  # elapsed 1: 1 + 5 <= 10
        for _ in range(4):
            budget.clock()  # burn simulated time
        interrupt = budget.check(2)  # elapsed 6: 6 + 5 > 10 -> refuse
        assert interrupt is not None and interrupt.reason == "deadline"
