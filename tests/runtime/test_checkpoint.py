"""Checkpoint serialization: byte-exact round trips and validation."""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.core.serialize import (
    CHECKPOINT_FORMAT_VERSION,
    load_checkpoint,
    save_checkpoint,
)
from repro.errors import DataError
from repro.runtime import SolveCheckpoint
from repro.runtime.checkpoint import (
    decode_array,
    decode_rng_state,
    encode_array,
    encode_rng_state,
)
from tests.core.conftest import random_instance


class TestArrayCodec:
    @pytest.mark.parametrize("dtype", [np.float64, np.int64, np.bool_])
    def test_round_trip_is_byte_exact(self, dtype):
        rng = np.random.RandomState(0)
        array = (rng.rand(7, 3) * 100).astype(dtype)
        decoded = decode_array(encode_array(array))
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        assert decoded.tobytes() == array.tobytes()

    def test_inf_survives_raw_encoding(self):
        array = np.array([1.5, np.inf, -np.inf], dtype=np.float64)
        decoded = decode_array(encode_array(array))
        assert decoded.tobytes() == array.tobytes()

    def test_json_round_trip(self):
        array = np.linspace(0, 1, 11)
        payload = json.loads(json.dumps(encode_array(array)))
        assert decode_array(payload).tobytes() == array.tobytes()

    def test_malformed_payload_raises_data_error(self):
        with pytest.raises(DataError):
            decode_array({"__ndarray__": True, "dtype": "float64",
                          "shape": [2], "data": "not base64!!!"})


class TestRngStateCodec:
    def test_round_trip_resumes_stream(self):
        rng = random.Random(42)
        rng.random()
        state = decode_rng_state(
            json.loads(json.dumps(encode_rng_state(rng.getstate())))
        )
        fork = random.Random()
        fork.setstate(state)
        assert [fork.random() for _ in range(5)] == [
            rng.random() for _ in range(5)
        ]


class TestSolveCheckpoint:
    def _checkpoint(self, instance):
        return SolveCheckpoint(
            solver="RMGP_gt",
            round_index=3,
            assignment=np.arange(instance.n, dtype=np.int64) % instance.k,
            frontier=np.zeros(instance.n, dtype=bool),
            rng_state=random.Random(7).getstate(),
            state={"table": np.ones((instance.n, instance.k)),
                   "sweep": [2, 0, 1]},
            fingerprint=SolveCheckpoint.fingerprint_of(instance),
        )

    def test_payload_round_trip(self):
        instance = random_instance()
        checkpoint = self._checkpoint(instance)
        payload = json.loads(json.dumps(checkpoint.to_payload()))
        restored = SolveCheckpoint.from_payload(payload)
        assert restored.solver == checkpoint.solver
        assert restored.round_index == checkpoint.round_index
        assert np.array_equal(restored.assignment, checkpoint.assignment)
        assert restored.rng_state == checkpoint.rng_state
        assert restored.state["table"].tobytes() == (
            checkpoint.state["table"].tobytes()
        )
        assert restored.state["sweep"] == [2, 0, 1]

    def test_validate_for_rejects_wrong_solver(self):
        instance = random_instance()
        with pytest.raises(DataError):
            self._checkpoint(instance).validate_for(instance, "RMGP_vec")

    def test_validate_for_rejects_other_instance(self):
        instance = random_instance()
        other = random_instance(num_players=25, seed=9)
        with pytest.raises(DataError):
            self._checkpoint(instance).validate_for(other, "RMGP_gt")

    def test_save_load_file(self, tmp_path):
        instance = random_instance()
        checkpoint = self._checkpoint(instance)
        path = tmp_path / "nested" / "solve.ckpt.json"
        save_checkpoint(checkpoint, str(path))
        with open(path, encoding="utf-8") as handle:
            raw = json.load(handle)
        assert raw["format_version"] == CHECKPOINT_FORMAT_VERSION
        restored = load_checkpoint(str(path))
        restored.validate_for(instance, "RMGP_gt")
        assert np.array_equal(restored.assignment, checkpoint.assignment)

    def test_load_rejects_future_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 999, "checkpoint": {}}))
        with pytest.raises(DataError):
            load_checkpoint(str(path))

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(DataError):
            load_checkpoint(str(path))
