"""Real-time conformance suite over every registry solver.

Pins the three guarantees of the execution layer (ISSUE 4):

* **Resumability** — interrupting a solve at round ``r`` and resuming
  from its checkpoint reproduces the uninterrupted trajectory
  byte-identically (same assignment, same round count) for every solver
  in the registry.
* **stop_reason semantics** — ``"converged"`` on a finished solve,
  ``"cancelled"`` on a token interrupt, ``"deadline"`` on budget expiry,
  ``"max_rounds"`` for the synchronous ablation's non-raising exhaustion.
* **Anytime degradation** — a deadline expiry on a manual clock (no
  wall-clock involved) returns a *valid* assignment whose potential is
  no worse than the initial one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SolveOptions, partition
from repro.core.objective import potential
from repro.obs import recording
from repro.runtime import (
    CancelToken,
    CountdownToken,
    RuntimeBudget,
    SteppingClock,
)
from tests.core.conftest import random_instance

#: registry name -> required solver kwargs (sync is damped so the
#: dynamics converge; cap/minpart need their constraint arguments).
SOLVER_CASES = {
    "b": {},
    "se": {},
    "is": {},
    "gt": {},
    "all": {},
    "vec": {},
    "mg": {},
    "sync": {"damping": 0.7},
    "cap": {"capacities": [12] * 4},
    "minpart": {"min_participants": 2},
}

#: solvers whose kernels accept a warm start (cap/minpart do not).
WARM_START_SOLVERS = [
    name for name in SOLVER_CASES if name not in ("cap", "minpart")
]

SEED = 3


def counter_total(recorder, name):
    return sum(m.value for m in recorder.metrics if m.name == name)


@pytest.mark.parametrize("name", sorted(SOLVER_CASES))
@pytest.mark.parametrize("interrupt_round", [0, 1, 2])
def test_interrupt_resume_byte_identical(tmp_path, name, interrupt_round):
    """Interrupt-at-round-r + resume == uninterrupted, byte for byte."""
    instance = random_instance()
    extra = SOLVER_CASES[name]
    reference = partition(instance, solver=name, seed=SEED, **extra)

    path = str(tmp_path / "solve.ckpt.json")
    token = CountdownToken(interrupt_round)
    partial = partition(
        instance, solver=name, seed=SEED, cancel_token=token,
        checkpoint_path=path, **extra,
    )
    if partial.converged:
        # The solve finished before the token fired (few round
        # boundaries on this small instance) — nothing to resume.
        assert np.array_equal(partial.assignment, reference.assignment)
        return
    assert partial.stop_reason == "cancelled"
    instance.validate_assignment(partial.assignment)
    resumed = partition(
        instance, solver=name, seed=SEED, resume_from=path, **extra,
    )
    assert np.array_equal(resumed.assignment, reference.assignment)
    assert resumed.num_rounds == reference.num_rounds
    assert resumed.converged == reference.converged
    assert resumed.stop_reason == reference.stop_reason


def test_minpart_multi_stage_interrupt_resume(tmp_path):
    """Resume across minpart's cancel-and-resolve stage boundaries."""
    instance = random_instance(num_players=40, num_classes=8, seed=1)
    kwargs = dict(min_participants=8, seed=4)
    reference = partition(instance, solver="minpart", **kwargs)
    assert reference.extra["canceled"], "config must cancel classes"

    for interrupt_round in (1, 4, 7):
        path = str(tmp_path / f"minpart{interrupt_round}.ckpt.json")
        token = CountdownToken(interrupt_round)
        partial = partition(
            instance, solver="minpart", cancel_token=token,
            checkpoint_path=path, **kwargs,
        )
        assert not partial.converged
        assert partial.stop_reason == "cancelled"
        resumed = partition(
            instance, solver="minpart", resume_from=path, **kwargs,
        )
        assert np.array_equal(resumed.assignment, reference.assignment)
        assert resumed.extra["canceled"] == reference.extra["canceled"]
        assert resumed.extra["rounds_total"] == reference.extra["rounds_total"]


@pytest.mark.parametrize("name", sorted(SOLVER_CASES))
def test_stop_reason_converged_without_budget(name):
    result = partition(
        instance := random_instance(), solver=name, seed=SEED,
        **SOLVER_CASES[name],
    )
    assert result.stop_reason == "converged"
    assert result.converged
    instance.validate_assignment(result.assignment)


@pytest.mark.parametrize("name", sorted(SOLVER_CASES))
def test_cancel_before_first_round(name):
    instance = random_instance()
    token = CancelToken()
    token.cancel()
    result = partition(
        instance, solver=name, seed=SEED, cancel_token=token,
        **SOLVER_CASES[name],
    )
    assert not result.converged
    assert result.stop_reason == "cancelled"
    instance.validate_assignment(result.assignment)


def test_sync_max_rounds_exhaustion_reports_stop_reason():
    instance = random_instance()
    result = partition(
        instance, solver="sync", seed=SEED, max_rounds=1, damping=0.7
    )
    assert not result.converged
    assert result.stop_reason == "max_rounds"


@pytest.mark.parametrize("name", WARM_START_SOLVERS)
def test_deadline_on_manual_clock_is_anytime(name):
    """Deadline expiry yields a valid assignment with Phi <= initial Phi.

    The SteppingClock makes every round boundary cost one simulated
    second, so a 1.5s deadline admits exactly one round — no wall clock
    involved, the test is fully deterministic.
    """
    instance = random_instance()
    warm = (np.arange(instance.n, dtype=np.int64) * 3) % instance.k
    initial_phi = potential(instance, warm)
    budget = RuntimeBudget(deadline_seconds=1.5, clock=SteppingClock())
    result = partition(
        instance, solver=name, seed=SEED, warm_start=warm.copy(),
        options=SolveOptions(budget=budget), **SOLVER_CASES[name],
    )
    instance.validate_assignment(result.assignment)
    if result.converged:
        assert result.stop_reason == "converged"
    else:
        assert result.stop_reason == "deadline"
    assert potential(instance, result.assignment) <= initial_phi + 1e-9


@pytest.mark.parametrize("name", ["cap", "minpart"])
def test_deadline_on_manual_clock_constrained_solvers(name):
    instance = random_instance()
    budget = RuntimeBudget(deadline_seconds=1.5, clock=SteppingClock())
    result = partition(
        instance, solver=name, seed=SEED,
        options=SolveOptions(budget=budget), **SOLVER_CASES[name],
    )
    instance.validate_assignment(result.assignment)
    assert result.stop_reason in ("converged", "deadline")
    assert result.converged == (result.stop_reason == "converged")


def test_periodic_checkpoints_written(tmp_path):
    from repro.core.serialize import load_checkpoint

    path = str(tmp_path / "periodic.ckpt.json")
    instance = random_instance()
    result = partition(
        instance, solver="gt", seed=SEED, checkpoint_every=1,
        checkpoint_path=path,
    )
    assert result.converged
    checkpoint = load_checkpoint(path)
    checkpoint.validate_for(instance, "RMGP_gt")
    assert checkpoint.round_index >= 1


def test_checkpoint_every_requires_path():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        partition(random_instance(), solver="gt", seed=SEED,
                  checkpoint_every=2)


def test_obs_counters_for_interrupt_and_checkpoint(tmp_path):
    path = str(tmp_path / "obs.ckpt.json")
    instance = random_instance()
    with recording() as recorder:
        partition(
            instance, solver="gt", seed=SEED,
            cancel_token=CountdownToken(1), checkpoint_path=path,
        )
    assert counter_total(recorder, "solver.cancellations") == 1
    assert counter_total(recorder, "solver.checkpoint_writes") >= 1

    with recording() as recorder:
        partition(instance, solver="gt", seed=SEED, resume_from=path)
    assert counter_total(recorder, "solver.checkpoint_restores") == 1

    budget = RuntimeBudget(deadline_seconds=1.5, clock=SteppingClock())
    with recording() as recorder:
        result = partition(
            instance, solver="b", seed=SEED,
            options=SolveOptions(budget=budget),
        )
    assert not result.converged
    assert counter_total(recorder, "solver.deadline_hits") == 1


def test_no_budget_solve_is_byte_identical_to_plain():
    """The runtime layer must be invisible when no knob is set."""
    instance = random_instance()
    plain = partition(instance, solver="gt", seed=SEED)
    again = partition(instance, solver="gt", seed=SEED)
    assert np.array_equal(plain.assignment, again.assignment)
    assert plain.stop_reason == again.stop_reason == "converged"


class TestWarmStartValidation:
    """Satellite: partition() validates warm starts before dispatch."""

    def test_wrong_shape(self):
        from repro.errors import ConfigurationError

        instance = random_instance()
        with pytest.raises(ConfigurationError, match="shape"):
            partition(instance, solver="gt",
                      warm_start=np.zeros(instance.n + 1, dtype=np.int64))

    def test_float_dtype_rejected(self):
        from repro.errors import ConfigurationError

        instance = random_instance()
        with pytest.raises(ConfigurationError, match="integer"):
            partition(instance, solver="gt",
                      warm_start=np.zeros(instance.n))

    def test_out_of_range_classes(self):
        from repro.errors import ConfigurationError

        instance = random_instance()
        bad = np.zeros(instance.n, dtype=np.int64)
        bad[-1] = instance.k
        with pytest.raises(ConfigurationError, match=r"\[0, "):
            partition(instance, solver="gt", warm_start=bad)
        bad[-1] = -1
        with pytest.raises(ConfigurationError, match=r"\[0, "):
            partition(instance, solver="gt", warm_start=bad)

    def test_valid_warm_start_accepted_via_options(self):
        instance = random_instance()
        warm = np.zeros(instance.n, dtype=np.int64)
        result = partition(instance, solver="gt", seed=SEED,
                           options=SolveOptions(warm_start=warm))
        assert result.converged
