"""Figure 12: the optimizations (se, is, gt, all) in the centralized game.

(a) running time vs k, (b) vs alpha, (c) per-round decomposition.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    gowalla_dataset,
    run_fig12_per_round,
    run_fig12_vs_alpha,
    run_fig12_vs_k,
)
from repro.bench.harness import full_scale
from repro.bench.workloads import instance_for
from repro.core import (
    solve_all,
    solve_baseline,
    solve_global_table,
    solve_independent_sets,
    solve_strategy_elimination,
)
from repro.core.normalization import normalize


@pytest.fixture(scope="module")
def fig12_instance():
    dataset = gowalla_dataset(seed=0)
    instance = instance_for(dataset, num_events=32, seed=0)
    normalized, _ = normalize(instance, "pessimistic")
    return normalized


def test_fig12_baseline_speed(benchmark, fig12_instance):
    result = benchmark(
        lambda: solve_baseline(fig12_instance, init="closest", order="degree", seed=0)
    )
    assert result.converged


def test_fig12_se_speed(benchmark, fig12_instance):
    result = benchmark(lambda: solve_strategy_elimination(fig12_instance, seed=0))
    assert result.converged


def test_fig12_is_speed(benchmark, fig12_instance):
    result = benchmark(lambda: solve_independent_sets(fig12_instance, seed=0))
    assert result.converged


def test_fig12_gt_speed(benchmark, fig12_instance):
    result = benchmark(lambda: solve_global_table(fig12_instance, seed=0))
    assert result.converged


def test_fig12_all_speed(benchmark, fig12_instance):
    result = benchmark(lambda: solve_all(fig12_instance, seed=0))
    assert result.converged


def test_fig12a_table(benchmark, emit):
    table = benchmark.pedantic(lambda: run_fig12_vs_k(seed=0), rounds=1, iterations=1)
    emit(table)
    # The paper's headline: gt is the best single optimization at every
    # k.  RMGP_all pays fixed round-0 overheads (coloring, valid regions,
    # pruned table) that only amortize once k/|V| grow, so it is asserted
    # at the sweep's largest k (and beats the baseline at every k at
    # paper scale — see benchmarks/results/full/).
    for row in table.rows:
        assert row["RMGP_gt_ms"] < row["RMGP_b+i+o_ms"], row
    if full_scale():
        largest = max(table.rows, key=lambda r: r["k"])
        assert largest["RMGP_all_ms"] < largest["RMGP_b+i+o_ms"], largest


def test_fig12b_table(benchmark, emit):
    table = benchmark.pedantic(
        lambda: run_fig12_vs_alpha(seed=0), rounds=1, iterations=1
    )
    emit(table)
    assert len(table.rows) >= 3


def test_fig12c_per_round(benchmark, emit):
    table = benchmark.pedantic(
        lambda: run_fig12_per_round(seed=0), rounds=1, iterations=1
    )
    emit(table)
    gt = [row.get("RMGP_gt_ms") for row in table.rows if row.get("RMGP_gt_ms")]
    # gt's per-round cost decays: the last best-response round is cheaper
    # than the first one (only unhappy users are examined).
    if len(gt) > 2:
        assert gt[-1] <= gt[1] * 1.5
