"""TAGP workload benchmark — the paper's Example 2 at benchmark scale.

The evaluation section only exercises LAGP; this suite confirms the
framework's claims transfer to the topic-aware instantiation: the game
converges in a handful of rounds, recovers topical communities, and
normalization (which here scales *up* the [0,1] dissimilarities against
integer co-participation weights — the reverse of LAGP, Section 3.3)
measurably improves topical fit.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Table, full_scale
from repro.datasets import forum_like


@pytest.fixture(scope="module")
def forum():
    num_users = 800 if full_scale() else 300
    return forum_like(num_users=num_users, threads_per_topic=40, seed=0)


@pytest.fixture(scope="module")
def task(forum):
    return forum.task()


def _topical_match(forum, placement) -> float:
    matched = sum(
        1
        for user, ad in placement.items()
        if ad.ad_id == f"ad-{forum.home_topic[user]}"
    )
    return matched / len(placement)


def test_tagp_solve_speed(benchmark, forum, task):
    ads = forum.default_advertisements()
    game = task.build_game(ads, alpha=0.5)

    def run():
        return game.solve(method="all", normalize_method="pessimistic", seed=0)

    result = benchmark(run)
    assert result.converged


def test_tagp_quality_table(benchmark, emit, forum, task):
    def run():
        table = Table(
            title="TAGP workload: topical fit and social cohesion",
            columns=[
                "configuration",
                "rounds",
                "topical_match",
                "friends_sharing_ad",
            ],
        )
        ads = forum.default_advertisements()
        for normalize_method in (None, "pessimistic"):
            placement, partition = task.place_advertisements(
                ads,
                method="all",
                normalize_method=normalize_method,
                seed=0,
            )
            same = sum(
                1
                for u, v, _ in task.graph.edges()
                if placement[u].ad_id == placement[v].ad_id
            )
            table.add_row(
                configuration=normalize_method or "raw",
                rounds=partition.num_rounds,
                topical_match=_topical_match(forum, placement),
                friends_sharing_ad=same / task.graph.num_edges,
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    rows = {r["configuration"]: r for r in table.rows}
    # Topic recovery: most users get their home-topic ad.
    assert rows["pessimistic"]["topical_match"] > 0.7
    # Normalization never hurts topical fit (it boosts the [0,1]
    # dissimilarities against heavy co-participation weights).
    assert (
        rows["pessimistic"]["topical_match"]
        >= rows["raw"]["topical_match"] - 0.02
    )
    # Word of mouth: friends overwhelmingly share an ad.
    assert rows["pessimistic"]["friends_sharing_ad"] > 0.7
    # Real-time behaviour carries over: a handful of rounds suffice.
    assert all(r["rounds"] <= 15 for r in table.rows)
