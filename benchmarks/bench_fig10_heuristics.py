"""Figure 10: RMGP_b vs RMGP_b+i vs RMGP_b+i+o across k (alpha = 0.5)."""

from __future__ import annotations

import pytest

from repro.bench import gowalla_dataset, run_fig10
from repro.bench.workloads import instance_for
from repro.core import solve_baseline
from repro.core.normalization import normalize


@pytest.fixture(scope="module")
def fig10_instance():
    dataset = gowalla_dataset(seed=0)
    instance = instance_for(dataset, num_events=32, seed=0)
    normalized, _ = normalize(instance, "pessimistic")
    return normalized


def test_fig10_b_speed(benchmark, fig10_instance):
    result = benchmark(
        lambda: solve_baseline(fig10_instance, init="random", order="random", seed=0)
    )
    assert result.converged


def test_fig10_b_i_speed(benchmark, fig10_instance):
    result = benchmark(
        lambda: solve_baseline(fig10_instance, init="closest", order="random", seed=0)
    )
    assert result.converged


def test_fig10_b_i_o_speed(benchmark, fig10_instance):
    result = benchmark(
        lambda: solve_baseline(fig10_instance, init="closest", order="degree", seed=0)
    )
    assert result.converged


def test_fig10_table(benchmark, emit):
    table = benchmark.pedantic(lambda: run_fig10(seed=0), rounds=1, iterations=1)
    emit(table)
    by_k = {}
    for row in table.rows:
        by_k.setdefault(row["k"], {})[row["variant"]] = row
    for k, variants in by_k.items():
        # Closest-event initialization needs fewer rounds than random.
        assert (
            variants["RMGP_b+i"]["rounds"] <= variants["RMGP_b"]["rounds"]
        ), (k, variants)
        # The +i variants reach at least as good solutions (total cost).
        total = lambda row: row["assignment_cost"] + row["social_cost"]
        assert total(variants["RMGP_b+i"]) <= total(variants["RMGP_b"]) * 1.15
