#!/usr/bin/env python3
"""Perf-regression harness for the core best-response solvers.

Measures end-to-end wall time, round counts and final assignments of the
four solver kernels (RMGP_b / RMGP_is / RMGP_gt / RMGP_vec) on
fixed-seed fig8-scale instances and compares them against the committed
numbers in ``benchmarks/BENCH_core.json``:

* ``--check``   exit non-zero when a solver got more than
                ``--max-slowdown`` times slower (calibration-normalized,
                see below) or its round count drifted;
* ``--update``  re-measure on this machine and rewrite the ``after``
                numbers (the ``baseline`` block — the pre-CSR seed —
                is never touched).

Wall-clock numbers are not portable across machines, so the harness also
times a fixed pure-numpy *calibration workload* and compares the ratio
``solver_ms / calibration_ms`` instead of raw milliseconds.  Round
counts and assignment hashes are deterministic (fixed seeds), so those
are compared exactly — a hash mismatch is reported as a warning by
default (cross-platform float differences can legitimately flip an
argmin tie) and as a failure under ``--strict``.

Every ``--check`` run is also appended to the bench-history store
(``benchmarks/history/<profile>.jsonl`` — commit SHA, calibration time,
normalized ratios; see :mod:`repro.bench.history`) and compared against
the accumulated history with a statistical gate: a key whose normalized
time exceeds mean + 3*stdev *and* 1.2x the historical mean is reported
(a warning by default, a failure under ``--history-check``).  Runs that
trip the gate are not appended, so a regression cannot drag the
baseline up; ``--no-history`` skips the store entirely.

Run via ``make bench-perf`` or directly::

    python benchmarks/bench_perf_regression.py --check --profile core
    python benchmarks/bench_perf_regression.py --update
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import history as bench_history  # noqa: E402
from repro.bench.workloads import instance_for, small_uml_dataset  # noqa: E402
from repro.core.baseline import _solve_baseline as solve_baseline  # noqa: E402
from repro.core.global_table import (  # noqa: E402
    _solve_global_table as solve_global_table,
)
from repro.core.independent_sets import (  # noqa: E402
    _solve_independent_sets as solve_independent_sets,
)
from repro.core.normalization import normalize  # noqa: E402
from repro.core.vectorized import _solve_vectorized as solve_vectorized  # noqa: E402

BENCH_FILE = REPO_ROOT / "benchmarks" / "BENCH_core.json"
SCHEMA = "bench-core/v1"

#: Fixed-seed fig8-scale instances (Forest-Fire Gowalla slices, 7 events,
#: pessimistic normalization — the Figure 8 recipe).
INSTANCES = {
    "fig8-tiny": {"num_users": 80, "num_events": 7, "seed": 0, "alpha": 0.5},
    "fig8-medium": {"num_users": 300, "num_events": 7, "seed": 0, "alpha": 0.5},
}

PROFILES = {
    "smoke": ["fig8-tiny"],
    "core": ["fig8-tiny", "fig8-medium"],
    # The parallel-backend acceptance profile: the shm keys on the
    # medium instance, against the same calibration normalization.  The
    # speedup-vs-workers *curve* lives in bench_parallel.py; this keeps
    # the shm path inside the statistical regression gate.
    "parallel": ["fig8-medium"],
}

SOLVERS = {
    "RMGP_vec": lambda inst: solve_vectorized(inst, init="closest", seed=0),
    "RMGP_gt": lambda inst: solve_global_table(
        inst, init="closest", order="given", seed=0
    ),
    "RMGP_b": lambda inst: solve_baseline(
        inst, init="closest", order="given", seed=0
    ),
    "RMGP_is": lambda inst: solve_independent_sets(
        inst, init="closest", order="given", seed=0
    ),
    "RMGP_b_rand": lambda inst: solve_baseline(
        inst, init="random", order="random", seed=0
    ),
    # Shared-memory worker-pool backend.  Assignments are byte-identical
    # to the serial keys, so the committed assignment_sha256 for the
    # _shm4 keys must match RMGP_vec / RMGP_is — drift here means the
    # merge order broke, not a platform-float wobble.
    "RMGP_vec_shm4": lambda inst: solve_vectorized(
        inst, init="closest", seed=0, backend="shm", workers=4
    ),
    "RMGP_is_shm4": lambda inst: solve_independent_sets(
        inst, init="closest", order="given", seed=0, backend="shm", workers=4
    ),
}


def build_instance(name: str):
    spec = INSTANCES[name]
    dataset = small_uml_dataset(
        num_users=spec["num_users"],
        num_events=spec["num_events"],
        seed=spec["seed"],
    )
    instance, _ = normalize(
        instance_for(dataset, alpha=spec["alpha"]), "pessimistic"
    )
    return instance


def calibration_ms(repeats: int) -> float:
    """Best-of-N wall time of a fixed numpy workload (machine speed probe).

    Gather + bincount + sort — the same primitive mix the solver kernels
    lean on, and empirically far more stable run-to-run than a
    BLAS-backed matmul probe.
    """
    rng = np.random.default_rng(0)
    values = rng.standard_normal(200_000)
    idx = rng.integers(0, 200_000, 200_000)
    best = float("inf")
    for _ in range(max(repeats, 3) + 1):  # +1: first lap doubles as warmup
        start = time.perf_counter()
        acc = values.copy()
        for _ in range(6):
            acc = np.sqrt(np.abs(acc[idx])) + 0.5
            np.bincount(idx % 512, weights=acc, minlength=512)
        acc.argsort(kind="stable")
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def measure(name: str, instance, repeats: int) -> dict:
    solve = SOLVERS[name]
    solve(instance)  # untimed warmup: numpy buffers, branch caches
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = solve(instance)
        best = min(best, time.perf_counter() - start)
    sha = hashlib.sha256(
        np.asarray(result.assignment, dtype=np.int64).tobytes()
    ).hexdigest()
    return {
        "wall_ms": best * 1e3,
        "rounds": result.num_rounds,
        "deviations": sum(r.deviations for r in result.rounds),
        "assignment_sha256": sha,
    }


def run_update(args) -> int:
    committed = (
        json.loads(BENCH_FILE.read_text()) if BENCH_FILE.exists() else {}
    )
    entries = committed.get("entries", {})
    cal = calibration_ms(args.repeats)
    for instance_name in PROFILES["core"]:
        instance = build_instance(instance_name)
        for solver in SOLVERS:
            key = f"{instance_name}/{solver}"
            measured = measure(solver, instance, args.repeats)
            entry = entries.setdefault(key, {})
            entry["after"] = measured
            print(
                f"{key:26s} {measured['wall_ms']:8.3f} ms  "
                f"rounds={measured['rounds']}"
            )
    payload = {
        "schema": SCHEMA,
        "description": (
            "Committed perf numbers for the core solver kernels; "
            "'baseline' is the pre-CSR/pre-frontier seed, 'after' is the "
            "current code.  Regenerate 'after' with "
            "`python benchmarks/bench_perf_regression.py --update`."
        ),
        "calibration_ms": cal,
        "instances": INSTANCES,
        "entries": entries,
    }
    # Preserve any existing baseline blocks and metadata notes.
    for extra in ("baseline_commit",):
        if extra in committed:
            payload[extra] = committed[extra]
    BENCH_FILE.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"\nwrote {BENCH_FILE} (calibration {cal:.3f} ms)")
    return 0


def run_check(args) -> int:
    if not BENCH_FILE.exists():
        print(f"error: {BENCH_FILE} missing — run with --update first")
        return 2
    committed = json.loads(BENCH_FILE.read_text())
    if committed.get("schema") != SCHEMA:
        print(f"error: unexpected schema {committed.get('schema')!r}")
        return 2
    committed_cal = float(committed["calibration_ms"])
    cal = calibration_ms(args.repeats)
    print(
        f"calibration: {cal:.3f} ms here vs {committed_cal:.3f} ms committed"
    )
    failures = []
    warnings = []
    run_results = {}
    for instance_name in PROFILES[args.profile]:
        instance = build_instance(instance_name)
        for solver in SOLVERS:
            key = f"{instance_name}/{solver}"
            entry = committed.get("entries", {}).get(key)
            if entry is None or "after" not in entry:
                warnings.append(f"{key}: no committed numbers — skipped")
                continue
            expected = entry["after"]
            measured = measure(solver, instance, args.repeats)
            run_results[key] = {
                "wall_ms": measured["wall_ms"],
                "rounds": measured["rounds"],
            }
            ratio_now = measured["wall_ms"] / cal
            ratio_committed = expected["wall_ms"] / committed_cal
            slowdown = ratio_now / ratio_committed
            status = "ok"
            if measured["rounds"] != expected["rounds"]:
                status = "ROUNDS DRIFT"
                failures.append(
                    f"{key}: rounds {measured['rounds']} != committed "
                    f"{expected['rounds']} (fixed seed — must be exact)"
                )
            if slowdown > args.max_slowdown:
                status = "SLOW"
                failures.append(
                    f"{key}: {slowdown:.2f}x slower than committed "
                    f"(normalized {ratio_now:.3f} vs {ratio_committed:.3f}, "
                    f"threshold {args.max_slowdown}x)"
                )
            if measured["assignment_sha256"] != expected["assignment_sha256"]:
                message = (
                    f"{key}: assignment hash drifted "
                    f"({measured['assignment_sha256'][:12]}… vs "
                    f"{expected['assignment_sha256'][:12]}…)"
                )
                if args.strict:
                    status = "HASH DRIFT"
                    failures.append(message)
                else:
                    warnings.append(message + " [warning: platform floats]")
            print(
                f"{key:26s} {measured['wall_ms']:8.3f} ms  "
                f"(committed {expected['wall_ms']:8.3f} ms, "
                f"norm slowdown {slowdown:4.2f}x)  {status}"
            )
    history_messages = []
    if not args.no_history:
        record = bench_history.make_record(
            args.profile, cal, run_results, repo_root=REPO_ROOT
        )
        past = bench_history.load_history(args.history_dir, args.profile)
        history_messages = bench_history.regression_messages(
            past, record, min_samples=args.min_history
        )
        sink = failures if args.history_check else warnings
        for message in history_messages:
            sink.append(f"history regression: {message}")
        if not history_messages:
            path = bench_history.append_run(
                args.history_dir, args.profile, record
            )
            print(f"history: appended run to {path}")
        else:
            print("history: run NOT appended (regression suspected)")
    for message in warnings:
        print(f"warning: {message}")
    if failures:
        print("\nPERF REGRESSION CHECK FAILED:")
        for message in failures:
            print(f"  - {message}")
        return 1
    print("\nperf regression check passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check", action="store_true", help="compare against BENCH_core.json"
    )
    mode.add_argument(
        "--update",
        action="store_true",
        help="re-measure and rewrite the 'after' numbers",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="core",
        help="instance set to run (smoke = tiny only, for CI)",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        help="calibration-normalized slowdown that fails the check",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat assignment-hash drift as a failure, not a warning",
    )
    parser.add_argument(
        "--history-dir",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "history",
        help="bench-history store location",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip the bench-history store entirely",
    )
    parser.add_argument(
        "--history-check",
        action="store_true",
        help="fail (not just warn) on a statistical history regression",
    )
    parser.add_argument(
        "--min-history",
        type=int,
        default=3,
        help="history samples needed before the statistical gate arms",
    )
    args = parser.parse_args(argv)
    return run_update(args) if args.update else run_check(args)


if __name__ == "__main__":
    raise SystemExit(main())
