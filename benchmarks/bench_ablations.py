"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper figures — these quantify the internal choices the paper
describes qualitatively: coloring algorithm (Section 4.2), player
ordering (Section 3.1), warm starts for repeated execution (Section 3.1),
sequential vs simultaneous updates (Section 4.2's warning), sharding
scheme and relayed-vs-peer coordination (Section 5).
"""

from __future__ import annotations

import random

import pytest

from repro.bench import gowalla_dataset
from repro.bench.harness import Table
from repro.bench.workloads import instance_for
from repro.core import (
    IncrementalRMGP,
    solve_baseline,
    solve_independent_sets,
    solve_simultaneous,
)
from repro.core.normalization import normalize
from repro.datasets import gowalla_like
from repro.distributed import (
    DGQuery,
    build_cluster,
    cross_shard_edges,
    hash_partition,
    locality_partition,
    range_partition,
)
from repro.graph import (
    dsatur_coloring,
    greedy_coloring,
    num_colors,
    welsh_powell_coloring,
)


@pytest.fixture(scope="module")
def instance():
    dataset = gowalla_dataset(seed=0)
    normalized, _ = normalize(
        instance_for(dataset, num_events=16, seed=0), "pessimistic"
    )
    return normalized


@pytest.fixture(scope="module")
def small_dataset():
    return gowalla_like(num_users=600, num_events=16, seed=51)


class TestColoringAblation:
    def test_coloring_choice(self, benchmark, emit, instance):
        """Fewer colors = fewer synchronization barriers for RMGP_is."""

        def run():
            table = Table(
                title="Ablation: coloring algorithm for RMGP_is",
                columns=["algorithm", "colors", "model_speedup_T8"],
            )
            for name, algorithm in (
                ("greedy", greedy_coloring),
                ("welsh_powell", welsh_powell_coloring),
                ("dsatur", dsatur_coloring),
            ):
                coloring = algorithm(instance.graph)
                result = solve_independent_sets(
                    instance, seed=0, coloring=coloring, threads=8
                )
                table.add_row(
                    algorithm=name,
                    colors=num_colors(coloring),
                    model_speedup_T8=result.extra["model_speedup"],
                )
            return table

        table = benchmark.pedantic(run, rounds=1, iterations=1)
        emit(table)
        colors = dict(zip(table.column("algorithm"), table.column("colors")))
        # The smarter orderings never use more colors than plain greedy
        # (allow one color of slack for tie-breaking noise).
        assert colors["dsatur"] <= colors["greedy"] + 1
        assert colors["welsh_powell"] <= colors["greedy"] + 1


class TestOrderingAblation:
    def test_player_ordering(self, benchmark, emit, instance):
        def run():
            table = Table(
                title="Ablation: player ordering (closest init)",
                columns=["order", "rounds", "ms", "objective"],
            )
            for order in ("random", "given", "degree"):
                result = solve_baseline(
                    instance, init="closest", order=order, seed=0
                )
                table.add_row(
                    order=order,
                    rounds=result.num_rounds,
                    ms=result.wall_seconds * 1e3,
                    objective=result.value.total,
                )
            return table

        table = benchmark.pedantic(run, rounds=1, iterations=1)
        emit(table)
        rounds = dict(zip(table.column("order"), table.column("rounds")))
        # Degree ordering should not need more rounds than random order
        # ("community leaders first" propagates changes fast).
        assert rounds["degree"] <= rounds["random"] + 1


class TestWarmStartAblation:
    def test_cold_vs_warm_vs_incremental(self, benchmark, emit, instance):
        """The repeated-execution scenario: cold solve vs warm-started
        solve vs the incremental engine after a 1% perturbation."""

        def run():
            table = Table(
                title="Ablation: repeated execution after a small update",
                columns=["strategy", "rounds", "deviations"],
            )
            cold = solve_baseline(instance, init="closest", order="degree", seed=0)
            table.add_row(
                strategy="cold", rounds=cold.num_rounds,
                deviations=cold.total_deviations,
            )
            warm = solve_baseline(
                instance, order="degree", seed=0, warm_start=cold.assignment
            )
            table.add_row(
                strategy="warm", rounds=warm.num_rounds,
                deviations=warm.total_deviations,
            )
            engine = IncrementalRMGP(instance, seed=0)
            rng = random.Random(0)
            import numpy as np

            noise = np.random.default_rng(0)
            for _ in range(max(1, instance.n // 100)):
                node = instance.node_ids[rng.randrange(instance.n)]
                # A genuine relocation: the user's distances to the events
                # are reshuffled (mild jitter alone rarely breaks an
                # equilibrium — they are robust to small perturbations).
                row = engine._matrix[instance.index_of[node]]
                engine.update_player_costs(node, noise.permutation(row))
            incremental = engine.resolve()
            table.add_row(
                strategy="incremental(1% moved)",
                rounds=incremental.num_rounds,
                deviations=incremental.total_deviations,
            )
            return table

        table = benchmark.pedantic(run, rounds=1, iterations=1)
        emit(table)
        rows = {r["strategy"]: r for r in table.rows}
        assert rows["warm"]["deviations"] == 0
        assert (
            rows["incremental(1% moved)"]["deviations"]
            <= rows["cold"]["deviations"]
        )


class TestSchedulingAblation:
    def test_round_robin_vs_max_gain(self, benchmark, emit, instance):
        """Best-improvement vs the paper's round-robin schedule."""
        from repro.core import solve_max_gain

        def run():
            table = Table(
                title="Ablation: round-robin vs max-gain scheduling",
                columns=["schedule", "moves", "ms", "objective"],
            )
            round_robin = solve_baseline(
                instance, init="closest", order="given"
            )
            table.add_row(
                schedule="round-robin",
                moves=round_robin.total_deviations,
                ms=round_robin.wall_seconds * 1e3,
                objective=round_robin.value.total,
            )
            max_gain = solve_max_gain(instance, init="closest")
            table.add_row(
                schedule="max-gain",
                moves=max_gain.extra["total_moves"],
                ms=max_gain.wall_seconds * 1e3,
                objective=max_gain.value.total,
            )
            return table

        table = benchmark.pedantic(run, rounds=1, iterations=1)
        emit(table)
        rows = {r["schedule"]: r for r in table.rows}
        # Same quality class; both are Nash equilibria of the same game.
        assert (
            rows["max-gain"]["objective"]
            <= 1.2 * rows["round-robin"]["objective"]
        )


class TestSimultaneousAblation:
    def test_sync_vs_sequential(self, benchmark, emit, instance):
        def run():
            table = Table(
                title="Ablation: sequential vs simultaneous best responses",
                columns=["dynamics", "converged", "rounds",
                         "potential_increases"],
            )
            sequential = solve_baseline(
                instance, init="closest", order="given", track_potential=True
            )
            table.add_row(
                dynamics="sequential",
                converged=sequential.converged,
                rounds=sequential.num_rounds,
                potential_increases=0,
            )
            for damping in (1.0, 0.5):
                sync = solve_simultaneous(
                    instance, init="closest", damping=damping, seed=0,
                    max_rounds=60,
                )
                table.add_row(
                    dynamics=f"simultaneous(d={damping})",
                    converged=sync.converged,
                    rounds=sync.num_rounds,
                    potential_increases=sync.extra["potential_increases"],
                )
            return table

        table = benchmark.pedantic(run, rounds=1, iterations=1)
        emit(table)
        rows = {r["dynamics"]: r for r in table.rows}
        assert rows["sequential"]["converged"]


class TestIncrementalScalingAblation:
    def test_epoch_cost_tracks_updates_not_graph_size(self, benchmark, emit):
        """The online claim, quantified: after a fixed number of check-in
        relocations, incremental re-convergence cost stays roughly flat
        while cold re-solve cost grows with the graph."""
        import time

        import numpy as np

        from repro.core import RMGPInstance, solve_all
        from repro.core.normalization import normalize

        def run():
            table = Table(
                title="Ablation: incremental vs cold re-solve across sizes",
                columns=["users", "cold_ms", "incremental_ms", "deviations"],
            )
            for num_users in (1000, 2000, 4000):
                dataset = gowalla_like(
                    num_users=num_users, num_events=16, seed=7
                )
                instance, _ = normalize(
                    RMGPInstance(
                        dataset.graph, dataset.event_ids,
                        dataset.cost_matrix(), 0.5,
                    ),
                    "pessimistic",
                )
                start = time.perf_counter()
                solve_all(instance, seed=0)
                cold_ms = (time.perf_counter() - start) * 1e3

                engine = IncrementalRMGP(instance, seed=0)
                noise = np.random.default_rng(0)
                rng = random.Random(0)
                for _ in range(20):
                    node = instance.node_ids[rng.randrange(instance.n)]
                    row = engine._matrix[instance.index_of[node]]
                    engine.update_player_costs(node, noise.permutation(row))
                start = time.perf_counter()
                result = engine.resolve()
                incremental_ms = (time.perf_counter() - start) * 1e3
                table.add_row(
                    users=num_users,
                    cold_ms=cold_ms,
                    incremental_ms=incremental_ms,
                    deviations=result.total_deviations,
                )
            return table

        table = benchmark.pedantic(run, rounds=1, iterations=1)
        emit(table)
        cold = table.column("cold_ms")
        incremental = table.column("incremental_ms")
        # Cold cost grows with n; incremental stays an order cheaper at
        # the largest size.
        assert cold[-1] > cold[0]
        assert incremental[-1] < cold[-1] / 5.0


class TestShardingAndProtocolAblation:
    def test_sharding_schemes(self, benchmark, emit, small_dataset):
        def run():
            table = Table(
                title="Ablation: sharding scheme for DG (2 slaves)",
                columns=["scheme", "cross_edges", "dg_bytes", "dg_rounds"],
            )
            graph = small_dataset.graph
            query = DGQuery(events=small_dataset.events, seed=0)
            schemes = {
                "hash": hash_partition(graph.nodes(), 2),
                "range": range_partition(graph.nodes(), 2),
                "locality": locality_partition(graph, 2, seed=0),
            }
            for name, shards in schemes.items():
                cluster = build_cluster(
                    small_dataset, shards=shards,
                    use_distributed_coloring=False,
                )
                result = cluster.game.run(query)
                table.add_row(
                    scheme=name,
                    cross_edges=cross_shard_edges(graph, shards),
                    dg_bytes=result.total_bytes,
                    dg_rounds=result.num_rounds,
                )
            return table

        table = benchmark.pedantic(run, rounds=1, iterations=1)
        emit(table)
        rows = {r["scheme"]: r for r in table.rows}
        assert rows["locality"]["cross_edges"] < rows["hash"]["cross_edges"]

    def test_relayed_vs_peer(self, benchmark, emit, small_dataset):
        def run():
            table = Table(
                title="Ablation: relayed vs peer-to-peer coordination",
                columns=["protocol", "bytes", "messages", "rounds"],
            )
            shards = hash_partition(small_dataset.graph.nodes(), 2)
            query = DGQuery(events=small_dataset.events, seed=0)
            for protocol in ("relayed", "peer"):
                cluster = build_cluster(
                    small_dataset, shards=shards, protocol=protocol,
                    use_distributed_coloring=False,
                )
                result = cluster.game.run(query)
                table.add_row(
                    protocol=protocol,
                    bytes=result.total_bytes,
                    messages=result.total_messages,
                    rounds=result.num_rounds,
                )
            return table

        table = benchmark.pedantic(run, rounds=1, iterations=1)
        emit(table)
        rows = {r["protocol"]: r for r in table.rows}
        assert rows["peer"]["bytes"] < rows["relayed"]["bytes"]
        assert rows["peer"]["rounds"] == rows["relayed"]["rounds"]
