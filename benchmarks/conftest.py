"""Shared helpers for the figure-reproduction benchmarks.

Each ``bench_fig*.py`` module regenerates one figure/table of the paper:
it benchmarks the headline operation with pytest-benchmark and emits the
full paper-style series both to stdout and to ``benchmarks/results/``.

Run quick (CI-sized) benchmarks:

    pytest benchmarks/ --benchmark-only

Run paper-scale workloads:

    REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def emit(request):
    """Print a results table and persist it under benchmarks/results/."""

    def _emit(table) -> None:
        text = table.render()
        print()
        print(text)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        module = request.node.module.__name__
        filename = os.path.join(RESULTS_DIR, f"{module}.txt")
        with open(filename, "a", encoding="utf-8") as handle:
            handle.write(text + "\n\n")
        # Machine-readable sibling for plotting pipelines.
        slug = "".join(
            ch if ch.isalnum() else "_" for ch in table.title.lower()
        )[:60]
        table.to_csv(os.path.join(RESULTS_DIR, "csv", f"{module}.{slug}.csv"))

    return _emit
