"""Figure 13: DG versus FaE on the Foursquare-like dataset."""

from __future__ import annotations

import pytest

from repro.bench import foursquare_dataset, run_fig13
from repro.datasets.registry import with_event_count
from repro.distributed import DGQuery, build_cluster, hash_partition, run_fae


@pytest.fixture(scope="module")
def fig13_setup():
    dataset = foursquare_dataset(seed=0)
    sliced = with_event_count(dataset, 64, seed=0)
    query = DGQuery(events=sliced.events, alpha=0.5, seed=0)
    shards = hash_partition(dataset.graph.nodes(), 2)
    return dataset, query, shards


def test_fig13_dg_speed(benchmark, fig13_setup):
    dataset, query, shards = fig13_setup
    def run():
        cluster = build_cluster(
            dataset, num_slaves=2, shards=shards, use_distributed_coloring=False
        )
        return cluster.game.run(query)
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.converged


def test_fig13_fae_speed(benchmark, fig13_setup):
    dataset, query, shards = fig13_setup
    result = benchmark.pedantic(
        lambda: run_fae(dataset.graph, dataset.checkins, shards, query, seed=0),
        rounds=1,
        iterations=1,
    )
    assert result.partition.converged


def test_fig13_table(benchmark, emit):
    table = benchmark.pedantic(lambda: run_fig13(seed=0), rounds=1, iterations=1)
    emit(table)
    transfers = table.column("fae_transfer_s")
    # FaE's bulk transfer is query-independent: identical across k.
    assert max(transfers) - min(transfers) < 1e-9
    # Execution grows with k (initialization distance computations).
    fae_exec = table.column("fae_execution_s")
    assert fae_exec[-1] > fae_exec[0]
    dg_total = table.column("dg_total_s")
    assert dg_total[-1] > dg_total[0]
