"""Figure 14: DG per-round processing time and data volume (k = 256)."""

from __future__ import annotations

import pytest

from repro.bench import run_fig14
from repro.bench.harness import full_scale

NUM_EVENTS = 256 if full_scale() else 64


def test_fig14_table(benchmark, emit):
    table = benchmark.pedantic(
        lambda: run_fig14(num_events=NUM_EVENTS, seed=0), rounds=1, iterations=1
    )
    emit(table)
    rows = table.rows
    assert rows, "no rounds recorded"
    # Round 0 moves the most data (full GSV broadcast).
    bytes_per_round = [row["bytes"] for row in rows]
    assert bytes_per_round[0] == max(bytes_per_round)
    # Deviations decay towards convergence; the final round has none.
    deviations = [row["deviations"] for row in rows]
    assert deviations[-1] == 0
    assert max(deviations[1:], default=0) == deviations[1] or len(deviations) <= 2
    # Data transferred diminishes along with the deviations.
    if len(bytes_per_round) > 3:
        assert bytes_per_round[-1] <= bytes_per_round[1]
