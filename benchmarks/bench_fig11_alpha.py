"""Figure 11: effect of alpha on the RMGP_b variants at k = 32."""

from __future__ import annotations

import pytest

from repro.bench import gowalla_dataset, run_fig11
from repro.bench.workloads import instance_for
from repro.core import solve_baseline
from repro.core.normalization import normalize


@pytest.fixture(scope="module", params=[0.1, 0.9], ids=["alpha=0.1", "alpha=0.9"])
def fig11_instance(request):
    dataset = gowalla_dataset(seed=0)
    instance = instance_for(dataset, num_events=32, alpha=request.param, seed=0)
    normalized, _ = normalize(instance, "pessimistic")
    return normalized


def test_fig11_b_i_o_speed(benchmark, fig11_instance):
    result = benchmark(
        lambda: solve_baseline(
            fig11_instance, init="closest", order="degree", seed=0
        )
    )
    assert result.converged


def test_fig11_table(benchmark, emit):
    table = benchmark.pedantic(lambda: run_fig11(seed=0), rounds=1, iterations=1)
    emit(table)
    rows = [r for r in table.rows if r["variant"] == "RMGP_b+i+o"]
    # The fundamental alpha trade-off (the direction behind Fig. 11(b)):
    # as alpha grows the *raw* assignment cost falls (users move toward
    # their closest events) and the raw social cut rises.  The exact
    # weighted-component shares of the paper's plot depend on dataset
    # geometry we only approximate — see EXPERIMENTS.md.
    low = min(rows, key=lambda r: r["alpha"])
    high = max(rows, key=lambda r: r["alpha"])
    raw_ac = lambda r: r["assignment_cost"] / r["alpha"]
    raw_sc = lambda r: r["social_cost"] / (1 - r["alpha"])
    assert raw_ac(high) < raw_ac(low)
    # The cut side of the trade-off is flatter (the homophilous graph
    # has a cut floor normalization keeps balanced at every alpha), so
    # only assert it does not *improve* materially as alpha de-weights it.
    assert raw_sc(high) > 0.8 * raw_sc(low)
    # Heuristic variants converge within the paper's 5-8 round ballpark.
    assert all(r["rounds"] <= 20 for r in rows)
