"""Figure 9: raw RMGP vs optimistic/pessimistic RMGP_N on Gowalla.

Checks the paper's headline findings: without normalization the
(distance) assignment cost dwarfs the social cost and few users move
away from their closest event; pessimistic normalization balances the
two components at alpha = 0.5 and re-assigns many more users.
"""

from __future__ import annotations

import pytest

from repro.bench import gowalla_dataset, run_fig9, run_fig9_cn_values
from repro.bench.workloads import instance_for
from repro.core import solve_baseline
from repro.core.normalization import normalize


@pytest.fixture(scope="module")
def normalized_instance():
    dataset = gowalla_dataset(seed=0)
    instance = instance_for(dataset, num_events=8, seed=0)
    normalized, _ = normalize(instance, "pessimistic")
    return normalized


def test_fig9_normalized_solve_speed(benchmark, normalized_instance):
    result = benchmark(
        lambda: solve_baseline(
            normalized_instance, init="closest", order="given", seed=0
        )
    )
    assert result.converged


def test_fig9_table(benchmark, emit):
    table = benchmark.pedantic(lambda: run_fig9(seed=0), rounds=1, iterations=1)
    emit(table)
    by_variant = {}
    for row in table.rows:
        by_variant.setdefault(row["variant"], []).append(row)
    # Raw: distance dominates for every k (the paper's Figure 9(a); the
    # margin shrinks with k as more nearby events appear, but dominance
    # never flips).
    for row in by_variant["raw"]:
        assert row["balance_ratio"] > 3.0, row
    # Pessimistic: components within a small factor of each other.
    for row in by_variant["pessimistic"]:
        assert 0.2 < row["balance_ratio"] < 5.0, row
    # Re-assignments: raw < optimistic and raw < pessimistic per k.
    for raw, opt, pess in zip(
        by_variant["raw"], by_variant["optimistic"], by_variant["pessimistic"]
    ):
        assert raw["users_moved"] <= opt["users_moved"], (raw, opt)
        assert raw["users_moved"] <= pess["users_moved"], (raw, pess)


def test_fig9_cn_annotations(benchmark, emit):
    table = benchmark.pedantic(
        lambda: run_fig9_cn_values(seed=0), rounds=1, iterations=1
    )
    emit(table)
    assert all(cn > 0 for cn in table.column("cn_optimistic"))
    assert all(cn > 0 for cn in table.column("cn_pessimistic"))
