#!/usr/bin/env python3
"""Speedup-vs-workers curve for the shared-memory backend.

Runs the vectorized solver on a fixed-seed fig8-scale instance serially
(pure backend) and with the shm worker pool at increasing pool sizes,
asserts every parallel assignment is **byte-identical** to the serial
one (exit 1 otherwise — that gate is unconditional), and appends one
record per run to ``benchmarks/history/parallel.jsonl`` so the curve is
queryable over time::

    python benchmarks/bench_parallel.py                 # measure + record
    python benchmarks/bench_parallel.py --check         # also gate on history
    make bench-parallel

Speedup numbers are machine truths, not universal ones: the pool cannot
beat the GIL-bound path on a single-core runner (the curve will show
slowdown there — honestly), and small instances are dominated by the
per-round IPC latency.  The byte-identity gate is what must hold
everywhere; the recorded curve is for watching trends on a fixed box.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_perf_regression import build_instance, calibration_ms  # noqa: E402
from repro.bench import history as bench_history  # noqa: E402
from repro.core.vectorized import _solve_vectorized as solve_vectorized  # noqa: E402

PROFILE = "parallel"


def _time_solve(instance, repeats: int, **kwargs):
    solve_vectorized(instance, init="closest", seed=0, **kwargs)  # warmup
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = solve_vectorized(instance, init="closest", seed=0, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best * 1e3, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--instance", default="fig8-medium",
        help="instance key from bench_perf_regression.INSTANCES",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        help="shm pool sizes to sweep (1 exercises the serial fallback)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on a statistical history regression (byte-identity "
             "always gates, with or without this flag)",
    )
    parser.add_argument(
        "--history-dir", type=Path,
        default=REPO_ROOT / "benchmarks" / "history",
    )
    parser.add_argument("--no-history", action="store_true")
    args = parser.parse_args(argv)

    instance = build_instance(args.instance)
    cal = calibration_ms(args.repeats)
    print(f"calibration: {cal:.3f} ms")

    serial_ms, serial = _time_solve(instance, args.repeats)
    print(
        f"{args.instance}/serial      {serial_ms:9.3f} ms  "
        f"rounds={serial.num_rounds}"
    )
    results = {
        f"{args.instance}/serial": {
            "wall_ms": serial_ms, "rounds": serial.num_rounds,
        }
    }
    failures = []
    for workers in args.workers:
        wall_ms, result = _time_solve(
            instance, args.repeats, backend="shm", workers=workers
        )
        identical = np.array_equal(result.assignment, serial.assignment)
        if not identical:
            failures.append(
                f"workers={workers}: assignment differs from serial "
                "(must be byte-identical)"
            )
        speedup = serial_ms / wall_ms if wall_ms > 0 else float("inf")
        effective = result.extra.get("backend_effective")
        print(
            f"{args.instance}/shm-w{workers:<2d}     {wall_ms:9.3f} ms  "
            f"rounds={result.num_rounds}  speedup={speedup:5.2f}x  "
            f"identical={identical}  effective={effective}"
        )
        results[f"{args.instance}/shm-w{workers}"] = {
            "wall_ms": wall_ms,
            "rounds": result.num_rounds,
            "speedup": speedup,
            "identical": identical,
        }

    if not args.no_history:
        record = bench_history.make_record(
            PROFILE, cal, results, repo_root=REPO_ROOT
        )
        past = bench_history.load_history(args.history_dir, PROFILE)
        messages = bench_history.regression_messages(past, record)
        if messages and args.check:
            failures.extend(f"history regression: {m}" for m in messages)
        elif messages:
            for message in messages:
                print(f"warning: history regression: {message}")
        if not messages and not failures:
            path = bench_history.append_run(args.history_dir, PROFILE, record)
            print(f"history: appended run to {path}")
        else:
            print("history: run NOT appended")

    if failures:
        print("\nPARALLEL BENCH FAILED:")
        for message in failures:
            print(f"  - {message}")
        return 1
    print("\nparallel bench passed (assignments byte-identical to serial)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
