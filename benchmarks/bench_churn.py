#!/usr/bin/env python3
"""Churn benchmark runner: sustained mutation throughput under churn.

Runs the :mod:`repro.bench.churn` workload (incremental engine vs
re-solve-from-scratch over a seeded mutation stream) and appends the
measured numbers — sustained mutations/sec for both paths, per-batch
vertex-movement counts, cumulative migration cost and equilibrium
quality drift — to the bench-history store
(``benchmarks/history/churn.jsonl``), calibration-normalized like the
perf-regression harness.

Run directly or via CI::

    python benchmarks/bench_churn.py                  # measure + append
    python benchmarks/bench_churn.py --no-history     # measure only
    python benchmarks/bench_churn.py --check          # smoke invariants
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import history as bench_history  # noqa: E402
from repro.bench.churn import run_churn  # noqa: E402

HISTORY_DIR = REPO_ROOT / "benchmarks" / "history"
PROFILE = "churn"


def calibration_ms(repeats: int = 3) -> float:
    """Machine-speed probe (same primitive mix as the perf harness)."""
    import time

    rng = np.random.default_rng(0)
    values = rng.standard_normal(200_000)
    idx = rng.integers(0, 200_000, 200_000)
    best = float("inf")
    for _ in range(max(repeats, 3) + 1):
        start = time.perf_counter()
        acc = values.copy()
        for _ in range(6):
            acc = np.sqrt(np.abs(acc[idx])) + 0.5
            np.bincount(idx % 512, weights=acc, minlength=512)
        acc.argsort(kind="stable")
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=120)
    parser.add_argument("--events", type=int, default=6)
    parser.add_argument("--batches", type=int, default=6)
    parser.add_argument("--batch-size", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--alpha", type=float, default=0.5)
    parser.add_argument("--solver", default="gt",
                        help="from-scratch reference solver")
    parser.add_argument("--movement-penalty", type=float, default=None)
    parser.add_argument("--no-history", action="store_true",
                        help="do not append to benchmarks/history/")
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless the run produced sane movement accounting "
             "(CI smoke gate)",
    )
    args = parser.parse_args(argv)

    run = run_churn(
        num_users=args.users,
        num_events=args.events,
        num_batches=args.batches,
        batch_size=args.batch_size,
        seed=args.seed,
        alpha=args.alpha,
        scratch_solver=args.solver,
        movement_penalty=args.movement_penalty,
    )
    print(run)

    summary = run.results["churn/summary"]
    if not args.no_history:
        record = bench_history.make_record(
            PROFILE, calibration_ms(), run.results, repo_root=REPO_ROOT
        )
        path = bench_history.append_run(HISTORY_DIR, PROFILE, record)
        print(f"\nhistory: appended to {path}")

    if args.check:
        failures = []
        moved = summary["moved_per_batch"]
        if len(moved) != args.batches:
            failures.append(
                f"expected {args.batches} per-batch movement counts, "
                f"got {len(moved)}"
            )
        if summary["moved_total"] != sum(moved):
            failures.append(
                f"cumulative moved {summary['moved_total']} != "
                f"sum of per-batch counts {sum(moved)}"
            )
        if summary["mutations_per_sec_incremental"] <= 0:
            failures.append("non-positive incremental throughput")
        for key, entry in run.results.items():
            if key.startswith("churn/batch") and entry["drift"] <= 0:
                failures.append(f"{key}: non-positive quality drift")
        if failures:
            print("\nCHECK FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\ncheck ok: movement accounting consistent, "
              f"{summary['mutations_per_sec_incremental']:.0f} mut/s "
              "incremental")
    return 0


if __name__ == "__main__":
    sys.exit(main())
