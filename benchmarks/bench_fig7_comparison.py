"""Figure 7: RMGP_b vs MH vs UML_lp vs UML_gr as k grows (|V| fixed).

Regenerates both panels: (a) execution time per method, (b) solution
quality.  Individual pytest-benchmark cases time each method at the
figure's midpoint (k = 5) so regressions in any single competitor are
visible; the table case emits the full sweep.
"""

from __future__ import annotations

import pytest

from repro.baselines import solve_metis_hungarian, solve_uml_greedy, solve_uml_lp
from repro.bench import run_fig7, small_uml_dataset
from repro.bench.harness import full_scale
from repro.bench.workloads import instance_for
from repro.core import solve_baseline
from repro.core.normalization import normalize

NUM_USERS = 200 if full_scale() else 120
MID_K = 5


@pytest.fixture(scope="module")
def fig7_instance():
    dataset = small_uml_dataset(NUM_USERS, MID_K, seed=0)
    instance, _ = normalize(instance_for(dataset, alpha=0.5), "pessimistic")
    return instance


def test_fig7_rmgp_b_speed(benchmark, fig7_instance):
    result = benchmark(
        lambda: solve_baseline(fig7_instance, init="random", order="random", seed=0)
    )
    assert result.converged


def test_fig7_mh_speed(benchmark, fig7_instance):
    result = benchmark(lambda: solve_metis_hungarian(fig7_instance, seed=0))
    assert result.converged


def test_fig7_uml_lp_speed(benchmark, fig7_instance):
    result = benchmark(lambda: solve_uml_lp(fig7_instance, seed=0))
    assert result.converged


def test_fig7_uml_greedy_speed(benchmark, fig7_instance):
    result = benchmark(lambda: solve_uml_greedy(fig7_instance))
    assert result.converged


def test_fig7_table(benchmark, emit):
    """Emit the full Figure 7 sweep and check the paper's orderings."""
    table = benchmark.pedantic(
        lambda: run_fig7(num_users=NUM_USERS, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(table)
    for row in table.rows:
        # Quality: the LP (2-approx, usually integral/optimal) is best.
        assert row["UML_lp_cost"] <= row["RMGP_b_cost"] + 1e-6
        assert row["UML_lp_cost"] <= row["MH_cost"] + 1e-6
        # MH optimizes the cut only; its total cost is clearly worse.
        assert row["MH_cost"] > row["UML_lp_cost"]
        # Time: the game beats the LP decisively.
        assert row["RMGP_b_ms"] < row["UML_lp_ms"]
