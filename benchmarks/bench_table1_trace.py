"""Table 1: the running-example execution trace (and micro-benchmarks of
the per-player best response, the hot inner loop of every solver)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import run_table1
from repro.core import player_strategy_costs
from repro.datasets import paper_example_instance


def test_table1_trace(benchmark, emit):
    table = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    emit(table)
    # The trace ends in an equilibrium round with no deviations.
    last_round = max(row["round"] for row in table.rows)
    final = [row for row in table.rows if row["round"] == last_round]
    assert all(row["deviated"] == "" for row in final)
    # v4 is dragged away from his closest event by his friends.
    deviated = [row for row in table.rows if row["deviated"] == "*"]
    assert any(row["player"] == "v4" for row in deviated)


def test_best_response_microbenchmark(benchmark):
    """Latency of one player's strategy-cost evaluation (Figure 3 core)."""
    instance = paper_example_instance()
    assignment = np.zeros(instance.n, dtype=np.int64)
    costs = benchmark(lambda: player_strategy_costs(instance, assignment, 3))
    assert costs.shape == (instance.k,)
