"""Empirical quality-of-equilibrium study (Theorem 2 in practice).

The paper proves PoS <= 2 and an instance-dependent PoA bound, and argues
empirically (Figures 7-8) that the reached equilibria sit close to the LP
optimum.  This suite measures the actual gaps on ensembles of small
instances where the exact optimum is computable:

* equilibrium/OPT ratio distribution across seeds and alphas,
* how far OPT-warm-started dynamics drift (the constructive PoS <= 2
  argument), and
* the LP lower bound's tightness against the true optimum.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.baselines import lp_lower_bound, solve_alpha_expansion, solve_exact
from repro.bench.harness import Table
from repro.core import (
    RMGPInstance,
    price_of_anarchy_bound,
    solve_all,
    solve_baseline,
)
from repro.graph import erdos_renyi

NUM_INSTANCES = 12


def _ensemble(alpha: float):
    instances = []
    for seed in range(NUM_INSTANCES):
        graph = erdos_renyi(9, 0.35, random.Random(seed))
        cost = np.random.default_rng(seed).uniform(0.05, 1.0, (9, 3))
        instances.append(RMGPInstance(graph, list(range(3)), cost, alpha=alpha))
    return instances


@pytest.mark.parametrize("alpha", [0.3, 0.5, 0.7])
def test_equilibrium_vs_optimal_ratios(benchmark, emit, alpha):
    def run():
        table = Table(
            title=f"Quality study: equilibrium/OPT ratios (alpha={alpha})",
            columns=["seed", "opt", "equilibrium", "ratio", "poa_bound",
                     "warm_ratio", "alpha_exp_ratio"],
        )
        for seed, instance in enumerate(_ensemble(alpha)):
            exact = solve_exact(instance)
            equilibrium = solve_baseline(instance, seed=seed)
            warm = solve_baseline(
                instance, warm_start=exact.assignment, seed=seed
            )
            expansion = solve_alpha_expansion(instance, seed=seed)
            opt = exact.value.total
            table.add_row(
                seed=seed,
                opt=opt,
                equilibrium=equilibrium.value.total,
                ratio=equilibrium.value.total / opt if opt > 0 else 1.0,
                poa_bound=price_of_anarchy_bound(instance),
                warm_ratio=warm.value.total / opt if opt > 0 else 1.0,
                alpha_exp_ratio=(
                    expansion.value.total / opt if opt > 0 else 1.0
                ),
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    ratios = table.column("ratio")
    bounds = table.column("poa_bound")
    warm_ratios = table.column("warm_ratio")
    # Theorem 2's guarantees, instance by instance.
    for ratio, bound in zip(ratios, bounds):
        assert ratio <= bound + 1e-9
    for warm in warm_ratios:
        assert warm <= 2.0 + 1e-9  # the constructive PoS argument
    # The empirical story of Figures 7-8: equilibria are *much* closer to
    # optimal than the worst-case bounds suggest.
    assert float(np.median(ratios)) < 1.5
    # Alpha-expansion stays within its own factor-2 guarantee.
    for ratio in table.column("alpha_exp_ratio"):
        assert ratio <= 2.0 + 1e-9


def test_lp_bound_tightness(benchmark, emit):
    def run():
        table = Table(
            title="LP relaxation vs true optimum (tiny ensemble)",
            columns=["seed", "lp_bound", "opt", "gap"],
        )
        for seed, instance in enumerate(_ensemble(0.5)[:8]):
            bound = lp_lower_bound(instance)
            opt = solve_exact(instance).value.total
            table.add_row(
                seed=seed,
                lp_bound=bound,
                opt=opt,
                gap=(opt / bound) if bound > 0 else 1.0,
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    gaps = table.column("gap")
    for gap in gaps:
        assert gap >= 1.0 - 1e-9  # the LP is a valid lower bound
    # "In most settings the linear relaxation gave integral solutions":
    # the LP should match OPT on the majority of instances.
    integral = sum(1 for gap in gaps if gap < 1.0 + 1e-6)
    assert integral >= len(gaps) // 2
