"""Figure 8: RMGP_b vs MH vs UML_lp vs UML_gr as |V| grows (k fixed at 7).

The paper caps |V| at 300 "because otherwise UML_lp and UML_gr would be
too slow" — the same cap applies here (quick mode stops at 200).
"""

from __future__ import annotations

import pytest

from repro.baselines import solve_uml_lp
from repro.bench import run_fig8, small_uml_dataset
from repro.bench.harness import full_scale
from repro.bench.workloads import instance_for
from repro.core import solve_baseline
from repro.core.normalization import normalize

NODE_COUNTS = [100, 150, 200, 250, 300] if full_scale() else [80, 120, 160]
NUM_EVENTS = 7


@pytest.fixture(scope="module")
def fig8_largest_instance():
    dataset = small_uml_dataset(NODE_COUNTS[-1], NUM_EVENTS, seed=0)
    instance, _ = normalize(instance_for(dataset, alpha=0.5), "pessimistic")
    return instance


def test_fig8_rmgp_b_speed_largest(benchmark, fig8_largest_instance):
    result = benchmark(
        lambda: solve_baseline(
            fig8_largest_instance, init="random", order="random", seed=0
        )
    )
    assert result.converged


def test_fig8_uml_lp_speed_largest(benchmark, fig8_largest_instance):
    result = benchmark.pedantic(
        lambda: solve_uml_lp(fig8_largest_instance, seed=0),
        rounds=1,
        iterations=1,
    )
    assert result.converged


def test_fig8_table(benchmark, emit):
    """Emit the full Figure 8 sweep and check the paper's orderings."""
    table = benchmark.pedantic(
        lambda: run_fig8(node_counts=NODE_COUNTS, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(table)
    for row in table.rows:
        assert row["UML_lp_cost"] <= row["RMGP_b_cost"] + 1e-6
        assert row["RMGP_b_ms"] < row["UML_lp_ms"]
    # Quality cost grows with the graph (more users to assign).
    lp_costs = table.column("UML_lp_cost")
    assert lp_costs[-1] > lp_costs[0]
