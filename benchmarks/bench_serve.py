#!/usr/bin/env python3
"""Load generator for the solve service: latency + throughput gate.

Boots an embedded :class:`~repro.serve.server.SolveServer` on an
ephemeral port, fires concurrent ``POST /v1/solve`` requests over real
HTTP with a mixed deadline profile (unbounded solves interleaved with
microsecond-deadline ones), cancels one in-flight job, and records
client-observed p50/p99 latency and sustained request throughput into
``benchmarks/history/serve.jsonl`` behind the statistical regression
gate::

    python benchmarks/bench_serve.py                  # measure + record
    python benchmarks/bench_serve.py --check          # also gate on history
    python benchmarks/bench_serve.py --p99-budget 2000

Unconditional gates (exit 1, with or without ``--check``):

* every microsecond-deadline request returns ``stop_reason="deadline"``
  with a schema-valid best-so-far result;
* the cancelled job finishes as ``cancelled`` (or ``done`` if it won
  the race) without killing the server;
* the server still answers ``/v1/health`` after the storm;
* with ``--p99-budget MS``: client-observed p99 stays under it.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_perf_regression import calibration_ms  # noqa: E402
from repro.bench import history as bench_history  # noqa: E402
from repro.core.result_schema import validate_result  # noqa: E402
from repro.serve import EmbeddedServer, ServeConfig  # noqa: E402

PROFILE = "serve"


def _percentile(samples, q):
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _fire(client, body, latencies, failures, lock):
    start = time.perf_counter()
    try:
        payload = client.solve(body)
    except Exception as exc:  # noqa: BLE001 - collected and reported
        with lock:
            failures.append(f"request failed: {type(exc).__name__}: {exc}")
        return None
    elapsed_ms = (time.perf_counter() - start) * 1e3
    with lock:
        latencies.append(elapsed_ms)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests", type=int, default=24,
        help="total solve requests to fire (default: 24)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=8,
        help="client threads firing requests (default: 8)",
    )
    parser.add_argument(
        "--pool-size", type=int, default=4,
        help="server worker threads (default: 4)",
    )
    parser.add_argument("--users", type=int, default=150)
    parser.add_argument("--events", type=int, default=6)
    parser.add_argument(
        "--deadline-every", type=int, default=3,
        help="every Nth request carries a 1µs deadline (default: 3)",
    )
    parser.add_argument(
        "--p99-budget", type=float, metavar="MS",
        help="fail when client-observed p99 exceeds this many ms",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on a statistical history regression (the behavioral "
             "gates always apply)",
    )
    parser.add_argument(
        "--history-dir", type=Path,
        default=REPO_ROOT / "benchmarks" / "history",
    )
    parser.add_argument("--no-history", action="store_true")
    parser.add_argument(
        "--repeats", type=int, default=3, help="calibration repeats"
    )
    args = parser.parse_args(argv)

    cal = calibration_ms(args.repeats)
    print(f"calibration: {cal:.3f} ms")

    failures: list = []
    latencies: list = []
    deadline_results: list = []
    lock = threading.Lock()

    config = ServeConfig(port=0, pool_size=args.pool_size)
    with EmbeddedServer(config) as client:
        # Warm the instance store so the measured lanes hit the LRU.
        client.solve(
            {
                "instance": {
                    "dataset": "gowalla",
                    "users": args.users,
                    "events": args.events,
                },
                "solver": "gt",
            }
        )

        # One in-flight cancellation riding along with the storm.
        ticket = client.solve(
            {
                "instance": {
                    "dataset": "gowalla",
                    "users": args.users * 2,
                    "events": args.events,
                    "seed": 99,
                },
                "solver": "b",
                "wait": False,
            }
        )
        client.cancel(ticket["job"])

        def _worker(indices):
            for i in indices:
                deadline_lane = i % args.deadline_every == 0
                body = {
                    "instance": {
                        "dataset": "gowalla",
                        "users": args.users,
                        "events": args.events,
                    },
                    "solver": "gt",
                    "options": (
                        {"deadline_seconds": 1e-6} if deadline_lane else {}
                    ),
                }
                payload = _fire(client, body, latencies, failures, lock)
                if payload is None:
                    continue
                result = payload.get("result", {})
                errors = validate_result(result)
                if errors:
                    with lock:
                        failures.append(
                            f"request {i}: invalid result payload: {errors[0]}"
                        )
                if deadline_lane:
                    with lock:
                        deadline_results.append(result.get("stop_reason"))

        started = time.perf_counter()
        threads = [
            threading.Thread(
                target=_worker,
                args=(range(t, args.requests, args.concurrency),),
            )
            for t in range(args.concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total_seconds = time.perf_counter() - started

        cancelled = client.wait_for(ticket["job"], timeout=60)
        if cancelled["state"] not in ("cancelled", "done"):
            failures.append(
                f"cancelled job ended as {cancelled['state']!r} "
                "(expected cancelled, or done if it won the race)"
            )
        elif cancelled["state"] == "cancelled":
            print(f"cancelled job: {ticket['job']} -> cancelled")

        health = client.health()
        if health.get("status") != "ok":
            failures.append(f"server unhealthy after load: {health}")

    wrong = [reason for reason in deadline_results if reason != "deadline"]
    if wrong:
        failures.append(
            f"{len(wrong)}/{len(deadline_results)} microsecond-deadline "
            f"requests did not stop on the deadline: {wrong[:5]}"
        )

    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    req_s = len(latencies) / total_seconds if total_seconds > 0 else 0.0
    print(
        f"requests={len(latencies)}/{args.requests} "
        f"concurrency={args.concurrency} pool={args.pool_size}"
    )
    print(
        f"latency: p50={p50:.2f} ms  p99={p99:.2f} ms  "
        f"throughput={req_s:.1f} req/s"
    )
    if args.p99_budget is not None and p99 > args.p99_budget:
        failures.append(
            f"p99 {p99:.2f} ms exceeds budget {args.p99_budget:.2f} ms"
        )

    results = {
        "serve/p50": {"wall_ms": p50, "req_s": req_s},
        "serve/p99": {"wall_ms": p99, "req_s": req_s},
    }
    if not args.no_history:
        record = bench_history.make_record(
            PROFILE, cal, results, repo_root=REPO_ROOT
        )
        past = bench_history.load_history(args.history_dir, PROFILE)
        messages = bench_history.regression_messages(past, record)
        if messages and args.check:
            failures.extend(f"history regression: {m}" for m in messages)
        elif messages:
            for message in messages:
                print(f"warning: history regression: {message}")
        if not messages and not failures:
            path = bench_history.append_run(args.history_dir, PROFILE, record)
            print(f"history: appended run to {path}")
        else:
            print("history: run NOT appended")

    if failures:
        print("\nSERVE BENCH FAILED:")
        for message in failures:
            print(f"  - {message}")
        return 1
    print("\nserve bench passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
