#!/usr/bin/env python3
"""Load generator for the solve service: latency + throughput gate.

Boots an embedded :class:`~repro.serve.server.SolveServer` on an
ephemeral port, fires concurrent ``POST /v1/solve`` requests over real
HTTP with a mixed deadline profile (unbounded solves interleaved with
microsecond-deadline ones), cancels one in-flight job, and records
client-observed p50/p99 latency and sustained request throughput into
``benchmarks/history/serve.jsonl`` behind the statistical regression
gate::

    python benchmarks/bench_serve.py                  # measure + record
    python benchmarks/bench_serve.py --check          # also gate on history
    python benchmarks/bench_serve.py --p99-budget 2000
    python benchmarks/bench_serve.py --overload       # admission storm
    python benchmarks/bench_serve.py --trace-overhead # tracing cost gate

Unconditional gates (exit 1, with or without ``--check``):

* every microsecond-deadline request returns ``stop_reason="deadline"``
  with a schema-valid best-so-far result;
* the cancelled job finishes as ``cancelled`` (or ``done`` if it won
  the race) without killing the server;
* the server still answers ``/v1/health`` after the storm;
* with ``--p99-budget MS``: client-observed p99 stays under it.

``--overload`` instead floods a deliberately small admission queue with
cold-build solves (every request a cache miss) at roughly 10x service
capacity and records shed rate, goodput (admitted requests per second)
and p99-of-admitted latency under the ``serve/overload`` key.  Its
unconditional gates: goodput stays above zero, every response body is
schema-valid (result or ``repro-error/v1`` envelope), the queue depth
never exceeds the bound, and the server answers health afterwards.

``--trace-overhead`` runs the same warm-store workload against two
servers — per-request tracing + flight recorder on (the default
config) and tracing off — and records the traced-vs-untraced p50/p99
delta under ``serve/trace-overhead``.  Its unconditional gate: the
traced p99 stays within ``--overhead-budget`` (default 10%) of the
untraced p99, with a small absolute slack (``--overhead-slack-ms``) so
scheduler noise on millisecond-scale baselines cannot flake the gate.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_perf_regression import calibration_ms  # noqa: E402
from repro.bench import history as bench_history  # noqa: E402
from repro.core.result_schema import validate_result  # noqa: E402
from repro.errors import ConfigurationError  # noqa: E402
from repro.serve import EmbeddedServer, ServeConfig  # noqa: E402
from repro.serve.client import ServerError  # noqa: E402
from repro.serve.errors import validate_error  # noqa: E402

PROFILE = "serve"


def _percentile(samples, q):
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _fire(client, body, latencies, failures, lock):
    start = time.perf_counter()
    try:
        payload = client.solve(body)
    except Exception as exc:  # noqa: BLE001 - collected and reported
        with lock:
            failures.append(f"request failed: {type(exc).__name__}: {exc}")
        return None
    elapsed_ms = (time.perf_counter() - start) * 1e3
    with lock:
        latencies.append(elapsed_ms)
    return payload


def _record_and_report(args, cal, results, failures) -> int:
    """Shared tail: history record, regression gate, verdict."""
    if not args.no_history:
        record = bench_history.make_record(
            PROFILE, cal, results, repo_root=REPO_ROOT
        )
        past = bench_history.load_history(args.history_dir, PROFILE)
        messages = bench_history.regression_messages(past, record)
        if messages and args.check:
            failures.extend(f"history regression: {m}" for m in messages)
        elif messages:
            for message in messages:
                print(f"warning: history regression: {message}")
        if not messages and not failures:
            path = bench_history.append_run(args.history_dir, PROFILE, record)
            print(f"history: appended run to {path}")
        else:
            print("history: run NOT appended")

    if failures:
        print("\nSERVE BENCH FAILED:")
        for message in failures:
            print(f"  - {message}")
        return 1
    print("\nserve bench passed")
    return 0


def _overload(args) -> int:
    """Admission storm: ~10x capacity against a small bounded queue."""
    cal = calibration_ms(args.repeats)
    print(f"calibration: {cal:.3f} ms")

    failures: list = []
    admitted_ms: list = []
    shed_or_rejected = [0]
    invalid_bodies = [0]
    completed = [0]
    lock = threading.Lock()
    seed_counter = iter(range(500_000, 600_000))

    config = ServeConfig(
        port=0,
        pool_size=args.pool_size,
        max_instances=4,
        max_jobs=max(64, args.requests),
        max_queue=args.max_queue,
        admission_policy="shed-expired",
    )
    harness = EmbeddedServer(config)
    with harness as client:

        def _worker(count):
            for _ in range(count):
                with lock:
                    seed = next(seed_counter)
                body = {
                    "instance": {
                        # A fresh seed per request defeats the instance
                        # LRU: every admitted job costs a cold build,
                        # which is what outruns the worker pool.
                        "dataset": "gowalla",
                        "users": args.users,
                        "events": args.events,
                        "seed": seed,
                    },
                    "solver": "gt",
                    "options": {"deadline_seconds": 10.0},
                    "wait": True,
                }
                start = time.perf_counter()
                try:
                    payload = client.solve(body)
                except ServerError as exc:
                    with lock:
                        shed_or_rejected[0] += 1
                        if (
                            exc.payload is None
                            or validate_error(exc.payload)
                        ):
                            invalid_bodies[0] += 1
                except ConfigurationError as exc:
                    with lock:
                        failures.append(f"unexpected 400: {exc}")
                except Exception as exc:  # noqa: BLE001
                    with lock:
                        failures.append(
                            f"request died: {type(exc).__name__}: {exc}"
                        )
                else:
                    elapsed_ms = (time.perf_counter() - start) * 1e3
                    with lock:
                        completed[0] += 1
                        admitted_ms.append(elapsed_ms)
                        if validate_result(payload.get("result", {})):
                            invalid_bodies[0] += 1

        per_thread = max(1, args.requests // args.concurrency)
        started = time.perf_counter()
        threads = [
            threading.Thread(target=_worker, args=(per_thread,))
            for _ in range(args.concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total_seconds = time.perf_counter() - started

        table = harness.server.jobs
        max_depth = table.queue.max_depth_seen
        if max_depth > args.max_queue:
            failures.append(
                f"queue depth {max_depth} exceeded bound {args.max_queue}"
            )
        health = client.health()
        if health.get("status") not in ("ok", "degraded", "overloaded"):
            failures.append(f"server unhealthy after storm: {health}")

    total = completed[0] + shed_or_rejected[0]
    shed_rate = shed_or_rejected[0] / total if total else 0.0
    goodput = completed[0] / total_seconds if total_seconds > 0 else 0.0
    p99_admitted = _percentile(admitted_ms, 0.99)
    print(
        f"overload: requests={total} admitted={completed[0]} "
        f"shed_or_rejected={shed_or_rejected[0]} "
        f"max_queue_depth={max_depth}/{args.max_queue}"
    )
    print(
        f"overload: shed_rate={shed_rate:.2f} goodput={goodput:.1f} req/s "
        f"p99_admitted={p99_admitted:.1f} ms"
    )

    if completed[0] == 0:
        failures.append("zero goodput: no request survived the storm")
    if invalid_bodies[0]:
        failures.append(
            f"{invalid_bodies[0]} schema-invalid response bodies"
        )

    results = {
        "serve/overload": {
            "wall_ms": p99_admitted,
            "req_s": goodput,
            "shed_rate": shed_rate,
        },
    }
    return _record_and_report(args, cal, results, failures)


def _run_workload(config, args):
    """Fire the warm-store request mix at one server; return latencies."""
    failures: list = []
    latencies: list = []
    lock = threading.Lock()
    body = {
        "instance": {
            "dataset": "gowalla",
            "users": args.users,
            "events": args.events,
        },
        "solver": "gt",
        "options": {"seed": 0},
    }
    with EmbeddedServer(config) as client:
        client.solve(dict(body))  # warm the instance store

        def _worker(count):
            for _ in range(count):
                _fire(client, dict(body), latencies, failures, lock)

        threads = [
            threading.Thread(
                target=_worker, args=(max(1, args.requests // args.concurrency),)
            )
            for _ in range(args.concurrency)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total_seconds = time.perf_counter() - started
    return latencies, total_seconds, failures


def _trace_overhead(args) -> int:
    """Traced-vs-untraced latency delta of the identical workload."""
    cal = calibration_ms(args.repeats)
    print(f"calibration: {cal:.3f} ms")
    failures: list = []

    traced_cfg = ServeConfig(port=0, pool_size=args.pool_size)
    plain_cfg = ServeConfig(
        port=0, pool_size=args.pool_size, trace_requests=False
    )
    # Untraced first, traced second: a shared-machine slowdown mid-bench
    # then biases *against* tracing, so the gate stays conservative.
    plain, plain_seconds, plain_failures = _run_workload(plain_cfg, args)
    traced, traced_seconds, traced_failures = _run_workload(traced_cfg, args)
    failures.extend(plain_failures)
    failures.extend(traced_failures)

    p99_plain = _percentile(plain, 0.99)
    p99_traced = _percentile(traced, 0.99)
    p50_plain = _percentile(plain, 0.50)
    p50_traced = _percentile(traced, 0.50)
    delta_ms = p99_traced - p99_plain
    overhead = delta_ms / p99_plain if p99_plain > 0 else 0.0
    print(
        f"untraced: p50={p50_plain:.2f} ms  p99={p99_plain:.2f} ms "
        f"({len(plain)} requests in {plain_seconds:.2f}s)"
    )
    print(
        f"traced:   p50={p50_traced:.2f} ms  p99={p99_traced:.2f} ms "
        f"({len(traced)} requests in {traced_seconds:.2f}s)"
    )
    print(
        f"trace overhead: {delta_ms:+.2f} ms on p99 "
        f"({overhead * 100:+.1f}%, budget {args.overhead_budget * 100:.0f}%)"
    )
    if not plain or not traced:
        failures.append("a workload produced zero successful requests")
    elif overhead > args.overhead_budget and delta_ms > args.overhead_slack_ms:
        failures.append(
            f"tracing overhead {overhead * 100:.1f}% on p99 "
            f"({delta_ms:.2f} ms) exceeds the "
            f"{args.overhead_budget * 100:.0f}% budget"
        )

    results = {
        "serve/trace-overhead": {
            "wall_ms": p99_traced,
            "untraced_p99_ms": p99_plain,
            "overhead_frac": overhead,
        },
    }
    return _record_and_report(args, cal, results, failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests", type=int, default=24,
        help="total solve requests to fire (default: 24)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=8,
        help="client threads firing requests (default: 8)",
    )
    parser.add_argument(
        "--pool-size", type=int, default=4,
        help="server worker threads (default: 4)",
    )
    parser.add_argument("--users", type=int, default=150)
    parser.add_argument("--events", type=int, default=6)
    parser.add_argument(
        "--deadline-every", type=int, default=3,
        help="every Nth request carries a 1µs deadline (default: 3)",
    )
    parser.add_argument(
        "--p99-budget", type=float, metavar="MS",
        help="fail when client-observed p99 exceeds this many ms",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on a statistical history regression (the behavioral "
             "gates always apply)",
    )
    parser.add_argument(
        "--history-dir", type=Path,
        default=REPO_ROOT / "benchmarks" / "history",
    )
    parser.add_argument("--no-history", action="store_true")
    parser.add_argument(
        "--repeats", type=int, default=3, help="calibration repeats"
    )
    parser.add_argument(
        "--overload", action="store_true",
        help="run the admission storm scenario instead of the latency "
             "profile (cold-build flood at ~10x service capacity)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=4,
        help="admission queue bound for --overload (default: 4)",
    )
    parser.add_argument(
        "--trace-overhead", action="store_true",
        help="measure traced-vs-untraced p99 and gate the delta "
             "against --overhead-budget",
    )
    parser.add_argument(
        "--overhead-budget", type=float, default=0.10, metavar="FRAC",
        help="max tolerated fractional p99 overhead of tracing "
             "(default: 0.10 = 10%%)",
    )
    parser.add_argument(
        "--overhead-slack-ms", type=float, default=2.0, metavar="MS",
        help="absolute p99 delta always tolerated regardless of the "
             "fraction — keeps millisecond-scale baselines from "
             "flaking the gate on scheduler noise (default: 2)",
    )
    args = parser.parse_args(argv)

    if args.trace_overhead:
        return _trace_overhead(args)

    if args.overload:
        if args.pool_size == parser.get_default("pool_size"):
            args.pool_size = 2
        if args.users == parser.get_default("users"):
            args.users = 600
        if args.events == parser.get_default("events"):
            args.events = 16
        return _overload(args)

    cal = calibration_ms(args.repeats)
    print(f"calibration: {cal:.3f} ms")

    failures: list = []
    latencies: list = []
    deadline_results: list = []
    lock = threading.Lock()

    config = ServeConfig(port=0, pool_size=args.pool_size)
    with EmbeddedServer(config) as client:
        # Warm the instance store so the measured lanes hit the LRU.
        client.solve(
            {
                "instance": {
                    "dataset": "gowalla",
                    "users": args.users,
                    "events": args.events,
                },
                "solver": "gt",
            }
        )

        # One in-flight cancellation riding along with the storm.
        ticket = client.solve(
            {
                "instance": {
                    "dataset": "gowalla",
                    "users": args.users * 2,
                    "events": args.events,
                    "seed": 99,
                },
                "solver": "b",
                "wait": False,
            }
        )
        client.cancel(ticket["job"])

        def _worker(indices):
            for i in indices:
                deadline_lane = i % args.deadline_every == 0
                body = {
                    "instance": {
                        "dataset": "gowalla",
                        "users": args.users,
                        "events": args.events,
                    },
                    "solver": "gt",
                    "options": (
                        {"deadline_seconds": 1e-6} if deadline_lane else {}
                    ),
                }
                payload = _fire(client, body, latencies, failures, lock)
                if payload is None:
                    continue
                result = payload.get("result", {})
                errors = validate_result(result)
                if errors:
                    with lock:
                        failures.append(
                            f"request {i}: invalid result payload: {errors[0]}"
                        )
                if deadline_lane:
                    with lock:
                        deadline_results.append(result.get("stop_reason"))

        started = time.perf_counter()
        threads = [
            threading.Thread(
                target=_worker,
                args=(range(t, args.requests, args.concurrency),),
            )
            for t in range(args.concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total_seconds = time.perf_counter() - started

        cancelled = client.wait_for(ticket["job"], timeout=60)
        if cancelled["state"] not in ("cancelled", "done"):
            failures.append(
                f"cancelled job ended as {cancelled['state']!r} "
                "(expected cancelled, or done if it won the race)"
            )
        elif cancelled["state"] == "cancelled":
            print(f"cancelled job: {ticket['job']} -> cancelled")

        health = client.health()
        if health.get("status") != "ok":
            failures.append(f"server unhealthy after load: {health}")

    wrong = [reason for reason in deadline_results if reason != "deadline"]
    if wrong:
        failures.append(
            f"{len(wrong)}/{len(deadline_results)} microsecond-deadline "
            f"requests did not stop on the deadline: {wrong[:5]}"
        )

    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    req_s = len(latencies) / total_seconds if total_seconds > 0 else 0.0
    print(
        f"requests={len(latencies)}/{args.requests} "
        f"concurrency={args.concurrency} pool={args.pool_size}"
    )
    print(
        f"latency: p50={p50:.2f} ms  p99={p99:.2f} ms  "
        f"throughput={req_s:.1f} req/s"
    )
    if args.p99_budget is not None and p99 > args.p99_budget:
        failures.append(
            f"p99 {p99:.2f} ms exceeds budget {args.p99_budget:.2f} ms"
        )

    results = {
        "serve/p50": {"wall_ms": p50, "req_s": req_s},
        "serve/p99": {"wall_ms": p99, "req_s": req_s},
    }
    return _record_and_report(args, cal, results, failures)


if __name__ == "__main__":
    sys.exit(main())
