#!/usr/bin/env python3
"""Quickstart: solve the paper's running example and a synthetic query.

Walks through the library's core workflow:

1. build a social graph and an assignment-cost matrix,
2. wrap them in an :class:`~repro.core.game.RMGPGame`,
3. solve with the fully optimized variant, and
4. inspect the equilibrium certificate and the cost breakdown.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import RMGPGame
from repro.bench.fig_table1 import run_table1
from repro.datasets import (
    gowalla_like,
    paper_example_cost_matrix,
    paper_example_graph,
)
from repro.datasets.paper_example import EVENTS


def running_example() -> None:
    """The six-user, three-event example of the paper's Figure 1."""
    print("=" * 70)
    print("The paper's running example (Figure 1, alpha = 0.5)")
    print("=" * 70)
    game = RMGPGame(
        paper_example_graph(),
        classes=EVENTS,
        cost=paper_example_cost_matrix(),
        alpha=0.5,
    )
    result = game.solve(method="baseline", init="closest", order="given")
    print(result.summary())
    for user, event in sorted(result.labels.items()):
        print(f"  {user} -> {event}")
    print(
        "  note: v4 attends p2 (0.67 away) instead of the closer p1 "
        "(0.34) because his friends v3 and v6 are there."
    )
    print("  equilibrium check:", game.verify(result))
    print()
    print("Full best-response trace (the paper's Table 1):")
    print(run_table1())
    print()


def synthetic_gowalla_query() -> None:
    """A realistic query: 2,000 users, 32 events, normalized costs."""
    print("=" * 70)
    print("Synthetic Gowalla-like query (2,000 users, 32 events)")
    print("=" * 70)
    data = gowalla_like(num_users=2_000, num_events=32, seed=7)
    print("dataset:", data.stats())
    game = RMGPGame(
        data.graph, data.event_ids, data.cost_matrix(), alpha=0.5
    )
    result = game.solve(method="all", normalize_method="pessimistic", seed=7)
    print(result.summary())
    print("  normalization:", game.normalization)
    print("  players fixed by strategy elimination:", result.extra["num_fixed"])
    print("  equilibrium check:", game.verify(result))
    sizes = {}
    for event in result.labels.values():
        sizes[event] = sizes.get(event, 0) + 1
    top = sorted(sizes.items(), key=lambda kv: -kv[1])[:5]
    print("  most popular events:", top)


if __name__ == "__main__":
    running_example()
    synthetic_gowalla_query()
