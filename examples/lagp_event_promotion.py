#!/usr/bin/env python3
"""LAGP: promoting weekend events in a geo-social network (Example 1).

Demonstrates the full location-aware workflow the paper's introduction
motivates:

* a city-scale geo-social network with user check-ins,
* an event catalog (the Eventbrite stand-in),
* an **area-of-interest query** — only users currently checked-in inside
  a downtown rectangle participate ("if a geo-social network wishes to
  advertise events at a certain area, only the users who recently
  checked-in that area ... are relevant", Section 1),
* repeated execution with a **warm start** after fresh check-ins ("the
  solution of the last execution can be used as the seed of the next
  one", Section 3.1).

Run:  python examples/lagp_event_promotion.py
"""

from __future__ import annotations

import random

from repro.apps import Rectangle
from repro.datasets import gowalla_like


def main() -> None:
    data = gowalla_like(num_users=3_000, num_events=64, seed=11)
    task = data.lagp_task()
    print("dataset:", data.stats())

    # ---- Query 1: the whole network ---------------------------------
    print("\n[1] city-wide promotion, alpha = 0.5")
    result = task.query(alpha=0.5, method="all", seed=1)
    partition = result.partition
    print("   ", partition.summary())
    attendance = {
        event_id: len(users)
        for event_id, users in result.attendees().items()
        if users
    }
    print(f"    events with at least one attendee: {len(attendance)}")
    print(
        "    largest event audience:",
        max(attendance.values()) if attendance else 0,
    )

    # ---- Query 2: an area of interest -------------------------------
    # A 60x60 km window over the "Dallas" metro cluster.
    downtown = Rectangle(-30.0, -30.0, 30.0, 30.0)
    print("\n[2] downtown-only promotion (area of interest)")
    local = task.query(area=downtown, alpha=0.5, method="all", seed=1)
    print(f"    participants inside the area: {len(local.participants)}")
    print("   ", local.partition.summary())

    # ---- Query 3: check-ins move, warm start ------------------------
    print("\n[3] users check in elsewhere; re-solve city-wide, warm-started")
    rng = random.Random(99)
    movers = rng.sample(data.graph.nodes(), 150)
    for user in movers:
        x, y = task.checkins[user]
        task.check_in(user, (x + rng.gauss(0, 10), y + rng.gauss(0, 10)))
    warm = task.query(
        alpha=0.5,
        method="all",
        seed=1,
        warm_start=result.partition.assignment,
    )
    print("   ", warm.partition.summary())
    print(
        f"    rounds cold={result.partition.num_rounds} "
        f"vs warm={warm.partition.num_rounds} "
        "(warm starts re-converge quickly after small updates)"
    )

    # ---- Query 4: how alpha changes the trade-off --------------------
    print("\n[4] preference sweep (same query, varying alpha)")
    for alpha in (0.1, 0.5, 0.9):
        swept = task.query(alpha=alpha, method="all", seed=1)
        value = swept.partition.value
        print(
            f"    alpha={alpha:.1f}: assignment={value.assignment_cost:9.1f}  "
            f"social={value.social_cost:9.1f}"
        )
    print(
        "    (larger alpha = distances matter more, so the assignment "
        "component shrinks while more friendships are cut)"
    )


if __name__ == "__main__":
    main()
