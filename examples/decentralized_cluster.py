#!/usr/bin/env python3
"""Decentralized RMGP: DG versus fetch-and-execute on a simulated cluster.

Reproduces the Section 5/6.4 scenario end to end: a Foursquare-like
graph sharded over two slave servers, a master coordinating the
Figure 6 protocol over a simulated 100 Mbps network, and the FaE
baseline that first ships every shard to one machine.

Run:  python examples/decentralized_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro.core import RMGPInstance, is_nash_equilibrium
from repro.core.normalization import normalize_with_constant
from repro.datasets import foursquare_like
from repro.distributed import (
    DGQuery,
    build_cluster,
    cross_shard_edges,
    hash_partition,
    locality_partition,
    run_fae,
)


def main() -> None:
    data = foursquare_like(num_users=2_000, num_events=128, seed=21)
    print("dataset:", data.stats())

    shards = hash_partition(data.graph.nodes(), 2)
    print(
        f"hash sharding: sizes={[len(s) for s in shards]}, "
        f"cross-shard friendships={cross_shard_edges(data.graph, shards)}"
    )

    query = DGQuery(events=data.events, alpha=0.5, seed=3)

    # ---- Decentralized game (DG) -------------------------------------
    cluster = build_cluster(data, num_slaves=2, shards=shards)
    dg = cluster.game.run(query)
    print("\nDG:")
    print(
        f"  rounds={dg.num_rounds}  participants={dg.num_participants}  "
        f"bytes={dg.total_bytes:,}  messages={dg.total_messages}"
    )
    print(f"  modeled time: {dg.total_seconds:.3f}s  (C_N={dg.cn:.4g})")
    for stats in dg.rounds[:4]:
        print(
            f"    round {stats.round_index}: deviations={stats.deviations:5d}  "
            f"compute={stats.compute_seconds * 1e3:7.1f}ms  "
            f"transfer={stats.transfer_seconds * 1e3:7.1f}ms  "
            f"bytes={stats.bytes_sent:,}"
        )

    # DG's answer is a Nash equilibrium of the same normalized instance.
    instance = normalize_with_constant(
        RMGPInstance(data.graph, data.event_ids, data.cost_matrix(), 0.5),
        dg.cn,
    )
    assignment = np.array([dg.assignment[u] for u in data.graph.nodes()])
    print("  equilibrium verified:", is_nash_equilibrium(instance, assignment))

    # ---- Fetch-and-execute (FaE) -------------------------------------
    fae = run_fae(data.graph, data.checkins, shards, query, seed=3)
    print("\nFaE:")
    print(
        f"  transfer={fae.transfer_seconds:.3f}s ({fae.transfer_bytes:,} bytes)  "
        f"execution={fae.execution_seconds:.3f}s  total={fae.total_seconds:.3f}s"
    )
    print(
        "  -> DG avoids the bulk transfer entirely and parallelizes the "
        "expensive initialization across slaves."
    )

    # ---- Better sharding reduces chatter ------------------------------
    smart = locality_partition(data.graph, 2, seed=0)
    print(
        "\nlocality-aware sharding cuts cross-shard friendships to "
        f"{cross_shard_edges(data.graph, smart)} "
        f"(from {cross_shard_edges(data.graph, shards)})"
    )
    smart_cluster = build_cluster(data, num_slaves=2, shards=smart)
    smart_dg = smart_cluster.game.run(query)
    print(
        f"DG over locality shards: bytes={smart_dg.total_bytes:,} "
        f"(hash sharding used {dg.total_bytes:,})"
    )


if __name__ == "__main__":
    main()
