#!/usr/bin/env python3
"""Multi-criteria LAGP: distance *and* profile preference (Section 1).

"If each user has a profile, the assignment cost could take into account
both the distance of each user and his preference to an event (e.g.,
based on textual similarity between the profile and the event
description)."  This example builds exactly that query:

* users carry interest profiles (tf-idf over topic vocabularies),
* events carry descriptions,
* the assignment cost is a weighted combination of min-max-rescaled
  distance and cosine dissimilarity (`repro.apps.multicriteria`),
* the game then balances *three* forces: proximity, taste and friends.

Run:  python examples/multicriteria_profiles.py
"""

from __future__ import annotations

import random

import numpy as np

from repro.apps import (
    Criterion,
    combine_criteria,
    cosine_dissimilarity,
    criterion_breakdown,
    fit_tfidf,
)
from repro.apps.spatial import distance_matrix
from repro.core import RMGPGame
from repro.datasets import DEFAULT_TOPICS, gowalla_like

EVENT_THEMES = list(DEFAULT_TOPICS)


def main() -> None:
    data = gowalla_like(num_users=1_200, num_events=20, seed=19)
    print("dataset:", data.stats())
    rng = random.Random(19)

    # ---- Profiles and event descriptions ------------------------------
    users = data.graph.nodes()
    user_topic = {user: rng.choice(EVENT_THEMES) for user in users}
    event_theme = [EVENT_THEMES[i % len(EVENT_THEMES)] for i in range(len(data.events))]
    model = fit_tfidf(list(DEFAULT_TOPICS.values()))
    user_vectors = {
        user: model.transform(DEFAULT_TOPICS[user_topic[user]])
        for user in users
    }
    event_vectors = [
        model.transform(DEFAULT_TOPICS[theme]) for theme in event_theme
    ]

    # ---- The two criteria ---------------------------------------------
    distances = distance_matrix(
        [data.checkins[u] for u in users], data.event_locations
    )
    preference = np.array(
        [
            [
                cosine_dissimilarity(user_vectors[user], vector)
                for vector in event_vectors
            ]
            for user in users
        ]
    )
    criteria = [
        Criterion("distance", distances, weight=0.6),
        Criterion("preference", preference, weight=0.4),
    ]
    cost = combine_criteria(criteria, rescale=True)

    # ---- Solve ----------------------------------------------------------
    game = RMGPGame(data.graph, data.event_ids, cost, alpha=0.5)
    result = game.solve(method="all", normalize_method="pessimistic", seed=4)
    print(result.summary())
    print("equilibrium:", game.verify(result))

    breakdown = criterion_breakdown(criteria, result.assignment)
    print("criterion contributions (rescaled units):")
    for name, value in breakdown.items():
        print(f"  {name:10s} {value:10.1f}")

    # How well does taste survive the other two forces?
    matched = sum(
        1
        for i, user in enumerate(users)
        if event_theme[int(result.assignment[i])] == user_topic[user]
    )
    print(
        f"users attending an event of their own theme: {matched}/{len(users)} "
        f"({100 * matched / len(users):.0f}%)"
    )

    # Contrast: distance-only query (preference weight 0).
    distance_only = RMGPGame(
        data.graph, data.event_ids,
        combine_criteria([Criterion("distance", distances)], rescale=True),
        alpha=0.5,
    ).solve(method="all", normalize_method="pessimistic", seed=4)
    matched_distance_only = sum(
        1
        for i, user in enumerate(users)
        if event_theme[int(distance_only.assignment[i])] == user_topic[user]
    )
    print(
        "without the preference criterion that drops to "
        f"{matched_distance_only}/{len(users)} "
        f"({100 * matched_distance_only / len(users):.0f}%)"
    )


if __name__ == "__main__":
    main()
