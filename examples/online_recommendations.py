#!/usr/bin/env python3
"""Online recommendations: the hourly-advertisement loop, incrementally.

The paper's closing remark in Section 3.1 — reuse the previous solution
as the seed of the next execution — becomes a running service here: a
:class:`~repro.apps.streaming.StreamingRecommender` ingests a stream of
check-ins and, every epoch ("hour"), re-converges *incrementally*: only
the neighborhoods of moved users are touched.  The script compares that
against re-solving each epoch from scratch.

Run:  python examples/online_recommendations.py
"""

from __future__ import annotations

import time

import repro
from repro.apps import StreamingRecommender, simulate_stream
from repro.core import RMGPInstance
from repro.core.normalization import normalize
from repro.datasets import gowalla_like


def main() -> None:
    data = gowalla_like(num_users=2_000, num_events=32, seed=71)
    print("dataset:", data.stats())

    recommender = StreamingRecommender(
        data.graph, data.checkins, data.events, seed=0
    )
    print(f"initial solve done (C_N={recommender.cn:.4g})")

    start = time.perf_counter()
    history = simulate_stream(
        recommender, epochs=6, checkins_per_epoch=40, movement_km=30.0, seed=3
    )
    incremental_seconds = time.perf_counter() - start

    print("\nepoch  checkins  deviations  rounds  reassigned  objective")
    for stats in history:
        print(
            f"{stats.epoch:5d}  {stats.checkins_ingested:8d}  "
            f"{stats.deviations:10d}  {stats.rounds:6d}  "
            f"{stats.users_reassigned:10d}  {stats.objective_total:9.1f}"
        )

    # The cold alternative: re-solve the final state from scratch.
    instance = RMGPInstance(
        data.graph,
        data.event_ids,
        # Rebuild distances from the *current* (moved) check-ins.
        _distance_matrix(recommender, data),
        alpha=0.5,
    )
    instance, _ = normalize(instance, "pessimistic")
    start = time.perf_counter()
    cold = repro.partition(instance, solver="all", seed=0)
    cold_seconds = time.perf_counter() - start

    print(
        f"\n6 incremental epochs: {incremental_seconds:.3f}s total "
        f"({incremental_seconds / 6:.3f}s per epoch)"
    )
    print(f"one cold re-solve:    {cold_seconds:.3f}s ({cold.num_rounds} rounds)")
    print(
        "incremental epochs touch only the moved users' neighborhoods — "
        "the per-epoch cost tracks the update rate, not the graph size."
    )


def _distance_matrix(recommender: StreamingRecommender, data):
    import math

    import numpy as np

    users = data.graph.nodes()
    matrix = np.empty((len(users), len(data.events)))
    for i, user in enumerate(users):
        ux, uy = recommender.checkins[user]
        for j, event in enumerate(data.events):
            ex, ey = event.location
            matrix[i, j] = math.hypot(ux - ex, uy - ey)
    return matrix


if __name__ == "__main__":
    main()
