#!/usr/bin/env python3
"""Capacity-constrained event recommendation.

The paper's related work (Section 2.1) points at LAGP variants where
events carry participation constraints; this example runs the
capacity-constrained extension (``repro.core.capacitated``): each event
has a limited number of seats, players may only deviate to events with
spare capacity, and the dynamics converge to a *capacitated equilibrium*.

Run:  python examples/capacitated_events.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core import RMGPInstance, is_capacitated_equilibrium
from repro.core.normalization import normalize
from repro.datasets import gowalla_like


def main() -> None:
    data = gowalla_like(num_users=1_500, num_events=16, seed=81)
    print("dataset:", data.stats())
    instance, estimate = normalize(
        RMGPInstance(data.graph, data.event_ids, data.cost_matrix(), 0.5),
        "pessimistic",
    )
    print(f"normalized with {estimate}")

    # ---- Unconstrained: popular events overflow ----------------------
    unconstrained = repro.partition(instance, solver="all", seed=0)
    loads = np.bincount(unconstrained.assignment, minlength=instance.k)
    print("\nunconstrained attendance per event:")
    print(" ", sorted(loads.tolist(), reverse=True))
    print(f"  largest event: {loads.max()} users "
          f"(fair share would be {instance.n // instance.k})")

    # ---- Constrained: every event seats at most 1.2x the fair share --
    fair = instance.n // instance.k
    capacity = int(1.2 * fair) + 1
    capacities = [capacity] * instance.k
    constrained = repro.partition(
        instance, solver="cap", capacities=capacities, seed=0
    )
    capped_loads = np.bincount(constrained.assignment, minlength=instance.k)
    print(f"\ncapacitated (max {capacity} seats per event):")
    print(" ", sorted(capped_loads.tolist(), reverse=True))
    assert capped_loads.max() <= capacity
    print(
        "  capacitated equilibrium verified:",
        is_capacitated_equilibrium(
            instance, constrained.assignment, capacities
        ),
    )

    # ---- The price of the constraint ----------------------------------
    print("\nobjective (Equation 1):")
    print(f"  unconstrained: {unconstrained.value.total:10.1f}")
    print(f"  capacitated:   {constrained.value.total:10.1f}")
    overflow = loads.max() - capacity
    print(
        f"\nthe cap displaced ~{max(overflow, 0)} users from the most "
        "popular event; the objective rises accordingly — the price of "
        "balancing attendance."
    )

    # ---- Minimum participation: tiny events get canceled -------------
    minimum = max(5, fair // 3)
    with_min = repro.partition(
        instance, solver="minpart", min_participants=minimum, seed=0
    )
    min_loads = np.bincount(with_min.assignment, minlength=instance.k)
    survivors = sorted(int(x) for x in min_loads if x > 0)
    print(
        f"\nminimum participation of {minimum}: "
        f"{len(with_min.extra['canceled'])} events canceled "
        f"{with_min.extra['canceled']}; surviving audiences {survivors}"
    )


if __name__ == "__main__":
    main()
