#!/usr/bin/env python3
"""TAGP: word-of-mouth advertisement placement in a forum (Example 2).

Builds a discussion forum from scratch: threads with topic text and
participants, the co-participation social graph (edge weight = number of
common threads), tf-idf user profiles, and a set of advertisements as
classes.  RMGP then places one ad per user so that users get ads matching
their own interests *and* those of their frequent co-participants.

Run:  python examples/tagp_advertising.py
"""

from __future__ import annotations

from repro.datasets import forum_like


def main() -> None:
    forum = forum_like(num_users=400, threads_per_topic=60, seed=5)
    task = forum.task()
    ADS = forum.default_advertisements()
    print(
        f"forum graph: {task.graph.num_nodes} users, "
        f"{task.graph.num_edges} co-participation edges, "
        f"max weight {max(w for _, _, w in task.graph.edges()):.0f}"
    )

    placement, partition = task.place_advertisements(
        ADS, alpha=0.5, method="all", normalize_method="pessimistic", seed=2
    )
    print(partition.summary())

    # Who got which ad?
    counts = {}
    for ad in placement.values():
        counts[ad.ad_id] = counts.get(ad.ad_id, 0) + 1
    print("ad audiences:")
    for ad_id, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        print(f"  {ad_id:12s} -> {count} users")

    # Word-of-mouth quality: fraction of friendships kept inside one ad.
    same = sum(
        1
        for u, v, _ in task.graph.edges()
        if placement[u].ad_id == placement[v].ad_id
    )
    print(
        f"friend pairs sharing an ad: {same}/{task.graph.num_edges} "
        f"({100.0 * same / task.graph.num_edges:.1f}%)"
    )

    # Normalization direction is reversed vs LAGP (Section 3.3): here
    # the dissimilarities live in [0, 1] while co-participation weights
    # can be much larger, so C_N scales the topical fit *up*.
    raw_placement, raw = task.place_advertisements(
        ADS, alpha=0.5, method="all", normalize_method=None, seed=2
    )
    raw_match = sum(
        1
        for u, v, _ in task.graph.edges()
        if raw_placement[u].ad_id == raw_placement[v].ad_id
    )
    print(
        "raw vs normalized friend pairs sharing an ad: "
        f"{raw_match}/{task.graph.num_edges} vs {same}/{task.graph.num_edges}"
    )


if __name__ == "__main__":
    main()
