#!/usr/bin/env python3
"""Why normalization matters (Section 3.3 / Figure 9), hands on.

Solves the same LAGP query three ways — raw, optimistic RMGP_N and
pessimistic RMGP_N — and shows how the balance between the assignment
and social components (and the number of users actually moved away from
their closest event) changes.

Run:  python examples/normalization_study.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core import RMGPInstance, estimate_cn, exact_cn, normalize
from repro.datasets import gowalla_like


def main() -> None:
    data = gowalla_like(num_users=3_000, num_events=16, seed=13)
    print("dataset:", data.stats())
    base = RMGPInstance(data.graph, data.event_ids, data.cost_matrix(), 0.5)

    closest = np.array(
        [int(base.cost.row(v).argmin()) for v in range(base.n)]
    )

    print(f"\n{'variant':12s} {'C_N':>10s} {'alpha*AC':>12s} "
          f"{'(1-a)*SC':>12s} {'ratio':>8s} {'moved':>6s}")
    for variant in ("raw", "optimistic", "pessimistic"):
        if variant == "raw":
            instance, cn = base, 1.0
        else:
            instance, est = normalize(base, variant)
            cn = est.cn
        result = repro.partition(
            instance, solver="b", init="closest", order="given"
        )
        value = result.value
        assignment_part = 0.5 * value.assignment_cost
        social_part = 0.5 * value.social_cost
        moved = int((result.assignment != closest).sum())
        ratio = assignment_part / social_part if social_part else float("inf")
        print(
            f"{variant:12s} {cn:10.4g} {assignment_part:12.1f} "
            f"{social_part:12.1f} {ratio:8.2f} {moved:6d}"
        )

    print(
        "\nraw distances are ~100 km while edge weights are 1, so the raw "
        "objective is dominated by the assignment term: almost everyone "
        "stays at the closest event and the social dimension is wasted."
    )

    # Compare the heuristic estimates against the a-posteriori truth.
    normalized, est = normalize(base, "pessimistic")
    result = repro.partition(
        normalized, solver="b", init="closest", order="degree"
    )
    print(
        f"\npessimistic estimate C_N={est.cn:.4g}; "
        f"a-posteriori C_N of the solved game={exact_cn(base, result.assignment):.4g}"
    )
    print(
        "optimistic estimate:",
        f"C_N={estimate_cn(base, 'optimistic').cn:.4g}",
        "(assumes everyone at the closest event and 1/sqrt(k) of friends away)",
    )


if __name__ == "__main__":
    main()
