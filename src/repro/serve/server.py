"""The asyncio HTTP/1.1 front end of the solve service.

Zero-dependency by design: a hand-rolled request parser over
``asyncio.start_server`` (request line + headers + ``Content-Length``
body), a small route table, JSON responses with explicit lengths, and
chunked transfer encoding for the progress stream.  The event loop
never runs a solve — jobs go to the :class:`~repro.serve.jobs.JobTable`
worker pool and completion is signalled back with
``loop.call_soon_threadsafe`` — so health checks, polling and
cancellation stay interactive while every worker is busy.

Overload and failure semantics (see ``docs/API.md``):

* every non-2xx body is one ``repro-error/v1`` envelope
  (:func:`repro.serve.errors.error_body`); 429/503 also carry a
  ``Retry-After`` header;
* reads of the request head/body are bounded by
  ``read_timeout_seconds`` (slow-loris defense → 408 + close) and every
  response/stream write by ``write_timeout_seconds`` (a stalled client
  gets its connection aborted rather than pinning buffers);
* responses that prove the connection framing is still intact
  (400/404/405/409) keep the connection alive so a pipelined follow-up
  request still works; timeouts, overload and server errors close it;
* SIGTERM (or :meth:`SolveServer.drain_and_stop`) drains: new solves
  get 503 + ``Retry-After``, in-flight jobs finish within the grace
  budget as valid best-so-far results, stragglers are cancelled at the
  next round boundary (persisting drain checkpoints when configured).

Tracing: every request carries a W3C trace id (the ``traceparent``
header or body field when the client sends one — malformed headers are
ignored per the spec's restart semantics — else freshly generated).
The id is stamped into job envelopes, streaming records and error
envelopes; the stitched per-request trace (``serve.request`` >
``serve.queue_wait`` + ``job.solve`` > solver spans, including adopted
``worker.compute`` RemoteSpans from the shm backend) is served as
``repro-trace/v2`` JSONL at ``GET /v1/jobs/<id>/trace``.  Finished
traces also feed the always-on flight recorder; 5xx responses, sheds,
drain start, health transitions to ``overloaded`` and p99 breaches
dump the last window to ``--flight-dir`` (debounced).

Endpoints (see ``docs/API.md`` for schemas and curl examples)::

    GET    /v1/health       liveness + load state + queue stats
    GET    /v1/solvers      registry catalog, backends, datasets
    POST   /v1/solve        run a solve (sync, async or streaming)
    GET    /v1/jobs         job summaries (newest last)
    GET    /v1/jobs/<id>    one job envelope (result when finished)
    GET    /v1/jobs/<id>/trace  the job's repro-trace/v2 JSONL
    DELETE /v1/jobs/<id>    cooperative cancellation
    GET    /v1/instances    LRU instance-store statistics
    POST   /v1/debug/flight force a flight-recorder dump
    GET    /metrics         Prometheus text exposition
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import time
from typing import Any, Dict, Optional, Tuple

from repro import __version__
from repro.core.registry import BACKENDS, solver_catalog
from repro.errors import ConfigurationError
from repro.obs.context import TRACEPARENT_HEADER, parse_traceparent
from repro.obs.exporters import jsonl_lines, prometheus_text
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.serve.config import ServeConfig
from repro.serve.errors import error_body
from repro.serve.jobs import (
    AdmissionRejected,
    Job,
    JobTable,
    ServiceDraining,
)
from repro.serve.store import InstanceStore
from repro.serve.wire import API_VERSION, INSTANCE_DATASETS, SolveRequest

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Default ``repro-error/v1`` code per status (overridable per raise).
_DEFAULT_CODES = {
    400: "invalid_request",
    404: "not_found",
    405: "method_not_allowed",
    408: "timeout",
    409: "already_finished",
    413: "payload_too_large",
    429: "queue_full",
    500: "internal",
    503: "draining",
}

#: Statuses that leave the HTTP/1.1 framing intact: the request was
#: fully read and the response fully framed, so the connection can keep
#: serving pipelined/keep-alive requests.  Timeouts (the stream position
#: is unknown), overload pushback and server errors close instead.
_KEEP_ALIVE_STATUSES = frozenset({400, 404, 405, 409})

_MAX_HEADER_BYTES = 64 * 1024


class _ProgressSink:
    """Thread-safe bridge from worker-thread progress to the loop."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self.queue: "asyncio.Queue[Optional[Dict[str, Any]]]" = asyncio.Queue()

    def publish(self, record: Optional[Dict[str, Any]]) -> None:
        self._loop.call_soon_threadsafe(self.queue.put_nowait, record)


class HttpError(Exception):
    """One non-2xx response: status + ``repro-error/v1`` body pieces."""

    def __init__(
        self,
        status: int,
        message: str,
        code: Optional[str] = None,
        retry_after_seconds: Optional[float] = None,
        field: Optional[str] = None,
        job: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.code = code or _DEFAULT_CODES.get(status, "internal")
        self.retry_after_seconds = retry_after_seconds
        self.field = field
        self.job = job
        self.trace_id = trace_id


def _field_of(message: str) -> Optional[str]:
    """The validation field path of a ConfigurationError, if any.

    Wire validation errors are uniformly ``request[...]: detail`` —
    the prefix becomes the envelope's machine-readable ``field``.
    """
    head, sep, _ = message.partition(": ")
    if sep and head.startswith("request") and " " not in head:
        return head
    return None


class SolveServer:
    """One serving process: HTTP front end + job table + stores."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.registry = MetricsRegistry()
        self.store = InstanceStore(max_instances=self.config.max_instances)
        #: Always-on flight recorder (None with tracing disabled).  The
        #: ring records regardless of ``flight_dir``; dumps only land on
        #: disk once a directory is configured.
        self.flight: Optional[FlightRecorder] = (
            FlightRecorder(
                window_seconds=self.config.flight_window_seconds,
                max_records=self.config.flight_max_records,
                debounce_seconds=self.config.flight_debounce_seconds,
                directory=self.config.flight_dir,
                registry=self.registry,
            )
            if self.config.trace_requests
            else None
        )
        self.jobs = JobTable(
            store=self.store,
            registry=self.registry,
            pool_size=self.config.pool_size,
            max_jobs=self.config.max_jobs,
            max_queue=self.config.max_queue,
            admission_policy=self.config.admission_policy,
            interactive_weight=self.config.interactive_weight,
            default_deadline_seconds=self.config.default_deadline_seconds,
            drain_grace_seconds=self.config.drain_grace_seconds,
            drain_checkpoint_dir=self.config.drain_checkpoint_dir,
            trace_requests=self.config.trace_requests,
            flight=self.flight,
        )
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._last_health_status: Optional[str] = None
        self._p99_breached = False

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral one)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.started_at = time.time()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.jobs.shutdown(wait=True)

    async def drain_and_stop(
        self, grace_seconds: Optional[float] = None
    ) -> None:
        """Graceful shutdown: 503 new work, degrade in-flight, stop.

        The draining flag flips immediately (so the very next
        ``POST /v1/solve`` is refused) while the event loop keeps
        serving polls, streams and the blocking wait of in-flight
        requests; the grace wait itself runs in an executor thread.
        """
        self.jobs.drain(grace_seconds, wait=False)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.jobs.drain(grace_seconds, wait=True)
        )
        await self.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        host, port = self.config.host, self.port
        print(f"repro serve: listening on http://{host}:{port}/{API_VERSION}")
        async with self._server:
            await self._server.serve_forever()

    # -- HTTP plumbing --------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except asyncio.IncompleteReadError:
                    break
                except HttpError as exc:
                    await self._write_error(writer, exc)
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = await self._dispatch(
                    writer, method, path, headers, body
                )
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels idle keep-alive handlers; ending the
            # task normally keeps asyncio's stream callback (which
            # calls task.exception()) from spraying tracebacks.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
                OSError,
            ):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        timeout = self.config.read_timeout_seconds
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout
            )
        except asyncio.LimitOverrunError:
            raise HttpError(413, "request head too large")
        except asyncio.TimeoutError:
            # Slow-loris (or an idle keep-alive connection): either way
            # the client gets a parting 408 and the connection closes.
            self.registry.counter("serve.timeouts", {"kind": "read"}).inc()
            raise HttpError(
                408,
                f"timed out reading request head after {timeout:g}s",
            )
        if len(head) > _MAX_HEADER_BYTES:
            raise HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = 0
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise HttpError(400, "malformed Content-Length")
        if length > self.config.max_body_bytes:
            raise HttpError(
                413,
                f"request body exceeds {self.config.max_body_bytes} bytes",
            )
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout
                )
            except asyncio.TimeoutError:
                self.registry.counter(
                    "serve.timeouts", {"kind": "read"}
                ).inc()
                raise HttpError(
                    408,
                    f"timed out reading request body after {timeout:g}s",
                )
        else:
            body = b""
        return method.upper(), target, headers, body

    async def _drain_guarded(self, writer: asyncio.StreamWriter) -> None:
        """``writer.drain()`` with the stalled-client guard.

        A subscriber that stops reading (dead TCP peer, black-holed
        route) would otherwise park the handler in ``drain()`` forever
        with the job's buffers pinned.  Past the write timeout the
        connection is aborted — for streams the caller's
        ``ConnectionResetError`` path then cancels the job.
        """
        try:
            await asyncio.wait_for(
                writer.drain(), self.config.write_timeout_seconds
            )
        except asyncio.TimeoutError:
            self.registry.counter("serve.timeouts", {"kind": "write"}).inc()
            transport = writer.transport
            if transport is not None:
                transport.abort()
            raise ConnectionResetError(
                "write stalled past "
                f"{self.config.write_timeout_seconds:g}s; connection aborted"
            )

    async def _write_error(
        self, writer: asyncio.StreamWriter, error: HttpError
    ) -> bool:
        """One ``repro-error/v1`` response; returns keep-alive."""
        keep_alive = error.status in _KEEP_ALIVE_STATUSES
        if error.status >= 500 and self.flight is not None:
            # Any 5xx is a flight trigger: the failing request's trace
            # was ringed before the job finished, so the (debounced)
            # dump contains its spans.
            self.flight.trigger(
                f"http_{error.status}",
                detail=f"{error.code}: {error.message}",
                trace_id=error.trace_id,
            )
        payload = error_body(
            error.status,
            error.code,
            error.message,
            retry_after_seconds=error.retry_after_seconds,
            field=error.field,
            job=error.job,
            trace_id=error.trace_id,
        )
        headers = {}
        if error.retry_after_seconds is not None:
            headers["Retry-After"] = str(
                max(1, math.ceil(error.retry_after_seconds))
            )
        await self._write_json(
            writer,
            error.status,
            payload,
            keep_alive=keep_alive,
            extra_headers=headers,
        )
        return keep_alive

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        keep_alive: bool = True,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        await self._write_raw(
            writer, status, body, "application/json", keep_alive,
            extra_headers,
        )

    async def _write_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        keep_alive: bool = True,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        extras = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extras}"
            f"Connection: {connection}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await self._drain_guarded(writer)

    # -- routing --------------------------------------------------------
    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> bool:
        path, _, query = target.partition("?")
        self.registry.counter(
            "serve.http_requests", {"method": method}
        ).inc()
        try:
            if path == "/metrics" and method == "GET":
                text = prometheus_text(self.registry)
                await self._write_raw(
                    writer, 200, text.encode(), "text/plain; version=0.0.4"
                )
                return True
            if path == f"/{API_VERSION}/health" and method == "GET":
                await self._write_json(writer, 200, self._health())
                return True
            if path == f"/{API_VERSION}/solvers" and method == "GET":
                await self._write_json(
                    writer,
                    200,
                    {
                        "solvers": solver_catalog(),
                        "backends": dict(BACKENDS),
                        "datasets": list(INSTANCE_DATASETS),
                    },
                )
                return True
            if path == f"/{API_VERSION}/instances" and method == "GET":
                await self._write_json(writer, 200, self.store.stats())
                return True
            if path == f"/{API_VERSION}/solve":
                if method != "POST":
                    raise HttpError(405, "POST only")
                return await self._handle_solve(writer, headers, body)
            if path == f"/{API_VERSION}/debug/flight":
                if method != "POST":
                    raise HttpError(405, "POST only")
                return await self._handle_flight_dump(writer)
            if path == f"/{API_VERSION}/jobs" and method == "GET":
                await self._write_json(
                    writer,
                    200,
                    {
                        "jobs": [
                            self._job_summary(job) for job in self.jobs.jobs()
                        ]
                    },
                )
                return True
            if path.startswith(f"/{API_VERSION}/jobs/"):
                job_id = path[len(f"/{API_VERSION}/jobs/"):]
                if job_id.endswith("/trace"):
                    if method != "GET":
                        raise HttpError(405, "GET only")
                    return await self._handle_job_trace(
                        writer, job_id[: -len("/trace")]
                    )
                return await self._handle_job(writer, method, job_id, query)
            raise HttpError(404, f"no route for {method} {path}")
        except HttpError as exc:
            return await self._write_error(writer, exc)
        except AdmissionRejected as exc:
            return await self._write_error(
                writer,
                HttpError(
                    429,
                    exc.message,
                    code="queue_full",
                    retry_after_seconds=exc.retry_after_seconds,
                ),
            )
        except ServiceDraining as exc:
            return await self._write_error(
                writer,
                HttpError(
                    503,
                    exc.message,
                    code="draining",
                    retry_after_seconds=exc.retry_after_seconds,
                ),
            )
        except ConfigurationError as exc:
            return await self._write_error(
                writer,
                HttpError(400, str(exc), field=_field_of(str(exc))),
            )
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception as exc:  # noqa: BLE001 - connection boundary
            import traceback

            traceback.print_exc()
            return await self._write_error(
                writer, HttpError(500, f"{type(exc).__name__}: {exc}")
            )

    def _health(self) -> Dict[str, Any]:
        """Liveness plus the load state a balancer routes on.

        ``ok`` → ``degraded`` (queue half full, or recent p99 past the
        configured bound) → ``overloaded`` (queue at its bound; new work
        is being rejected or shed) → ``draining`` (shutting down).
        """
        depth = self.jobs.queue.depth()
        p99 = self.jobs.recent_p99_ms()
        if self.jobs.draining:
            status = "draining"
        elif depth >= self.config.max_queue:
            status = "overloaded"
        elif depth >= max(1, self.config.max_queue // 2) or (
            self.config.health_p99_ms is not None
            and p99 is not None
            and p99 > self.config.health_p99_ms
        ):
            status = "degraded"
        else:
            status = "ok"
        payload: Dict[str, Any] = {
            "status": status,
            "version": __version__,
            "api": API_VERSION,
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
            "pool_size": self.config.pool_size,
            "jobs": len(self.jobs.jobs()),
            "running": self.jobs.running_count(),
            "draining": self.jobs.draining,
            "queue": self.jobs.queue.stats(),
        }
        if p99 is not None:
            payload["recent_p99_ms"] = p99
        if self.flight is not None:
            if (
                status == "overloaded"
                and self._last_health_status != "overloaded"
            ):
                self.flight.trigger(
                    "overloaded", detail=f"queue depth {depth}"
                )
            breach = (
                self.config.health_p99_ms is not None
                and p99 is not None
                and p99 > self.config.health_p99_ms
            )
            if breach and not self._p99_breached:
                self.flight.trigger(
                    "p99_breach",
                    detail=(
                        f"recent p99 {p99:.1f}ms > "
                        f"{self.config.health_p99_ms:g}ms"
                    ),
                )
            self._p99_breached = breach
            self._last_health_status = status
        return payload

    @staticmethod
    def _job_summary(job: Job) -> Dict[str, Any]:
        return {
            "job": job.id,
            "state": job.state,
            "trace_id": job.trace_id,
            "solver": job.request.solver,
            "priority": job.request.priority,
            "created": job.created,
        }

    # -- solve ----------------------------------------------------------
    async def _handle_solve(
        self,
        writer: asyncio.StreamWriter,
        headers: Dict[str, str],
        body: bytes,
    ) -> bool:
        try:
            payload = json.loads(body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        request = SolveRequest.from_dict(payload)
        # The body-level traceparent (already parsed into the request)
        # beats the header; a malformed *header* restarts the trace per
        # the W3C spec instead of failing the request.
        trace_id = parse_traceparent(headers.get(TRACEPARENT_HEADER))

        if request.stream:
            return await self._handle_solve_stream(writer, request, trace_id)

        job = self.jobs.submit(request, trace_id=trace_id)
        if not request.wait:
            await self._write_json(
                writer,
                202,
                {"job": job.id, "state": job.state, "trace_id": job.trace_id},
            )
            return True
        await self._wait_for(job)
        if job.state == "shed":
            raise HttpError(
                503,
                job.error or "request shed under overload",
                code="shed",
                retry_after_seconds=self.jobs.retry_after_seconds(),
                job=job.id,
                trace_id=job.trace_id,
            )
        if job.error is not None:
            raise HttpError(
                500,
                job.error,
                code="solve_failed",
                job=job.id,
                trace_id=job.trace_id,
            )
        await self._write_json(writer, 200, job.to_dict())
        return True

    async def _handle_solve_stream(
        self,
        writer: asyncio.StreamWriter,
        request: SolveRequest,
        trace_id: Optional[str] = None,
    ) -> bool:
        """Chunked JSONL: a job record, round records, the final result.

        The job is admitted *before* the 200 head goes out — an
        admission rejection must surface as a real 429/503, not a
        truncated stream.  Early progress published while the head is
        in flight just queues in the sink.
        """
        sink = _ProgressSink(asyncio.get_running_loop())
        job = self.jobs.submit(request, sink=sink, trace_id=trace_id)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        try:
            writer.write(head)
            await self._drain_guarded(writer)
            await self._write_chunk(
                writer,
                {
                    "type": "job",
                    "job": job.id,
                    "state": job.state,
                    "trace_id": job.trace_id,
                },
            )
            while True:
                record = await sink.queue.get()
                await self._write_chunk(writer, record)
                if record.get("type") in ("result", "error"):
                    break
            writer.write(b"0\r\n\r\n")
            await self._drain_guarded(writer)
        except (ConnectionResetError, BrokenPipeError):
            # Client went away mid-stream: cancel the solve so the
            # worker slot frees at the next round boundary.
            self.jobs.cancel(job.id)
        finally:
            # The stream is over either way — reap the subscriber so a
            # dead client never pins the sink (or its queue) on the job.
            job.unsubscribe(sink)
        return False  # Connection: close

    async def _write_chunk(
        self, writer: asyncio.StreamWriter, record: Dict[str, Any]
    ) -> None:
        data = (json.dumps(record, sort_keys=True) + "\n").encode()
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        await self._drain_guarded(writer)

    async def _wait_for(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        event = asyncio.Event()
        job.add_done_callback(
            lambda: loop.call_soon_threadsafe(event.set)
        )
        await event.wait()

    # -- jobs -----------------------------------------------------------
    async def _handle_job(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        job_id: str,
        query: str,
    ) -> bool:
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        if method == "GET":
            include = "assignment=1" in query or "assignment=true" in query
            await self._write_json(
                writer, 200, job.to_dict(include_assignment=include)
            )
            return True
        if method == "DELETE":
            already_done = job.wait(0)
            self.jobs.cancel(job_id)
            if already_done:
                raise HttpError(
                    409,
                    f"job {job_id} already finished (state {job.state!r})",
                    code="already_finished",
                    job=job.id,
                )
            await self._write_json(writer, 202, job.to_dict())
            return True
        raise HttpError(405, "GET or DELETE only")

    async def _handle_job_trace(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> bool:
        """``GET /v1/jobs/<id>/trace``: the job's ``repro-trace/v2`` JSONL.

        The trace is only served once the job finished — a live recorder
        is still being mutated by the worker thread, so an early read
        would race it.  Poll the job state first, then fetch the trace.
        """
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        if job.recorder is None:
            raise HttpError(
                404,
                f"job {job_id} has no trace (server started with "
                "tracing disabled)",
                code="trace_unavailable",
                job=job.id,
                trace_id=job.trace_id,
            )
        if not job.wait(0):
            raise HttpError(
                409,
                f"job {job_id} not finished (state {job.state!r}); "
                "trace still recording",
                code="trace_pending",
                job=job.id,
                trace_id=job.trace_id,
            )
        body = ("\n".join(jsonl_lines(job.recorder)) + "\n").encode()
        await self._write_raw(writer, 200, body, "application/x-ndjson")
        return True

    async def _handle_flight_dump(self, writer: asyncio.StreamWriter) -> bool:
        """``POST /v1/debug/flight``: force a flight-recorder dump now."""
        if self.flight is None:
            raise HttpError(
                409,
                "flight recorder disabled (server started with --no-trace)",
                code="flight_disabled",
            )
        if self.flight.directory is None:
            raise HttpError(
                409,
                "flight recorder has nowhere to write "
                "(start the server with --flight-dir)",
                code="flight_disabled",
            )
        dump = self.flight.trigger("manual", force=True)
        await self._write_json(writer, 200, dump.to_dict())
        return True


def run(config: Optional[ServeConfig] = None) -> None:
    """Blocking entry point (``repro serve``).

    SIGTERM triggers a graceful drain (503 new work, grace budget for
    in-flight solves, drain checkpoints when configured); SIGINT/Ctrl-C
    stops abruptly as before.
    """
    server = SolveServer(config)

    async def _main() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        sigterm = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, sigterm.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platforms without signal-handler support
        serve_task = asyncio.create_task(server.serve_forever())
        drain_task = asyncio.create_task(sigterm.wait())
        done, _ = await asyncio.wait(
            {serve_task, drain_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if drain_task in done:
            grace = server.config.drain_grace_seconds
            print(f"repro serve: SIGTERM, draining (grace {grace:g}s)")
            await server.drain_and_stop()
            serve_task.cancel()
        for task in (serve_task, drain_task):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        print("repro serve: interrupted, shutting down")
    finally:
        server.jobs.shutdown(wait=False)
