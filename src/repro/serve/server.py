"""The asyncio HTTP/1.1 front end of the solve service.

Zero-dependency by design: a hand-rolled request parser over
``asyncio.start_server`` (request line + headers + ``Content-Length``
body), a small route table, JSON responses with explicit lengths, and
chunked transfer encoding for the progress stream.  The event loop
never runs a solve — jobs go to the :class:`~repro.serve.jobs.JobTable`
worker pool and completion is signalled back with
``loop.call_soon_threadsafe`` — so health checks, polling and
cancellation stay interactive while every worker is busy.

Endpoints (see ``docs/API.md`` for schemas and curl examples)::

    GET    /v1/health       liveness + config + uptime
    GET    /v1/solvers      registry catalog, backends, datasets
    POST   /v1/solve        run a solve (sync, async or streaming)
    GET    /v1/jobs         job summaries (newest last)
    GET    /v1/jobs/<id>    one job envelope (result when finished)
    DELETE /v1/jobs/<id>    cooperative cancellation
    GET    /v1/instances    LRU instance-store statistics
    GET    /metrics         Prometheus text exposition
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional, Tuple

from repro import __version__
from repro.core.registry import BACKENDS, solver_catalog
from repro.errors import ConfigurationError
from repro.obs.exporters import prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.serve.config import ServeConfig
from repro.serve.jobs import Job, JobTable
from repro.serve.store import InstanceStore
from repro.serve.wire import API_VERSION, INSTANCE_DATASETS, SolveRequest

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

_MAX_HEADER_BYTES = 64 * 1024


class _ProgressSink:
    """Thread-safe bridge from worker-thread progress to the loop."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self.queue: "asyncio.Queue[Optional[Dict[str, Any]]]" = asyncio.Queue()

    def publish(self, record: Optional[Dict[str, Any]]) -> None:
        self._loop.call_soon_threadsafe(self.queue.put_nowait, record)


class HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class SolveServer:
    """One serving process: HTTP front end + job table + stores."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.registry = MetricsRegistry()
        self.store = InstanceStore(max_instances=self.config.max_instances)
        self.jobs = JobTable(
            store=self.store,
            registry=self.registry,
            pool_size=self.config.pool_size,
            max_jobs=self.config.max_jobs,
            default_deadline_seconds=self.config.default_deadline_seconds,
        )
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral one)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.started_at = time.time()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.jobs.shutdown(wait=True)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        host, port = self.config.host, self.port
        print(f"repro serve: listening on http://{host}:{port}/{API_VERSION}")
        async with self._server:
            await self._server.serve_forever()

    # -- HTTP plumbing --------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except asyncio.IncompleteReadError:
                    break
                except HttpError as exc:
                    await self._write_error(writer, exc.status, exc.message)
                    break
                if request is None:
                    break
                method, path, body = request
                keep_alive = await self._dispatch(writer, method, path, body)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels idle keep-alive handlers; ending the
            # task normally keeps asyncio's stream callback (which
            # calls task.exception()) from spraying tracebacks.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
                OSError,
            ):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise HttpError(413, "request head too large")
        if len(head) > _MAX_HEADER_BYTES:
            raise HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = 0
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise HttpError(400, "malformed Content-Length")
        if length > self.config.max_body_bytes:
            raise HttpError(
                413,
                f"request body exceeds {self.config.max_body_bytes} bytes",
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, body

    async def _write_error(
        self, writer: asyncio.StreamWriter, status: int, message: str
    ) -> None:
        await self._write_json(
            writer,
            status,
            {"error": {"status": status, "message": message}},
            keep_alive=False,
        )

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        keep_alive: bool = True,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        await self._write_raw(
            writer, status, body, "application/json", keep_alive
        )

    async def _write_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        keep_alive: bool = True,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing --------------------------------------------------------
    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        body: bytes,
    ) -> bool:
        path, _, query = target.partition("?")
        self.registry.counter(
            "serve.http_requests", {"method": method}
        ).inc()
        try:
            if path == "/metrics" and method == "GET":
                text = prometheus_text(self.registry)
                await self._write_raw(
                    writer, 200, text.encode(), "text/plain; version=0.0.4"
                )
                return True
            if path == f"/{API_VERSION}/health" and method == "GET":
                await self._write_json(writer, 200, self._health())
                return True
            if path == f"/{API_VERSION}/solvers" and method == "GET":
                await self._write_json(
                    writer,
                    200,
                    {
                        "solvers": solver_catalog(),
                        "backends": dict(BACKENDS),
                        "datasets": list(INSTANCE_DATASETS),
                    },
                )
                return True
            if path == f"/{API_VERSION}/instances" and method == "GET":
                await self._write_json(writer, 200, self.store.stats())
                return True
            if path == f"/{API_VERSION}/solve":
                if method != "POST":
                    raise HttpError(405, "POST only")
                return await self._handle_solve(writer, body)
            if path == f"/{API_VERSION}/jobs" and method == "GET":
                await self._write_json(
                    writer,
                    200,
                    {
                        "jobs": [
                            self._job_summary(job) for job in self.jobs.jobs()
                        ]
                    },
                )
                return True
            if path.startswith(f"/{API_VERSION}/jobs/"):
                job_id = path[len(f"/{API_VERSION}/jobs/"):]
                return await self._handle_job(writer, method, job_id, query)
            raise HttpError(404, f"no route for {method} {path}")
        except HttpError as exc:
            await self._write_error(writer, exc.status, exc.message)
            return False
        except ConfigurationError as exc:
            await self._write_error(writer, 400, str(exc))
            return False
        except Exception as exc:  # noqa: BLE001 - connection boundary
            import traceback

            traceback.print_exc()
            await self._write_error(
                writer, 500, f"{type(exc).__name__}: {exc}"
            )
            return False

    def _health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "version": __version__,
            "api": API_VERSION,
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
            "pool_size": self.config.pool_size,
            "jobs": len(self.jobs.jobs()),
        }

    @staticmethod
    def _job_summary(job: Job) -> Dict[str, Any]:
        return {
            "job": job.id,
            "state": job.state,
            "solver": job.request.solver,
            "created": job.created,
        }

    # -- solve ----------------------------------------------------------
    async def _handle_solve(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> bool:
        try:
            payload = json.loads(body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        request = SolveRequest.from_dict(payload)

        if request.stream:
            return await self._handle_solve_stream(writer, request)

        job = self.jobs.submit(request)
        if not request.wait:
            await self._write_json(
                writer, 202, {"job": job.id, "state": job.state}
            )
            return True
        await self._wait_for(job)
        status = 200 if job.error is None else 500
        await self._write_json(writer, status, job.to_dict())
        return True

    async def _handle_solve_stream(
        self, writer: asyncio.StreamWriter, request: SolveRequest
    ) -> bool:
        """Chunked JSONL: a job record, round records, the final result."""
        sink = _ProgressSink(asyncio.get_running_loop())
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()

        job = None
        try:
            job = self.jobs.submit(request, sink=sink)
            await self._write_chunk(
                writer, {"type": "job", "job": job.id, "state": "queued"}
            )
            while True:
                record = await sink.queue.get()
                await self._write_chunk(writer, record)
                if record.get("type") in ("result", "error"):
                    break
        except (ConnectionResetError, BrokenPipeError):
            # Client went away mid-stream: cancel the solve so the
            # worker slot frees at the next round boundary.
            if job is not None:
                self.jobs.cancel(job.id)
            return False
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return False  # Connection: close

    async def _write_chunk(
        self, writer: asyncio.StreamWriter, record: Dict[str, Any]
    ) -> None:
        data = (json.dumps(record, sort_keys=True) + "\n").encode()
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        await writer.drain()

    async def _wait_for(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        event = asyncio.Event()
        job.add_done_callback(
            lambda: loop.call_soon_threadsafe(event.set)
        )
        await event.wait()

    # -- jobs -----------------------------------------------------------
    async def _handle_job(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        job_id: str,
        query: str,
    ) -> bool:
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        if method == "GET":
            include = "assignment=1" in query or "assignment=true" in query
            await self._write_json(
                writer, 200, job.to_dict(include_assignment=include)
            )
            return True
        if method == "DELETE":
            already_done = job.wait(0)
            self.jobs.cancel(job_id)
            status = 409 if already_done else 202
            payload = job.to_dict()
            if already_done:
                payload["error"] = (
                    payload.get("error")
                    or f"job already finished ({job.state})"
                )
            await self._write_json(writer, status, payload)
            return True
        raise HttpError(405, "GET or DELETE only")


def run(config: Optional[ServeConfig] = None) -> None:
    """Blocking entry point (``repro serve``)."""
    server = SolveServer(config)

    async def _main() -> None:
        await server.start()
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - signal path
            pass

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        print("repro serve: interrupted, shutting down")
    finally:
        server.jobs.shutdown(wait=False)
