"""The versioned error envelope of every non-2xx serve response.

Before this module each error path in :mod:`repro.serve.server`
hand-rolled its own JSON body; under overload that meant load balancers
and retrying clients had to pattern-match free-text messages to decide
whether a request was safe to retry.  ``repro-error/v1`` freezes one
machine-readable shape for *all* 4xx/5xx responses::

    {
      "schema": "repro-error/v1",
      "error": {
        "status": 429,
        "code": "queue_full",
        "message": "admission queue is full (8 queued, bound 8)",
        "retryable": true,
        "retry_after_seconds": 1.0,     // optional: when to come back
        "field": "request.options.seed",// optional: validation path
        "job": "job-17",                // optional: poll this job id
        "trace_id": "4bf9..."           // optional: W3C trace id
      }
    }

``retryable`` is the retry hint the :class:`~repro.serve.client.RetryPolicy`
honors: ``true`` means the server did not start the work (429 admission
rejections, 503 shed/draining) so re-sending the same request is safe;
``false`` means it may have (500 mid-solve failures) or that retrying
verbatim cannot succeed (400 validation errors).

Runnable validator (exit 0 conforming / 1 violations / 2 usage)::

    python -m repro.serve.errors response.json
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional

#: Version tag carried in every error body.
ERROR_SCHEMA_VERSION = "repro-error/v1"

#: Machine-readable error codes the server emits.  The set is closed on
#: the server side (every emit site picks one of these) but the
#: validator accepts any well-formed code so future additions do not
#: break deployed consumers.
ERROR_CODES = (
    "invalid_request",     # 400: schema/validation failure (carries field)
    "not_found",           # 404: unknown route or job id
    "method_not_allowed",  # 405
    "already_finished",    # 409: cancel of a finished job
    "payload_too_large",   # 413
    "timeout",             # 408: header/body read stalled past the limit
    "queue_full",          # 429: admission queue at its bound
    "shed",                # 503: queued request dropped by load shedding
    "draining",            # 503: server is shutting down gracefully
    "solve_failed",        # 500: the solver raised inside the worker
    "internal",            # 500: anything else
    "trace_unavailable",   # 404: tracing disabled / trace evicted
    "trace_pending",       # 409: job not finished, trace still mutating
    "flight_disabled",     # 409: no flight recorder / no --flight-dir
)

#: Codes whose requests never started executing — safe to retry.
RETRYABLE_CODES = frozenset({"timeout", "queue_full", "shed", "draining"})

_REQUIRED_KEYS = frozenset({"status", "code", "message", "retryable"})
# trace_id joined the optional set with the tracing layer: a purely
# additive, version-compatible extension (v1 consumers ignore it).
_OPTIONAL_KEYS = frozenset({"retry_after_seconds", "field", "job", "trace_id"})


def error_body(
    status: int,
    code: str,
    message: str,
    *,
    retryable: Optional[bool] = None,
    retry_after_seconds: Optional[float] = None,
    field: Optional[str] = None,
    job: Optional[str] = None,
    trace_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Build one ``repro-error/v1`` body (the only error-body factory)."""
    if retryable is None:
        retryable = code in RETRYABLE_CODES
    error: Dict[str, Any] = {
        "status": int(status),
        "code": code,
        "message": message,
        "retryable": bool(retryable),
    }
    if retry_after_seconds is not None:
        error["retry_after_seconds"] = float(retry_after_seconds)
    if field is not None:
        error["field"] = field
    if job is not None:
        error["job"] = job
    if trace_id is not None:
        error["trace_id"] = trace_id
    return {"schema": ERROR_SCHEMA_VERSION, "error": error}


def validate_error(payload: Any) -> List[str]:
    """All ``repro-error/v1`` violations in ``payload`` (empty = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload: expected an object, got {type(payload).__name__}"]
    if payload.get("schema") != ERROR_SCHEMA_VERSION:
        errors.append(
            f"schema: expected {ERROR_SCHEMA_VERSION!r}, "
            f"got {payload.get('schema')!r}"
        )
    unknown_top = set(payload) - {"schema", "error"}
    if unknown_top:
        errors.append(f"unknown top-level key {sorted(unknown_top)[0]!r}")
    error = payload.get("error")
    if not isinstance(error, dict):
        errors.append(
            f"error: expected an object, got {type(error).__name__}"
        )
        return errors
    for key in sorted(_REQUIRED_KEYS - set(error)):
        errors.append(f"error.{key}: required key missing")
    unknown = set(error) - _REQUIRED_KEYS - _OPTIONAL_KEYS
    for key in sorted(unknown):
        errors.append(f"error.{key}: unknown key")
    status = error.get("status")
    if status is not None and (
        isinstance(status, bool)
        or not isinstance(status, int)
        or not 400 <= status <= 599
    ):
        errors.append(
            f"error.status: expected an int in [400, 599], got {status!r}"
        )
    code = error.get("code")
    if code is not None and (
        not isinstance(code, str)
        or not code
        or not all(c.islower() or c == "_" for c in code)
    ):
        errors.append(
            f"error.code: expected a non-empty snake_case string, got {code!r}"
        )
    message = error.get("message")
    if message is not None and (not isinstance(message, str) or not message):
        errors.append("error.message: expected a non-empty string")
    retryable = error.get("retryable")
    if retryable is not None and not isinstance(retryable, bool):
        errors.append(
            f"error.retryable: expected a bool, got "
            f"{type(retryable).__name__}"
        )
    retry_after = error.get("retry_after_seconds")
    if retry_after is not None and (
        isinstance(retry_after, bool)
        or not isinstance(retry_after, (int, float))
        or retry_after <= 0
    ):
        errors.append(
            "error.retry_after_seconds: expected a positive number, "
            f"got {retry_after!r}"
        )
    for key in ("field", "job", "trace_id"):
        value = error.get(key)
        if value is not None and (not isinstance(value, str) or not value):
            errors.append(f"error.{key}: expected a non-empty string")
    return errors


def validate_error_file(path: str) -> List[str]:
    """Validate one JSON file holding a ``repro-error/v1`` body."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or not JSON: {exc}"]
    return [f"{path}: {message}" for message in validate_error(payload)]


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print(
            "usage: python -m repro.serve.errors <error.json>",
            file=sys.stderr,
        )
        return 2
    errors = validate_error_file(argv[0])
    if errors:
        for message in errors:
            print(message, file=sys.stderr)
        return 1
    print(f"{argv[0]}: conforms to {ERROR_SCHEMA_VERSION}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
