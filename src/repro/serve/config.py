"""Server configuration knobs (one frozen dataclass, CLI-mirrored)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

#: Admission policies of the bounded job queue.
ADMISSION_POLICIES = ("reject", "shed-expired")


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`~repro.serve.server.SolveServer`.

    Attributes
    ----------
    host / port:
        Bind address.  ``port=0`` binds an ephemeral port (tests read
        the resolved one from ``SolveServer.port``).
    pool_size:
        Worker threads running ``partition()`` jobs.  Queued jobs wait;
        the HTTP front end stays responsive regardless (it is a single
        asyncio loop that never solves inline).
    max_instances:
        Resident :class:`~repro.core.instance.RMGPInstance` budget of
        the LRU store.
    max_jobs:
        Finished jobs retained for ``GET /v1/jobs/<id>`` polling before
        the oldest are evicted (running jobs are never evicted).
    max_queue:
        Admission bound: jobs *queued* (admitted but not yet running).
        Submissions past the bound are rejected with 429 +
        ``Retry-After`` — the queue never grows without limit.
    admission_policy:
        ``"reject"`` — a full queue rejects new work outright;
        ``"shed-expired"`` — a full queue first drops queued requests
        whose ``deadline_seconds`` already elapsed while waiting (they
        finish as ``stop_reason="shed"`` / 503), then rejects only if
        still full.  Expired entries are also shed at dequeue instead of
        burning a worker.
    interactive_weight:
        Weighted dequeue ratio: when both priority classes have queued
        work, ``interactive_weight`` interactive jobs are dequeued for
        every one ``batch`` job.
    max_body_bytes:
        Request-body cap; larger ``POST`` bodies are rejected with 413.
    read_timeout_seconds:
        Per-connection cap on reading the request head and the body
        (slow-loris defense; also the keep-alive idle timeout).  Stalled
        reads get 408 and the connection closes.
    write_timeout_seconds:
        Cap on one ``drain()`` of response/stream bytes (dead-subscriber
        defense).  A stalled write aborts the connection and, for
        streams, cancels the underlying job.
    drain_grace_seconds:
        Graceful-shutdown budget: on SIGTERM/``stop()`` in-flight solves
        get this many more seconds (injected as a deadline, so they
        degrade to valid best-so-far results); jobs still running after
        it are cancelled at their next round boundary.
    drain_checkpoint_dir:
        When set, every job runs with a per-job checkpoint path under
        this directory.  Interrupted solves persist a
        :class:`~repro.runtime.SolveCheckpoint` there; outside a drain
        the file is removed once the job finishes, during a drain it is
        kept (and reported in the job envelope) so a restarted server
        can resume byte-identically.  ``None`` disables checkpointing.
    default_deadline_seconds:
        Deadline applied to requests that do not send one; ``None``
        leaves them unbounded.
    health_p99_ms:
        When set, ``/v1/health`` reports ``"degraded"`` once the recent
        p99 request latency exceeds this many milliseconds (queue-depth
        thresholds apply regardless).
    trace_requests:
        Per-request distributed tracing: ingest/generate a W3C
        ``traceparent``, keep each finished job's trace for ``GET
        /v1/jobs/<id>/trace``, and feed the flight recorder.  On by
        default (tracing never perturbs assignments); ``False`` drops
        both the trace endpoint and the flight recorder.
    flight_dir:
        Directory flight-recorder dumps are written to on a trigger
        (5xx, first shed, drain start, health overload, p99 breach, or
        ``POST /v1/debug/flight``).  ``None`` keeps the in-memory ring
        (triggers are still counted) but writes nothing.
    flight_window_seconds:
        How many trailing seconds of completed spans one dump covers.
    flight_debounce_seconds:
        Minimum spacing between automatic dumps — a 500-storm produces
        one dump, not one per failure.
    flight_max_records:
        Ring capacity (span + event records) of the flight recorder.
    """

    host: str = "127.0.0.1"
    port: int = 8350
    pool_size: int = 4
    max_instances: int = 8
    max_jobs: int = 256
    max_queue: int = 64
    admission_policy: str = "reject"
    interactive_weight: int = 4
    max_body_bytes: int = 8 * 1024 * 1024
    read_timeout_seconds: float = 30.0
    write_timeout_seconds: float = 30.0
    drain_grace_seconds: float = 5.0
    drain_checkpoint_dir: Optional[str] = None
    default_deadline_seconds: Optional[float] = None
    health_p99_ms: Optional[float] = None
    trace_requests: bool = True
    flight_dir: Optional[str] = None
    flight_window_seconds: float = 30.0
    flight_debounce_seconds: float = 30.0
    flight_max_records: int = 4096

    def __post_init__(self) -> None:
        for name, minimum in (
            ("pool_size", 1),
            ("max_instances", 1),
            ("max_jobs", 1),
            ("max_queue", 1),
            ("interactive_weight", 1),
            ("max_body_bytes", 1024),
            ("flight_max_records", 1),
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or (
                value < minimum
            ):
                raise ConfigurationError(
                    f"serve.{name}: expected an integer >= {minimum}, "
                    f"got {value!r}"
                )
        if self.admission_policy not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"serve.admission_policy: expected one of "
                f"{'/'.join(ADMISSION_POLICIES)}, "
                f"got {self.admission_policy!r}"
            )
        for name in (
            "read_timeout_seconds",
            "write_timeout_seconds",
            "drain_grace_seconds",
            "flight_window_seconds",
        ):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(
                value, bool
            ) or value <= 0:
                raise ConfigurationError(
                    f"serve.{name}: expected a positive number, got {value!r}"
                )
        for name in ("default_deadline_seconds", "health_p99_ms"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"serve.{name} must be positive")
        if self.drain_checkpoint_dir is not None and not isinstance(
            self.drain_checkpoint_dir, str
        ):
            raise ConfigurationError(
                "serve.drain_checkpoint_dir: expected a path string, got "
                f"{self.drain_checkpoint_dir!r}"
            )
        if not isinstance(self.trace_requests, bool):
            raise ConfigurationError(
                "serve.trace_requests: expected a bool, got "
                f"{self.trace_requests!r}"
            )
        if self.flight_dir is not None and not isinstance(self.flight_dir, str):
            raise ConfigurationError(
                "serve.flight_dir: expected a path string, got "
                f"{self.flight_dir!r}"
            )
        value = self.flight_debounce_seconds
        if not isinstance(value, (int, float)) or isinstance(
            value, bool
        ) or value < 0:
            raise ConfigurationError(
                "serve.flight_debounce_seconds: expected a number >= 0, "
                f"got {value!r}"
            )
