"""Server configuration knobs (one frozen dataclass, CLI-mirrored)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`~repro.serve.server.SolveServer`.

    Attributes
    ----------
    host / port:
        Bind address.  ``port=0`` binds an ephemeral port (tests read
        the resolved one from ``SolveServer.port``).
    pool_size:
        Worker threads running ``partition()`` jobs.  Queued jobs wait;
        the HTTP front end stays responsive regardless (it is a single
        asyncio loop that never solves inline).
    max_instances:
        Resident :class:`~repro.core.instance.RMGPInstance` budget of
        the LRU store.
    max_jobs:
        Finished jobs retained for ``GET /v1/jobs/<id>`` polling before
        the oldest are evicted (running jobs are never evicted).
    max_body_bytes:
        Request-body cap; larger ``POST`` bodies are rejected with 413.
    default_deadline_seconds:
        Deadline applied to requests that do not send one; ``None``
        leaves them unbounded.
    """

    host: str = "127.0.0.1"
    port: int = 8350
    pool_size: int = 4
    max_instances: int = 8
    max_jobs: int = 256
    max_body_bytes: int = 8 * 1024 * 1024
    default_deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        for name, minimum in (
            ("pool_size", 1),
            ("max_instances", 1),
            ("max_jobs", 1),
            ("max_body_bytes", 1024),
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value < minimum:
                raise ConfigurationError(
                    f"serve.{name}: expected an integer >= {minimum}, "
                    f"got {value!r}"
                )
        if self.default_deadline_seconds is not None and (
            self.default_deadline_seconds <= 0
        ):
            raise ConfigurationError(
                "serve.default_deadline_seconds must be positive"
            )
