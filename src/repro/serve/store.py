"""LRU store of resident :class:`RMGPInstance`\\ s.

Building an instance (dataset generation + CSR adjacency) dwarfs the
solve time for interactive queries, so the server keeps hot instances
resident and keyed by the graph part of the request spec only —
``alpha`` and ``k``-independent knobs ride on the solve itself, so
mixed-α traffic over one graph is all cache hits after the first
request.  Eviction is least-recently-*used*; the store is thread-safe
(requests resolve instances from worker threads).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Tuple

from repro.serve.wire import InstanceSpec

if False:  # pragma: no cover - typing only
    from repro.core.instance import RMGPInstance


def _build(spec: InstanceSpec) -> "RMGPInstance":
    from repro.core.instance import RMGPInstance
    from repro.datasets import load_dataset, paper_example_instance

    if spec.dataset == "paper":
        return paper_example_instance()
    # use_cache=False: the LRU here is the one bounded cache; the
    # registry's unbounded process cache would defeat max_instances.
    data = load_dataset(
        spec.dataset,
        num_users=spec.users,
        num_events=spec.events,
        seed=spec.seed,
        use_cache=False,
    )
    return RMGPInstance(data.graph, data.event_ids, data.cost_matrix())


class InstanceStore:
    """Bounded create-or-fetch cache of built instances."""

    def __init__(self, max_instances: int = 8) -> None:
        if max_instances < 1:
            raise ValueError("max_instances must be >= 1")
        self.max_instances = max_instances
        self._lock = threading.Lock()
        self._instances: "OrderedDict[Tuple[Any, ...], Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, spec: InstanceSpec) -> Tuple["RMGPInstance", bool]:
        """The resident instance for ``spec`` (built on miss) + hit flag.

        Building runs outside the lock — a slow cold build must not
        stall hits on other keys.  Two racing cold requests for the
        same spec may both build; the second build wins the slot, which
        is correct (builds are deterministic) if mildly wasteful.
        """
        key = spec.key()
        with self._lock:
            instance = self._instances.get(key)
            if instance is not None:
                self._instances.move_to_end(key)
                self._hits += 1
                return instance, True
            self._misses += 1
        instance = _build(spec)
        with self._lock:
            self._instances[key] = instance
            self._instances.move_to_end(key)
            while len(self._instances) > self.max_instances:
                self._instances.popitem(last=False)
                self._evictions += 1
        return instance, False

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "resident": len(self._instances),
                "max_instances": self.max_instances,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "keys": [list(key) for key in self._instances],
            }
