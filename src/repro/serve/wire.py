"""The versioned wire schema of ``POST /v1/solve`` requests.

Every request body is validated *before* a job is queued, with error
messages carrying full field paths (``request.options.seed: expected
int, got str``) so a misconfigured client never burns a worker slot.
The schema deliberately reuses the library's own contracts:

* ``options`` is exactly :meth:`repro.api.SolveOptions.from_dict`;
* ``solver_kwargs`` keys are checked against the registry
  implementation's signature
  (:func:`repro.core.registry.accepted_parameters`) minus the
  parameters that cannot ride the wire (live objects);
* responses embed the frozen ``repro-result/v1`` payload.

Bumping any of these shapes means bumping :data:`API_VERSION` — the URL
prefix *is* the schema version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.api import SolveOptions
from repro.core.registry import (
    SOLVERS,
    accepted_parameters,
    canonical_solver_name,
)
from repro.errors import ConfigurationError
from repro.obs.context import parse_traceparent

#: The wire version; the URL prefix of every versioned endpoint.
API_VERSION = "v1"

#: Request priority classes: ``interactive`` jobs are dequeued ahead of
#: ``batch`` jobs at the configured weight (see ``ServeConfig``).
PRIORITIES = ("interactive", "batch")

#: Dataset families the instance spec accepts.  ``"paper"`` is the
#: running example of Figure 2 (fixed size; users/events ignored).
INSTANCE_DATASETS = ("gowalla", "foursquare", "paper")

#: Registry parameters that never ride the wire: live objects, values
#: with dedicated request fields, or server-managed plumbing.
_FORBIDDEN_SOLVER_KWARGS = frozenset(
    {
        "recorder",
        "budget",
        "cancel_token",
        "mutations",
        "warm_start",
        "resume_from",
        "checkpoint_path",
        "checkpoint_every",
        "deadline_seconds",
        "round_budget_seconds",
    }
)

#: JSON scalar/structure types allowed for wire solver kwargs.
_WIRE_VALUE_TYPES = (str, int, float, bool, list)

_SPEC_DEFAULTS = {"dataset": "gowalla", "users": 200, "events": 8, "seed": 0}


def _expect(
    payload: Dict[str, Any],
    key: str,
    types: tuple,
    path: str,
    default: Any = None,
) -> Any:
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) and bool not in types:
        raise ConfigurationError(
            f"{path}.{key}: expected "
            f"{'/'.join(t.__name__ for t in types)}, got bool"
        )
    if not isinstance(value, types):
        raise ConfigurationError(
            f"{path}.{key}: expected "
            f"{'/'.join(t.__name__ for t in types)}, "
            f"got {type(value).__name__}"
        )
    return value


@dataclass(frozen=True)
class InstanceSpec:
    """What graph to solve on — the LRU instance-store key.

    ``alpha`` is *not* part of the key: the store keeps one resident
    instance per graph and the solve clones it per-request via
    ``SolveOptions.alpha``, so mixed-α traffic shares hot instances.
    """

    dataset: str = "gowalla"
    users: int = 200
    events: int = 8
    seed: int = 0

    @classmethod
    def from_dict(
        cls, payload: Any, path: str = "request.instance"
    ) -> "InstanceSpec":
        if payload is None:
            payload = {}
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"{path}: expected an object, got {type(payload).__name__}"
            )
        unknown = set(payload) - set(_SPEC_DEFAULTS)
        if unknown:
            raise ConfigurationError(
                f"{path}.{sorted(unknown)[0]}: unknown field (expected one "
                f"of: {', '.join(sorted(_SPEC_DEFAULTS))})"
            )
        dataset = _expect(payload, "dataset", (str,), path,
                          _SPEC_DEFAULTS["dataset"])
        if dataset not in INSTANCE_DATASETS:
            raise ConfigurationError(
                f"{path}.dataset: unknown dataset {dataset!r} "
                f"(expected one of: {', '.join(INSTANCE_DATASETS)})"
            )
        users = _expect(payload, "users", (int,), path, _SPEC_DEFAULTS["users"])
        events = _expect(payload, "events", (int,), path,
                         _SPEC_DEFAULTS["events"])
        seed = _expect(payload, "seed", (int,), path, _SPEC_DEFAULTS["seed"])
        if users < 2:
            raise ConfigurationError(f"{path}.users: must be >= 2, got {users}")
        if events < 1:
            raise ConfigurationError(
                f"{path}.events: must be >= 1, got {events}"
            )
        return cls(dataset=dataset, users=users, events=events, seed=seed)

    def key(self) -> Tuple[Any, ...]:
        if self.dataset == "paper":
            return ("paper",)
        return (self.dataset, self.users, self.events, self.seed)

    def to_dict(self) -> Dict[str, Any]:
        if self.dataset == "paper":
            return {"dataset": "paper"}
        return {
            "dataset": self.dataset,
            "users": self.users,
            "events": self.events,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class SolveRequest:
    """One validated ``POST /v1/solve`` body.

    ``trace_id`` is the request's W3C trace id: parsed from an optional
    body-level ``traceparent`` field (which beats the HTTP header of the
    same name — a body survives proxies that strip headers), or stamped
    in by the server from the header / freshly generated.  It is never
    part of the solve semantics: assignments are byte-identical whatever
    its value.
    """

    instance: InstanceSpec
    solver: str = "gt"
    options: Dict[str, Any] = field(default_factory=dict)
    solver_kwargs: Dict[str, Any] = field(default_factory=dict)
    wait: bool = True
    stream: bool = False
    include_assignment: bool = False
    priority: str = "interactive"
    trace_id: Optional[str] = None

    _KEYS = (
        "instance",
        "solver",
        "options",
        "solver_kwargs",
        "wait",
        "stream",
        "include_assignment",
        "priority",
        "traceparent",
    )

    @classmethod
    def from_dict(cls, payload: Any, path: str = "request") -> "SolveRequest":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"{path}: expected an object, got {type(payload).__name__}"
            )
        unknown = set(payload) - set(cls._KEYS)
        if unknown:
            raise ConfigurationError(
                f"{path}.{sorted(unknown)[0]}: unknown field (expected one "
                f"of: {', '.join(cls._KEYS)})"
            )
        solver = _expect(payload, "solver", (str,), path, "gt")
        if solver not in SOLVERS:
            raise ConfigurationError(
                f"{path}.solver: unknown solver {solver!r}; expected one of "
                f"{sorted(SOLVERS)}"
            )
        spec = InstanceSpec.from_dict(
            payload.get("instance"), f"{path}.instance"
        )

        options = payload.get("options") or {}
        # Validate eagerly (types, unknown keys, backend/workers) so the
        # error surfaces as a 400, not inside a worker thread.
        SolveOptions.from_dict(options, field_prefix=f"{path}.options")

        kwargs = payload.get("solver_kwargs") or {}
        if not isinstance(kwargs, dict):
            raise ConfigurationError(
                f"{path}.solver_kwargs: expected an object, got "
                f"{type(kwargs).__name__}"
            )
        accepted = accepted_parameters(SOLVERS[solver])
        for key, value in kwargs.items():
            if key in _FORBIDDEN_SOLVER_KWARGS:
                raise ConfigurationError(
                    f"{path}.solver_kwargs.{key}: not a wire parameter "
                    "(use the dedicated request/options field, or an "
                    "in-process partition() call)"
                )
            if key not in accepted:
                raise ConfigurationError(
                    f"{path}.solver_kwargs.{key}: solver "
                    f"{canonical_solver_name(solver)!r} does not accept it "
                    f"(accepts: {', '.join(sorted(accepted - {'instance'}))})"
                )
            if value is not None and not isinstance(value, _WIRE_VALUE_TYPES):
                raise ConfigurationError(
                    f"{path}.solver_kwargs.{key}: expected a JSON value, "
                    f"got {type(value).__name__}"
                )

        wait = _expect(payload, "wait", (bool,), path, True)
        stream = _expect(payload, "stream", (bool,), path, False)
        include = _expect(payload, "include_assignment", (bool,), path, False)
        priority = _expect(payload, "priority", (str,), path, "interactive")
        if priority not in PRIORITIES:
            raise ConfigurationError(
                f"{path}.priority: unknown priority {priority!r} "
                f"(expected one of: {', '.join(PRIORITIES)})"
            )
        if stream and not wait:
            raise ConfigurationError(
                f"{path}.stream: streaming implies waiting; "
                "drop \"wait\": false"
            )
        traceparent = _expect(payload, "traceparent", (str,), path)
        trace_id = None
        if traceparent is not None:
            trace_id = parse_traceparent(traceparent)
            if trace_id is None:
                raise ConfigurationError(
                    f"{path}.traceparent: malformed W3C traceparent "
                    f"(expected 00-<32 hex>-<16 hex>-<2 hex>, got "
                    f"{traceparent!r})"
                )
        return cls(
            instance=spec,
            solver=solver,
            options=dict(options),
            solver_kwargs=dict(kwargs),
            wait=wait,
            stream=stream,
            include_assignment=include,
            priority=priority,
            trace_id=trace_id,
        )

    def build_options(
        self,
        default_deadline_seconds: Optional[float],
        cancel_token,
        recorder=None,
    ) -> SolveOptions:
        """The in-process options of this request's job.

        The wire options are rebuilt through the same ``from_dict``
        contract as library callers use, then composed with the
        server-side runtime objects: the job's
        :class:`~repro.runtime.CancelToken`, the per-request recorder,
        and — when the request did not pin one — the server's default
        deadline.
        """
        merged = dict(self.options)
        if (
            default_deadline_seconds is not None
            and merged.get("deadline_seconds") is None
        ):
            merged["deadline_seconds"] = default_deadline_seconds
        options = SolveOptions.from_dict(merged)
        fields_by_name = {
            name: getattr(options, name)
            for name in options.__dataclass_fields__
        }
        fields_by_name["cancel_token"] = cancel_token
        if recorder is not None:
            fields_by_name["recorder"] = recorder
        return SolveOptions(**fields_by_name)

    def summary(self) -> Dict[str, Any]:
        """JSON description echoed in job records."""
        return {
            "instance": self.instance.to_dict(),
            "solver": self.solver,
            "options": dict(self.options),
            "solver_kwargs": dict(self.solver_kwargs),
            "priority": self.priority,
        }
