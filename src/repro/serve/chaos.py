"""A fault-injecting TCP proxy for serving-layer chaos tests.

:class:`ChaosProxy` sits between a client and a
:class:`~repro.serve.server.SolveServer` and misbehaves on purpose, one
fault class per accepted connection, chosen deterministically from a
seeded :class:`ChaosPlan` in accept order:

* ``pass`` — faithful bidirectional forwarding (the control group);
* ``drop`` — accept, then close immediately (connection reset);
* ``delay`` — hold the first client bytes for a beat before
  forwarding (tests the server's read patience, not its parser);
* ``blackhole`` — swallow the request and answer nothing until the
  hold expires (drives client timeouts / the server's write stall);
* ``trickle`` — forward the response a few bytes at a time (slow
  consumer; exercises the streaming write path under backpressure);
* ``garble`` — flip bits in the first request segment (the server
  must answer with a 4xx envelope or close, never crash or emit an
  invalid body).

Everything is plain ``socket`` + ``threading`` (the proxy must not
share an event loop with the server under test), and every fault is a
pure function of ``(seed, connection index)`` — a failing chaos run
replays exactly.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError

#: Fault classes in cumulative-draw order (``pass`` takes the rest).
FAULT_KINDS = ("drop", "delay", "blackhole", "trickle", "garble", "pass")

_CHUNK = 65536


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded fault mix: per-connection probabilities of each fault.

    The probabilities must sum to at most 1; the remainder is the
    ``pass`` (no-fault) rate.  ``fault_for(index)`` is deterministic —
    the same seed and index always yield the same fault, so a chaos
    failure reproduces from its seed alone.
    """

    seed: int = 0
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    blackhole_rate: float = 0.0
    trickle_rate: float = 0.0
    garble_rate: float = 0.0
    delay_seconds: float = 0.05
    blackhole_seconds: float = 0.25
    trickle_chunk_bytes: int = 64
    trickle_interval_seconds: float = 0.005

    def __post_init__(self) -> None:
        rates = (
            self.drop_rate,
            self.delay_rate,
            self.blackhole_rate,
            self.trickle_rate,
            self.garble_rate,
        )
        for rate in rates:
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"chaos rates must be in [0, 1], got {rate!r}"
                )
        if sum(rates) > 1.0 + 1e-9:
            raise ConfigurationError(
                f"chaos rates must sum to <= 1, got {sum(rates):g}"
            )
        if self.delay_seconds < 0 or self.blackhole_seconds < 0:
            raise ConfigurationError("chaos hold times must be >= 0")
        if self.trickle_chunk_bytes < 1:
            raise ConfigurationError(
                "trickle_chunk_bytes must be >= 1, got "
                f"{self.trickle_chunk_bytes}"
            )
        if self.trickle_interval_seconds < 0:
            raise ConfigurationError(
                "trickle_interval_seconds must be >= 0"
            )

    def fault_for(self, index: int) -> str:
        """The fault of the ``index``-th accepted connection."""
        draw = random.Random(f"{self.seed}:{index}").random()
        bound = 0.0
        for kind, rate in (
            ("drop", self.drop_rate),
            ("delay", self.delay_rate),
            ("blackhole", self.blackhole_rate),
            ("trickle", self.trickle_rate),
            ("garble", self.garble_rate),
        ):
            bound += rate
            if draw < bound:
                return kind
        return "pass"

    def describe(self) -> Dict[str, float]:
        return {
            "seed": self.seed,
            "drop": self.drop_rate,
            "delay": self.delay_rate,
            "blackhole": self.blackhole_rate,
            "trickle": self.trickle_rate,
            "garble": self.garble_rate,
        }


def _garble(data: bytes, seed: Tuple[int, int]) -> bytes:
    """Flip a deterministic sprinkle of bits in ``data``."""
    if not data:
        return data
    rng = random.Random(seed)
    out = bytearray(data)
    flips = max(1, len(out) // 16)
    for _ in range(flips):
        out[rng.randrange(len(out))] ^= 1 << rng.randrange(8)
    return bytes(out)


class ChaosProxy:
    """Thread-based fault-injecting TCP proxy in front of one server."""

    def __init__(
        self,
        target: Tuple[str, int],
        plan: Optional[ChaosPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.target = target
        self.plan = plan or ChaosPlan()
        self.host = host
        self._listener = socket.create_server(
            (host, port), reuse_port=False
        )
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._threads: list = []
        self._lock = threading.Lock()
        self._accepted = 0
        self.fault_counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ChaosProxy":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-chaos-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10)
            self._accept_thread = None
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=10)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- plumbing -------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                index = self._accepted
                self._accepted += 1
            fault = self.plan.fault_for(index)
            self.fault_counts[fault] += 1
            thread = threading.Thread(
                target=self._handle,
                args=(client, index, fault),
                name=f"repro-chaos-{index}-{fault}",
                daemon=True,
            )
            with self._lock:
                self._threads.append(thread)
            thread.start()

    def _handle(self, client: socket.socket, index: int, fault: str) -> None:
        try:
            if fault == "drop":
                # RST rather than FIN where the platform allows it: the
                # abrupt variant is the harsher client-visible failure.
                try:
                    client.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        b"\x01\x00\x00\x00\x00\x00\x00\x00",
                    )
                except OSError:
                    pass
                client.close()
                return
            if fault == "blackhole":
                client.settimeout(0.2)
                deadline = time.monotonic() + self.plan.blackhole_seconds
                while (
                    time.monotonic() < deadline
                    and not self._stop.is_set()
                ):
                    try:
                        if client.recv(_CHUNK) == b"":
                            break
                    except socket.timeout:
                        continue
                    except OSError:
                        break
                client.close()
                return
            upstream = socket.create_connection(self.target, timeout=10)
        except OSError:
            try:
                client.close()
            except OSError:
                pass
            return
        try:
            self._pump_pair(client, upstream, index, fault)
        finally:
            for sock in (client, upstream):
                try:
                    sock.close()
                except OSError:
                    pass

    def _pump_pair(
        self,
        client: socket.socket,
        upstream: socket.socket,
        index: int,
        fault: str,
    ) -> None:
        first_request_chunk = fault in ("delay", "garble")

        def _to_upstream() -> None:
            nonlocal first_request_chunk
            while not self._stop.is_set():
                try:
                    data = client.recv(_CHUNK)
                except OSError:
                    break
                if not data:
                    break
                if first_request_chunk:
                    if fault == "delay":
                        time.sleep(self.plan.delay_seconds)
                    elif fault == "garble":
                        data = _garble(data, f"{self.plan.seed}:{index}")
                    first_request_chunk = False
                try:
                    upstream.sendall(data)
                except OSError:
                    break
            try:
                upstream.shutdown(socket.SHUT_WR)
            except OSError:
                pass

        def _to_client() -> None:
            while not self._stop.is_set():
                try:
                    data = upstream.recv(_CHUNK)
                except OSError:
                    break
                if not data:
                    break
                try:
                    if fault == "trickle":
                        step = self.plan.trickle_chunk_bytes
                        for offset in range(0, len(data), step):
                            client.sendall(data[offset:offset + step])
                            time.sleep(self.plan.trickle_interval_seconds)
                    else:
                        client.sendall(data)
                except OSError:
                    break
            try:
                client.shutdown(socket.SHUT_WR)
            except OSError:
                pass

        up = threading.Thread(target=_to_upstream, daemon=True)
        down = threading.Thread(target=_to_client, daemon=True)
        up.start()
        down.start()
        up.join()
        down.join()
