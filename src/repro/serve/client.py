"""Stdlib client for the solve service, plus an in-process harness.

:class:`ServeClient` wraps ``http.client`` (no third-party HTTP stack)
and mirrors the wire API one method per endpoint.  Server-side 4xx
validation errors are re-raised as
:class:`~repro.errors.ConfigurationError` carrying the server's
field-path message, so a misconfigured request fails the same way over
the wire as it does in-process.

Resilience is opt-in via :class:`RetryPolicy`: the client then retries
exactly the failures the ``repro-error/v1`` envelope marks retryable
(429 admission rejections, 503 shed/draining, read timeouts) plus
connection-refused — never 400s (retrying verbatim cannot succeed) and
never 500s (the solve may have side effects worth inspecting).  Backoff
is exponential with decorrelated jitter, clamped per attempt, floored
by the server's ``Retry-After`` hint, and bounded by a total wall-clock
budget.

:class:`EmbeddedServer` runs a :class:`~repro.serve.server.SolveServer`
on a background thread with its own event loop — the harness used by
tests and the load-generator benchmark::

    with EmbeddedServer(ServeConfig(port=0)) as client:
        payload = client.solve({"solver": "gt"})
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.obs.context import TRACEPARENT_HEADER, format_traceparent
from repro.serve.config import ServeConfig
from repro.serve.wire import API_VERSION


class ServerError(RuntimeError):
    """A non-validation HTTP error (429/5xx, unexpected status).

    Carries the machine-readable pieces of the ``repro-error/v1``
    envelope when the server sent one: ``code``, ``retryable`` and the
    ``Retry-After`` hint (seconds) the retry loop honors.
    """

    def __init__(
        self,
        status: int,
        message: str,
        code: Optional[str] = None,
        retryable: bool = False,
        retry_after_seconds: Optional[float] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.code = code
        self.retryable = retryable
        self.retry_after_seconds = retry_after_seconds
        self.payload = payload


@dataclass(frozen=True)
class RetryPolicy:
    """Retry knobs: exponential backoff with decorrelated jitter.

    Each delay is drawn uniformly from ``[base_delay_seconds,
    3 * previous_delay]`` and clamped to ``max_delay_seconds`` — the
    "decorrelated jitter" scheme, which spreads retry storms without the
    lockstep of plain exponential backoff.  A server ``Retry-After``
    floors the drawn delay.  ``budget_seconds`` bounds the total time
    spent across all attempts (sleeps included): the loop gives up with
    the last error rather than start a sleep it cannot afford.

    ``seed`` pins the jitter stream for deterministic tests; ``None``
    (production) seeds from the OS.
    """

    max_attempts: int = 4
    base_delay_seconds: float = 0.05
    max_delay_seconds: float = 2.0
    budget_seconds: float = 30.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"retry.max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_seconds <= 0:
            raise ConfigurationError(
                "retry.base_delay_seconds must be positive, got "
                f"{self.base_delay_seconds}"
            )
        if self.max_delay_seconds < self.base_delay_seconds:
            raise ConfigurationError(
                "retry.max_delay_seconds must be >= base_delay_seconds"
            )
        if self.budget_seconds <= 0:
            raise ConfigurationError(
                f"retry.budget_seconds must be positive, got "
                f"{self.budget_seconds}"
            )

    def next_delay(
        self,
        rng: random.Random,
        previous_delay: Optional[float],
        retry_after_seconds: Optional[float] = None,
    ) -> float:
        """One decorrelated-jitter delay, floored by ``Retry-After``."""
        previous = (
            previous_delay if previous_delay is not None
            else self.base_delay_seconds
        )
        delay = min(
            self.max_delay_seconds,
            rng.uniform(self.base_delay_seconds, previous * 3),
        )
        if retry_after_seconds is not None:
            delay = max(delay, retry_after_seconds)
        return delay


class ServeClient:
    """One server endpoint; a fresh connection per call (thread-safe).

    ``trace_id`` (constructor default, or per-call on :meth:`solve` /
    :meth:`solve_stream`) propagates a W3C ``traceparent`` header so the
    server joins this client's distributed trace instead of minting a
    fresh id.  The header is built once per logical request, *before*
    the retry loop — every retry of a 429/503 carries the same trace id,
    so the stitched trace shows one request with several admission
    attempts rather than several unrelated requests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8350,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.trace_id = trace_id
        self._rng = random.Random(retry.seed if retry is not None else None)

    # -- plumbing -------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        ok: tuple = (200,),
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        # Trace headers are built once, outside the retry loop: retries
        # of the same logical request reuse the same traceparent.  The
        # kwargs dance keeps `_request_once(method, path, body, ok)`
        # callable without headers (tests monkeypatch that signature).
        kwargs: Dict[str, Any] = {}
        headers = self._trace_headers(trace_id)
        if headers:
            kwargs["headers"] = headers
        if self.retry is None:
            return self._request_once(method, path, body, ok, **kwargs)
        policy = self.retry
        start = time.monotonic()
        previous_delay: Optional[float] = None
        attempt = 0
        while True:
            attempt += 1
            retry_after: Optional[float] = None
            try:
                return self._request_once(method, path, body, ok, **kwargs)
            except ServerError as exc:
                # The envelope's own retryable flag is authoritative:
                # the server knows whether the work started.
                if not exc.retryable or attempt >= policy.max_attempts:
                    raise
                retry_after = exc.retry_after_seconds
                last_error: Exception = exc
            except (ConnectionRefusedError, ConnectionResetError) as exc:
                # The request never reached a handler (refused) or died
                # before a response (reset on these fresh, one-request
                # connections happens before any solve is admitted).
                if attempt >= policy.max_attempts:
                    raise
                last_error = exc
            delay = policy.next_delay(self._rng, previous_delay, retry_after)
            previous_delay = delay
            if time.monotonic() - start + delay > policy.budget_seconds:
                raise last_error
            time.sleep(delay)

    def _trace_headers(
        self, trace_id: Optional[str] = None
    ) -> Dict[str, str]:
        """The outbound ``traceparent`` header (empty when untraced)."""
        trace_id = trace_id or self.trace_id
        if trace_id is None:
            return {}
        return {TRACEPARENT_HEADER: format_traceparent(trace_id)}

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        ok: tuple = (200,),
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        conn = self._connect()
        try:
            data = json.dumps(body).encode() if body is not None else None
            send_headers = dict(headers or {})
            if data:
                send_headers["Content-Type"] = "application/json"
            conn.request(method, path, body=data, headers=send_headers)
            response = conn.getresponse()
            raw = response.read()
            payload = json.loads(raw.decode()) if raw else {}
            if response.status not in ok:
                raise self._as_error(response, payload, raw)
            return payload
        finally:
            conn.close()

    @classmethod
    def _as_error(
        cls, response: Any, payload: Any, raw: bytes
    ) -> Exception:
        """Map a non-2xx response to the typed client exception."""
        message = cls._error_message(payload, raw)
        if response.status == 400:
            return ConfigurationError(message)
        code = None
        retryable = response.status in (429, 503)
        retry_after: Optional[float] = None
        if isinstance(payload, dict) and isinstance(
            payload.get("error"), dict
        ):
            error = payload["error"]
            code = error.get("code")
            if isinstance(error.get("retryable"), bool):
                retryable = error["retryable"]
            value = error.get("retry_after_seconds")
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                retry_after = float(value)
        if retry_after is None:
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass
        return ServerError(
            response.status,
            message,
            code=code,
            retryable=retryable,
            retry_after_seconds=retry_after,
            payload=payload if isinstance(payload, dict) else None,
        )

    @staticmethod
    def _error_message(payload: Any, raw: bytes) -> str:
        if isinstance(payload, dict):
            error = payload.get("error")
            if isinstance(error, dict) and "message" in error:
                return str(error["message"])
            if isinstance(error, str):
                return error
        return raw.decode(errors="replace")

    # -- endpoints ------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", f"/{API_VERSION}/health")

    def solvers(self) -> Dict[str, Any]:
        return self._request("GET", f"/{API_VERSION}/solvers")

    def instances(self) -> Dict[str, Any]:
        return self._request("GET", f"/{API_VERSION}/instances")

    def metrics(self) -> str:
        conn = self._connect()
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServerError(response.status, raw.decode(errors="replace"))
            return raw.decode()
        finally:
            conn.close()

    def solve(
        self, request: Dict[str, Any], trace_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """``POST /v1/solve``.

        With the default ``wait=true`` this returns the finished job
        envelope (``payload["result"]`` is the ``repro-result/v1``
        document).  With ``"wait": false`` it returns the 202 ticket
        (``{"job": ..., "state": "queued", "trace_id": ...}``) for later
        polling.  With a :class:`RetryPolicy`, admission rejections
        (429) and shed or draining responses (503) are retried — those
        are exactly the statuses where the server guarantees the solve
        never started.  ``trace_id`` (or the constructor default) rides
        along as a ``traceparent`` header, identical across retries.
        """
        return self._request(
            "POST",
            f"/{API_VERSION}/solve",
            body=request,
            ok=(200, 202),
            trace_id=trace_id,
        )

    def solve_stream(
        self,
        request: Dict[str, Any],
        trace_id: Optional[str] = None,
    ) -> Iterator[Dict[str, Any]]:
        """``POST /v1/solve`` with ``stream=true``: yield JSONL records.

        Yields the ``{"type": "job"}`` acknowledgement, one
        ``{"type": "round"}`` record per solver round, then the final
        ``{"type": "result"}`` (or ``{"type": "error"}``) record.
        """
        body = dict(request)
        body["stream"] = True
        conn = self._connect()
        try:
            data = json.dumps(body).encode()
            headers = {"Content-Type": "application/json"}
            headers.update(self._trace_headers(trace_id))
            conn.request(
                "POST",
                f"/{API_VERSION}/solve",
                body=data,
                headers=headers,
            )
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                payload = json.loads(raw.decode()) if raw else {}
                raise self._as_error(response, payload, raw)
            # http.client decodes the chunked framing; what remains is
            # newline-delimited JSON.
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode())
            if buffer.strip():
                yield json.loads(buffer.decode())
        finally:
            conn.close()

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", f"/{API_VERSION}/jobs")["jobs"]

    def job(
        self, job_id: str, include_assignment: bool = False
    ) -> Dict[str, Any]:
        path = f"/{API_VERSION}/jobs/{job_id}"
        if include_assignment:
            path += "?assignment=1"
        return self._request("GET", path)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``DELETE /v1/jobs/<id>``; 202 on request, 409 if finished."""
        return self._request(
            "DELETE", f"/{API_VERSION}/jobs/{job_id}", ok=(202, 409)
        )

    def job_trace(self, job_id: str) -> List[Dict[str, Any]]:
        """``GET /v1/jobs/<id>/trace``: parsed ``repro-trace/v2`` records.

        The first record is the meta record; the rest are span/event
        records, server spans first and adopted worker spans grafted
        under them.  409 (``trace_pending``) means poll the job state
        and come back; 404 (``trace_unavailable``) means the server runs
        with tracing disabled.
        """
        conn = self._connect()
        try:
            conn.request("GET", f"/{API_VERSION}/jobs/{job_id}/trace")
            response = conn.getresponse()
            raw = response.read()
            if response.status != 200:
                payload = json.loads(raw.decode()) if raw else {}
                raise self._as_error(response, payload, raw)
            return [
                json.loads(line)
                for line in raw.decode().splitlines()
                if line.strip()
            ]
        finally:
            conn.close()

    def wait_for(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.02
    ) -> Dict[str, Any]:
        """Poll ``GET /v1/jobs/<id>`` until the job leaves the pool."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["state"] in ("done", "cancelled", "failed", "shed"):
                return payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload['state']!r} "
                    f"after {timeout}s"
                )
            time.sleep(poll)


class EmbeddedServer:
    """A :class:`SolveServer` on a background thread, for tests/benches.

    Runs its own event loop; entering the context starts the server and
    returns a :class:`ServeClient` bound to the resolved (possibly
    ephemeral) port.  Exiting stops the loop and joins the thread.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        import asyncio

        from repro.serve.server import SolveServer

        self.server = SolveServer(config or ServeConfig(port=0))
        self._asyncio = asyncio
        self._loop: Optional[Any] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> ServeClient:
        asyncio = self._asyncio
        self._loop = asyncio.new_event_loop()

        def _run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.server.start())
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            self._loop.run_forever()
            # Cancel lingering keep-alive connection handlers, then
            # close the listener and drain the worker pool.
            pending = [
                t for t in asyncio.all_tasks(self._loop) if not t.done()
            ]
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        return ServeClient(self.server.config.host, self.server.port)

    def drain(
        self, grace_seconds: Optional[float] = None, wait: bool = True
    ) -> None:
        """Trigger a graceful drain (the in-process stand-in for
        SIGTERM); the HTTP loop keeps serving polls/streams while the
        job table degrades and finishes its in-flight work."""
        self.server.jobs.drain(grace_seconds, wait=wait)

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self._loop = None
        self._thread = None

    def __enter__(self) -> ServeClient:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
