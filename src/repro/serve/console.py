"""Live terminal ops console for the solve service (``repro top``).

A zero-dependency ``top``-style view of one running server: it polls
``GET /v1/health`` and ``GET /metrics`` (the same endpoints a balancer
or Prometheus would scrape — the console adds no server-side state) and
renders queue depth, running/shed/rejected counts, request latency
p50/p99, per-solver traffic, health state, and flight-recorder
activity.  Everything is computed from the Prometheus text exposition,
so the console shows exactly what monitoring sees.

The pieces are separable for tests and scripting:

* :func:`parse_prometheus` — text exposition → ``{(name, labels): value}``;
* :func:`snapshot` — one poll of a :class:`~repro.serve.client.ServeClient`;
* :func:`render` — a :class:`ConsoleSnapshot` → the screen as a string;
* :func:`run_top` — the polling loop behind ``repro top``.
"""

from __future__ import annotations

import math
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TextIO, Tuple

from repro.serve.client import ServeClient

#: Sorted ``((key, value), ...)`` label tuple — the sample dict key.
LabelSet = Tuple[Tuple[str, str], ...]


def parse_prometheus(text: str) -> Dict[Tuple[str, LabelSet], float]:
    """Parse Prometheus text exposition into ``{(name, labels): value}``.

    Handles the subset :func:`repro.obs.exporters.prometheus_text`
    emits: ``name value`` and ``name{k="v",...} value`` lines, comments
    skipped.  Label values in this codebase never contain quotes or
    commas, so the parser splits naively (documented limitation, not a
    general exposition parser).
    """
    samples: Dict[Tuple[str, LabelSet], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_text = line.rpartition(" ")
        if not name_part:
            continue
        try:
            value = float(value_text)
        except ValueError:
            continue
        labels: List[Tuple[str, str]] = []
        if "{" in name_part:
            name, _, label_text = name_part.partition("{")
            label_text = label_text.rstrip("}")
            for piece in label_text.split(","):
                key, eq, raw = piece.partition("=")
                if not eq:
                    continue
                labels.append((key.strip(), raw.strip().strip('"')))
        else:
            name = name_part
        samples[(name, tuple(sorted(labels)))] = value
    return samples


def bucket_quantile(
    buckets: List[Tuple[float, float]], q: float
) -> Optional[float]:
    """Quantile from cumulative ``(le, count)`` Prometheus buckets.

    Mirrors :meth:`repro.obs.metrics.Histogram.quantile`: ``None`` when
    empty, and observations in the ``+Inf`` overflow bucket report the
    last finite boundary.
    """
    if not buckets:
        return None
    ordered = sorted(buckets)
    total = ordered[-1][1]
    if total <= 0:
        return None
    rank = min(max(1, math.ceil(q * total)), total)
    finite = [le for le, _ in ordered if not math.isinf(le)]
    for le, cumulative in ordered:
        if cumulative >= rank:
            if math.isinf(le):
                return finite[-1] if finite else None
            return le
    return finite[-1] if finite else None


@dataclass
class ConsoleSnapshot:
    """One poll of a server: health payload + parsed metric samples."""

    health: Dict[str, Any]
    samples: Dict[Tuple[str, LabelSet], float]

    # -- lookups --------------------------------------------------------
    def value(self, name: str, labels: Optional[Dict[str, str]] = None) -> float:
        key = (name, tuple(sorted((labels or {}).items())))
        return self.samples.get(key, 0.0)

    def by_label(self, name: str, label: str) -> Dict[str, float]:
        """``{label value: sample value}`` of every sample of ``name``."""
        out: Dict[str, float] = {}
        for (sample_name, labelset), value in self.samples.items():
            if sample_name != name:
                continue
            for key, label_value in labelset:
                if key == label:
                    out[label_value] = out.get(label_value, 0.0) + value
        return out

    def latency_quantile_ms(self, q: float) -> Optional[float]:
        buckets: List[Tuple[float, float]] = []
        for (name, labelset), value in self.samples.items():
            if name != "repro_serve_request_ms_bucket":
                continue
            le = dict(labelset).get("le")
            if le is None:
                continue
            buckets.append((float(le), value))
        return bucket_quantile(buckets, q)


def snapshot(client: ServeClient) -> ConsoleSnapshot:
    """Poll ``/v1/health`` and ``/metrics`` once."""
    return ConsoleSnapshot(
        health=client.health(),
        samples=parse_prometheus(client.metrics()),
    )


_STATUS_DECOR = {
    "ok": "OK",
    "degraded": "DEGRADED",
    "overloaded": "OVERLOADED",
    "draining": "DRAINING",
}


def _fmt_ms(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1000:
        return f"{value / 1000:.1f}s"
    return f"{value:g}ms"


def _fmt_counts(counts: Dict[str, float]) -> str:
    if not counts:
        return "-"
    return "  ".join(
        f"{key}={int(value) if value == int(value) else value}"
        for key, value in sorted(counts.items(), key=lambda kv: -kv[1])
    )


def render(snap: ConsoleSnapshot, endpoint: str = "") -> str:
    """The console screen of one snapshot, as a plain string."""
    health = snap.health
    status = str(health.get("status", "unknown"))
    queue = health.get("queue") or {}
    lines = [
        f"repro serve {endpoint}  status {_STATUS_DECOR.get(status, status)}"
        f"  api {health.get('api', '?')}"
        f"  up {health.get('uptime_seconds', 0.0):.0f}s",
        (
            f"queue    depth {int(snap.value('repro_serve_queue_depth'))}"
            f" (bound {queue.get('max_queue', '?')})"
            f"   running {int(snap.value('repro_serve_running'))}"
            f"/{health.get('pool_size', '?')}"
            f"   jobs held {health.get('jobs', '?')}"
        ),
        (
            f"latency  p50 {_fmt_ms(snap.latency_quantile_ms(0.5))}"
            f"   p99 {_fmt_ms(snap.latency_quantile_ms(0.99))}"
            + (
                f"   recent p99 {health['recent_p99_ms']:.1f}ms"
                if "recent_p99_ms" in health
                else ""
            )
        ),
        f"jobs     {_fmt_counts(snap.by_label('repro_serve_jobs_total', 'state'))}",
        f"solvers  {_fmt_counts(snap.by_label('repro_serve_requests_total', 'solver'))}",
        (
            f"flow     shed {int(snap.value('repro_serve_shed_total'))}"
            f"   rejected "
            f"{int(sum(snap.by_label('repro_serve_rejected_total', 'policy').values()))}"
            f"   deadline-hits "
            f"{int(snap.value('repro_serve_deadline_hits_total'))}"
            f"   cancels "
            f"{int(snap.value('repro_serve_cancel_requests_total'))}"
        ),
    ]
    triggers = snap.by_label("repro_serve_flight_triggers_total", "reason")
    dumps = int(snap.value("repro_serve_flight_dumps_total"))
    if triggers or dumps:
        lines.append(
            f"flight   dumps {dumps}   triggers {_fmt_counts(triggers)}"
        )
    return "\n".join(lines)


def run_top(
    host: str = "127.0.0.1",
    port: int = 8350,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    clear: bool = True,
    stream: Optional[TextIO] = None,
) -> int:
    """The ``repro top`` loop; returns a process exit code.

    ``iterations=None`` polls until Ctrl-C; ``iterations=1`` is the
    scripting-friendly ``--once`` mode.  An unreachable server renders a
    note instead of crashing, so the console can outlive restarts.
    """
    stream = stream if stream is not None else sys.stdout
    client = ServeClient(host, port, timeout=max(1.0, interval))
    endpoint = f"{host}:{port}"
    count = 0
    try:
        while iterations is None or count < iterations:
            count += 1
            try:
                screen = render(snapshot(client), endpoint)
            except (ConnectionRefusedError, OSError) as exc:
                screen = f"repro serve {endpoint}  UNREACHABLE ({exc})"
            if clear and stream.isatty():
                stream.write("\x1b[2J\x1b[H")
            stream.write(screen + "\n")
            stream.flush()
            if iterations is not None and count >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    return 0
