"""The job table: bounded admission queue + worker pool over ``partition()``.

Every ``POST /v1/solve`` becomes a :class:`Job`: a per-request
:class:`~repro.runtime.CancelToken` (``DELETE /v1/jobs/<id>`` cancels
cooperatively at the next round boundary), the request's deadline
composed into a :class:`~repro.runtime.RuntimeBudget` the table keeps a
handle on (so a graceful drain can tighten it mid-solve), and a
:class:`RequestRecorder` whose per-round telemetry hook feeds both the
chunked progress stream and the server-wide metrics registry scraped at
``/metrics``.

Overload protection is explicit, not emergent: the
:class:`AdmissionQueue` bounds *queued* work (``max_queue``), applies a
configurable full-queue policy (``reject`` → 429 with ``Retry-After``;
``shed-expired`` → drop queued requests whose deadline already elapsed
while waiting, finishing them as ``stop_reason="shed"``), and dequeues
``interactive`` ahead of ``batch`` traffic at a configured weight.  The
previous design queued unboundedly inside a ``ThreadPoolExecutor`` —
under sustained overload ``_jobs``/``_order`` grew without limit because
only *finished* jobs were ever evicted.

Interrupted solves are *normal* results here (``stop_reason`` of
``"deadline"``/``"cancelled"`` with a valid best-so-far assignment): the
runtime layer's anytime guarantee is what makes load shedding and
graceful drain possible without ever returning an invalid assignment.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.context import new_trace_id
from repro.obs.exporters import trace_records
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import TraceRecorder
from repro.runtime.budget import RuntimeBudget
from repro.runtime.token import CancelToken
from repro.serve.store import InstanceStore
from repro.serve.wire import SolveRequest

#: Job lifecycle states.  ``cancelled`` and ``done`` both carry a valid
#: result; ``failed`` carries an error message; ``shed`` means the job
#: was dropped from the admission queue before a worker picked it up.
JOB_STATES = ("queued", "running", "done", "cancelled", "failed", "shed")

#: Request-latency histogram boundaries (milliseconds).
LATENCY_BOUNDARIES_MS = (
    0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
    1_000, 2_500, 5_000, 10_000, 30_000, 60_000,
)

#: Hard cap on how long drain/shutdown wait for round boundaries after
#: cancelling stragglers — a deadlocked kernel must not hang shutdown.
_DRAIN_HARD_CAP_SECONDS = 30.0


class AdmissionRejected(Exception):
    """The admission queue is full; the request was not queued.

    Carries the machine-readable pieces of the 429 response: a retry
    hint (the server translates it into ``Retry-After``) and the bound
    that was hit.
    """

    def __init__(self, message: str, retry_after_seconds: float) -> None:
        super().__init__(message)
        self.message = message
        self.retry_after_seconds = retry_after_seconds


class ServiceDraining(Exception):
    """The server is draining; new work is refused with 503."""

    def __init__(self, message: str, retry_after_seconds: float) -> None:
        super().__init__(message)
        self.message = message
        self.retry_after_seconds = retry_after_seconds


class RequestRecorder(TraceRecorder):
    """Per-request trace recorder that also publishes round progress.

    The solver's own per-round telemetry call (PR 3's
    :meth:`Recorder.round_end`) is the progress feed: each round becomes
    one JSON record pushed to every subscriber of the job, so a
    streaming client watches the frontier drain live without any extra
    instrumentation in the kernels.
    """

    def __init__(self, job: "Job") -> None:
        super().__init__()
        self._job = job

    def round_end(
        self,
        span,
        solver: str,
        round_index: int,
        *,
        deviations: int,
        examined: int,
        cost_evaluations: Optional[int] = None,
        frontier_fn: Optional[Callable[[], int]] = None,
        potential_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        # Evaluate the lazy callables once and memoize, so the super
        # call does not pay for (or double-count) a second evaluation.
        frontier = int(frontier_fn()) if frontier_fn is not None else examined
        potential = float(potential_fn()) if potential_fn is not None else None
        super().round_end(
            span,
            solver,
            round_index,
            deviations=deviations,
            examined=examined,
            cost_evaluations=cost_evaluations,
            frontier_fn=(lambda: frontier) if frontier_fn is not None else None,
            potential_fn=(
                (lambda: potential) if potential_fn is not None else None
            ),
        )
        record: Dict[str, Any] = {
            "type": "round",
            "job": self._job.id,
            "solver": solver,
            "round": round_index,
            "deviations": deviations,
            "players_examined": examined,
            "frontier": frontier,
        }
        if potential is not None:
            record["potential"] = potential
        self._job.publish(record)


class Job:
    """One solve request moving through the admission queue and pool.

    Every job carries a W3C trace id — the request's own (body
    ``traceparent`` beats the HTTP header) or a fresh random one — even
    with tracing disabled, so envelopes and streams are always
    correlatable.  With tracing enabled the table also attaches a
    :class:`RequestRecorder` at admission whose span tree
    (``serve.request`` > ``serve.queue_wait`` + ``job.solve`` > solver
    spans) backs ``GET /v1/jobs/<id>/trace`` and the flight recorder.
    """

    def __init__(
        self,
        job_id: str,
        request: SolveRequest,
        trace_id: Optional[str] = None,
    ) -> None:
        self.id = job_id
        self.request = request
        self.trace_id = request.trace_id or trace_id or new_trace_id()
        #: Set at admission when the table traces requests; retained
        #: after the job finishes for the trace endpoint.
        self.recorder: Optional["RequestRecorder"] = None
        self.queue_wait_seconds: Optional[float] = None
        self._request_span = None
        self._queue_span = None
        self.token = CancelToken()
        self.state = "queued"
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.result = None  # PartitionResult
        self.error: Optional[str] = None
        self.cache_hit: Optional[bool] = None
        self.cancel_requested = False
        #: The live runtime budget, set when a worker picks the job up.
        #: A drain tightens its deadline so the solve degrades in place.
        self.budget: Optional[RuntimeBudget] = None
        #: Per-job checkpoint path (set when the table is configured
        #: with a drain checkpoint dir); ``checkpoint_persisted`` marks
        #: that a drain kept the file for a post-restart resume.
        self.checkpoint_path: Optional[str] = None
        self.checkpoint_persisted = False
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._done_callbacks: List[Callable[[], None]] = []
        self._subscribers: List[Any] = []

    # -- progress -------------------------------------------------------
    def subscribe(self, sink: Any) -> None:
        """Attach a progress sink (``sink.publish(record)``, thread-safe)."""
        with self._lock:
            self._subscribers.append(sink)

    def unsubscribe(self, sink: Any) -> None:
        """Detach a sink (dead-subscriber reaping; unknown sinks ignored)."""
        with self._lock:
            try:
                self._subscribers.remove(sink)
            except ValueError:
                pass

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def publish(self, record: Dict[str, Any]) -> None:
        record.setdefault("trace_id", self.trace_id)
        with self._lock:
            sinks = list(self._subscribers)
        for sink in sinks:
            sink.publish(record)

    # -- completion -----------------------------------------------------
    def add_done_callback(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` once the job finishes (immediately if it has).

        Called from the worker thread that finishes the job — callbacks
        must be cheap and thread-safe (the server passes
        ``loop.call_soon_threadsafe`` trampolines).
        """
        with self._lock:
            if not self._done.is_set():
                self._done_callbacks.append(callback)
                return
        callback()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def _finish(self, state: str, result=None, error: Optional[str] = None) -> None:
        with self._lock:
            self.state = state
            self.result = result
            self.error = error
            self.finished = time.time()
            self._done.set()
            callbacks = list(self._done_callbacks)
            self._done_callbacks.clear()
        for callback in callbacks:
            callback()

    # -- wire form ------------------------------------------------------
    def to_dict(self, include_assignment: bool = False) -> Dict[str, Any]:
        """The job envelope of ``GET /v1/jobs/<id>``."""
        with self._lock:
            payload: Dict[str, Any] = {
                "job": self.id,
                "state": self.state,
                "trace_id": self.trace_id,
                "request": self.request.summary(),
                "created": self.created,
            }
            if self.started is not None:
                payload["started"] = self.started
            if self.finished is not None:
                payload["finished"] = self.finished
                payload["wall_seconds"] = self.finished - self.created
            if self.cache_hit is not None:
                payload["instance_cache_hit"] = self.cache_hit
            if self.cancel_requested:
                payload["cancel_requested"] = True
            if self.state == "shed":
                payload["stop_reason"] = "shed"
            if self.checkpoint_persisted and self.checkpoint_path is not None:
                payload["checkpoint"] = self.checkpoint_path
            if self.result is not None:
                payload["result"] = self.result.to_dict(
                    include_assignment=include_assignment
                    or self.request.include_assignment
                )
            if self.error is not None:
                payload["error"] = self.error
            return payload


class _Entry:
    """One queued job plus its admission-time deadline bookkeeping."""

    __slots__ = ("job", "enqueued_at", "expires_at")

    def __init__(
        self, job: Job, enqueued_at: float, expires_at: Optional[float]
    ) -> None:
        self.job = job
        self.enqueued_at = enqueued_at
        self.expires_at = expires_at


class AdmissionQueue:
    """Bounded two-class FIFO with weighted dequeue and load shedding.

    ``offer`` admits a job or raises :class:`AdmissionRejected` — the
    queue can never hold more than ``max_queue`` entries, which is the
    invariant that keeps the job table bounded under sustained overload.
    Under the ``shed-expired`` policy, a full queue first drops entries
    whose request deadline already elapsed while they waited (the client
    has necessarily given up on them), and ``take`` skips expired
    entries instead of burning a worker slot on them.

    Dequeue is weighted: with both classes non-empty, ``weight``
    interactive jobs are taken per batch job, so batch backfill cannot
    starve interactive traffic (and vice versa — batch always gets its
    1-in-``weight+1`` turn).
    """

    def __init__(
        self,
        max_queue: int,
        policy: str = "reject",
        interactive_weight: int = 4,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_queue = max_queue
        self.policy = policy
        self.interactive_weight = interactive_weight
        self._clock = clock
        self._cond = threading.Condition()
        self._interactive: "deque[_Entry]" = deque()
        self._batch: "deque[_Entry]" = deque()
        self._credits = interactive_weight
        self._closed = False
        self.max_depth_seen = 0
        self.shed_total = 0

    def depth(self) -> int:
        with self._cond:
            return self._depth_locked()

    def _depth_locked(self) -> int:
        return len(self._interactive) + len(self._batch)

    def offer(
        self,
        job: Job,
        deadline_seconds: Optional[float],
        retry_after_seconds: float,
    ) -> List[Job]:
        """Admit ``job`` (returns jobs shed to make room) or reject it."""
        now = self._clock()
        expires = (
            now + deadline_seconds if deadline_seconds is not None else None
        )
        with self._cond:
            shed: List[Job] = []
            if self._depth_locked() >= self.max_queue and (
                self.policy == "shed-expired"
            ):
                shed = self._purge_expired_locked(now)
            if self._depth_locked() >= self.max_queue:
                raise AdmissionRejected(
                    f"admission queue is full "
                    f"({self._depth_locked()} queued, bound {self.max_queue})",
                    retry_after_seconds,
                )
            entry = _Entry(job, now, expires)
            if job.request.priority == "batch":
                self._batch.append(entry)
            else:
                self._interactive.append(entry)
            self.max_depth_seen = max(
                self.max_depth_seen, self._depth_locked()
            )
            self._cond.notify()
        return shed

    def _purge_expired_locked(self, now: float) -> List[Job]:
        shed: List[Job] = []
        for queue in (self._interactive, self._batch):
            kept = [
                entry for entry in queue
                if entry.expires_at is None or entry.expires_at > now
            ]
            if len(kept) != len(queue):
                shed.extend(
                    entry.job for entry in queue
                    if entry.expires_at is not None and entry.expires_at <= now
                )
                queue.clear()
                queue.extend(kept)
        self.shed_total += len(shed)
        return shed

    def take(self, timeout: float) -> Tuple[Optional[Job], List[Job]]:
        """Next job by weighted priority, plus any entries shed en route.

        Returns ``(None, shed)`` on timeout or once the queue is closed;
        callers must finalize the shed jobs (they never reach a worker).
        """
        with self._cond:
            end = self._clock() + timeout
            while True:
                entry, shed = self._pop_locked()
                if entry is not None or shed:
                    return (entry.job if entry else None, shed)
                if self._closed:
                    return None, []
                remaining = end - self._clock()
                if remaining <= 0:
                    return None, []
                self._cond.wait(remaining)

    def _pop_locked(self) -> Tuple[Optional[_Entry], List[Job]]:
        shed: List[Job] = []
        while True:
            has_interactive = bool(self._interactive)
            has_batch = bool(self._batch)
            if not has_interactive and not has_batch:
                return None, shed
            if has_interactive and (not has_batch or self._credits > 0):
                queue = self._interactive
            else:
                queue = self._batch
            if has_interactive and has_batch:
                if queue is self._interactive:
                    self._credits -= 1
                else:
                    self._credits = self.interactive_weight
            entry = queue.popleft()
            if (
                self.policy == "shed-expired"
                and entry.expires_at is not None
                and self._clock() >= entry.expires_at
            ):
                shed.append(entry.job)
                self.shed_total += 1
                continue
            return entry, shed

    def drain_all(self) -> List[Job]:
        """Remove and return every queued job (terminal shutdown path)."""
        with self._cond:
            jobs = [entry.job for entry in self._interactive]
            jobs += [entry.job for entry in self._batch]
            self._interactive.clear()
            self._batch.clear()
            return jobs

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "depth": self._depth_locked(),
                "interactive": len(self._interactive),
                "batch": len(self._batch),
                "max_queue": self.max_queue,
                "max_depth_seen": self.max_depth_seen,
                "policy": self.policy,
                "shed_total": self.shed_total,
            }


class JobTable:
    """Admission, execution, retention, cancellation and drain of jobs."""

    def __init__(
        self,
        store: InstanceStore,
        registry: MetricsRegistry,
        pool_size: int = 4,
        max_jobs: int = 256,
        max_queue: int = 64,
        admission_policy: str = "reject",
        interactive_weight: int = 4,
        default_deadline_seconds: Optional[float] = None,
        drain_grace_seconds: float = 5.0,
        drain_checkpoint_dir: Optional[str] = None,
        trace_requests: bool = True,
        flight: Optional[FlightRecorder] = None,
    ) -> None:
        self.store = store
        self.registry = registry
        self.pool_size = pool_size
        self.max_jobs = max_jobs
        self.default_deadline_seconds = default_deadline_seconds
        self.drain_grace_seconds = drain_grace_seconds
        self.drain_checkpoint_dir = drain_checkpoint_dir
        self.trace_requests = trace_requests
        self.flight = flight
        self.queue = AdmissionQueue(
            max_queue=max_queue,
            policy=admission_policy,
            interactive_weight=interactive_weight,
        )
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._running: Dict[str, Job] = {}
        self._next_id = 0
        self._draining = False
        self._drain_deadline: Optional[float] = None
        self._latencies_ms: "deque[float]" = deque(maxlen=256)
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{index}",
                daemon=True,
            )
            for index in range(pool_size)
        ]
        for worker in self._workers:
            worker.start()

    # -- lifecycle ------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def drain_remaining_seconds(self) -> float:
        """Seconds of grace left in the current drain (0 when elapsed)."""
        deadline = self._drain_deadline
        if deadline is None:
            return 0.0
        return max(0.0, deadline - time.monotonic())

    def submit(
        self,
        request: SolveRequest,
        sink: Any = None,
        trace_id: Optional[str] = None,
    ) -> Job:
        """Admit a job or raise; ``sink`` (if given) is subscribed to
        progress records before the worker can start, so no round is
        missed.  ``trace_id`` (from the HTTP ``traceparent`` header) is
        adopted unless the request body pinned its own."""
        if self._draining or self._closed:
            raise ServiceDraining(
                "server is draining; retry against another replica",
                max(1.0, self.drain_remaining_seconds()),
            )
        with self._lock:
            job = Job(f"job-{self._next_id}", request, trace_id=trace_id)
            self._next_id += 1
        if self.trace_requests:
            # Open serve.request + serve.queue_wait *before* the queue
            # offer: queue wait is measured from admission, and the
            # worker thread inherits the open stack through the queue's
            # happens-before (each recorder is touched by exactly one
            # thread at a time).
            recorder = RequestRecorder(job)
            recorder.meta.update(
                {
                    "job": job.id,
                    "trace_id": job.trace_id,
                    "solver": request.solver,
                }
            )
            job.recorder = recorder
            job._request_span = recorder.open_span(
                "serve.request",
                job=job.id,
                solver=request.solver,
                priority=request.priority,
                trace_id=job.trace_id,
            )
            job._queue_span = recorder.open_span(
                "serve.queue_wait", job=job.id
            )
        if sink is not None:
            job.subscribe(sink)
        deadline = request.options.get("deadline_seconds")
        if deadline is None:
            deadline = self.default_deadline_seconds
        try:
            shed = self.queue.offer(job, deadline, self.retry_after_seconds())
        except AdmissionRejected:
            self.registry.counter(
                "serve.rejected", {"policy": self.queue.policy}
            ).inc()
            self._set_depth_gauge()
            raise
        with self._lock:
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._evict_finished_locked()
        for victim in shed:
            self._finish_shed(victim, "expired while queued under overload")
        self.registry.counter(
            "serve.requests", {"solver": request.solver}
        ).inc()
        self._set_depth_gauge()
        return job

    def _set_depth_gauge(self) -> None:
        self.registry.gauge("serve.queue_depth").set(self.queue.depth())

    def _evict_finished_locked(self) -> None:
        # Retain at most max_jobs entries; only finished jobs may go.
        # Queued entries are bounded by the admission queue and running
        # ones by the pool, so the table itself stays bounded by
        # max_jobs + max_queue + pool_size under any load.
        if len(self._order) <= self.max_jobs:
            return
        kept: List[str] = []
        excess = len(self._order) - self.max_jobs
        for job_id in self._order:
            job = self._jobs[job_id]
            if excess > 0 and job.state in (
                "done", "cancelled", "failed", "shed"
            ):
                del self._jobs[job_id]
                excess -= 1
            else:
                kept.append(job_id)
        self._order = kept

    def _finish_shed(self, job: Job, detail: str) -> None:
        """Finalize a job dropped from the queue (it never ran)."""
        message = f"shed before execution: {detail}"
        self.registry.counter("serve.shed").inc()
        self.registry.counter("serve.jobs", {"state": "shed"}).inc()
        if job.recorder is not None:
            job.recorder.event("serve.shed", job=job.id, detail=detail)
        self._close_request_span(job, state="shed")
        self._flight_add(job)
        job.publish(
            {"type": "error", "job": job.id, "code": "shed", "error": message}
        )
        job._finish("shed", error=message)
        if self.flight is not None:
            self.flight.trigger("shed", detail=detail, trace_id=job.trace_id)
        self._set_depth_gauge()

    def _close_request_span(
        self, job: Job, state: str, stop_reason: Optional[str] = None
    ) -> None:
        """Close the job's serve.request span (and anything deeper)."""
        recorder, span = job.recorder, job._request_span
        if recorder is None or span is None:
            return
        span.attrs["state"] = state
        if stop_reason is not None:
            span.attrs["stop_reason"] = stop_reason
        if span.end is None:
            recorder.close_span(span)
        job._request_span = None

    def _flight_add(self, job: Job) -> None:
        """Feed the finished job's trace into the flight ring.

        Runs *before* ``job._finish`` so a subsequent 5xx trigger always
        finds the failing request's spans in the window.  Telemetry
        must never fail a request, hence the blanket except.
        """
        if self.flight is None or job.recorder is None:
            return
        try:
            self.flight.add_trace(trace_records(job.recorder))
        except Exception:  # noqa: BLE001 - telemetry boundary
            traceback.print_exc()

    # -- worker pool ----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job, shed = self.queue.take(timeout=0.1)
            for victim in shed:
                self._finish_shed(victim, "expired while queued")
            if job is None:
                if self._closed and self.queue.depth() == 0:
                    return
                continue
            self._set_depth_gauge()
            if self._draining and self.drain_remaining_seconds() <= 0:
                # The grace budget is gone; answering 503 beats starting
                # a solve that would immediately be cancelled.
                self._finish_shed(job, "drain grace exhausted")
                continue
            self._run(job)

    def _build_options(self, job: Job, recorder: RequestRecorder):
        """Request options + an explicit budget the table holds on to."""
        from repro.api import SolveOptions

        options = job.request.build_options(
            self.default_deadline_seconds, job.token, recorder
        )
        budget = RuntimeBudget(
            deadline_seconds=options.deadline_seconds,
            round_budget_seconds=options.round_budget_seconds,
            token=job.token,
        )
        fields = {
            name: getattr(options, name)
            for name in options.__dataclass_fields__
        }
        fields["budget"] = budget
        fields["deadline_seconds"] = None
        fields["round_budget_seconds"] = None
        fields["cancel_token"] = None
        if (
            self.drain_checkpoint_dir is not None
            and fields.get("checkpoint_path") is None
        ):
            job.checkpoint_path = os.path.join(
                self.drain_checkpoint_dir, f"{job.id}.checkpoint.json"
            )
            fields["checkpoint_path"] = job.checkpoint_path
        return SolveOptions(**fields), budget

    def _run(self, job: Job) -> None:
        from repro.api import partition

        job.started = time.time()
        job.state = "running"
        with self._lock:
            self._running[job.id] = job
            self.registry.gauge("serve.running").set(len(self._running))
        recorder = job.recorder
        if recorder is not None and job._queue_span is not None:
            # The worker owns the recorder from here: close the queue
            # wait, leaving serve.request open for the solve subtree.
            queue_span = job._queue_span
            recorder.close_span(queue_span)
            job.queue_wait_seconds = queue_span.duration
            job._queue_span = None
            solve_span = "job.solve"
        else:
            # Tracing disabled: a throwaway recorder still feeds the
            # per-request metrics merged into /metrics below.
            recorder = RequestRecorder(job)
            solve_span = "serve.request"
        try:
            try:
                instance, hit = self.store.get(job.request.instance)
                job.cache_hit = hit
                self.registry.counter(
                    "serve.instance_lookups",
                    {"outcome": "hit" if hit else "miss"},
                ).inc()
                options, budget = self._build_options(job, recorder)
                job.budget = budget
                if self._draining:
                    # Jobs dequeued mid-drain only get the remaining
                    # grace; drain() re-tightens jobs already running.
                    budget.tighten(
                        max(self.drain_remaining_seconds(), 1e-9)
                    )
                with recorder.span(
                    solve_span, job=job.id, solver=job.request.solver
                ):
                    result = partition(
                        instance,
                        solver=job.request.solver,
                        options=options,
                        **job.request.solver_kwargs,
                    )
            except Exception as exc:  # noqa: BLE001 - job boundary
                self.registry.counter("serve.jobs", {"state": "failed"}).inc()
                # Keep the traceback out of the wire but in the server log.
                traceback.print_exc()
                message = f"{type(exc).__name__}: {exc}"
                job.publish(
                    {"type": "error", "job": job.id, "error": message}
                )
                self._reap_checkpoint(job)
                self._close_request_span(job, state="failed")
                self._flight_add(job)
                job._finish("failed", error=message)
                return
            finally:
                self.registry.merge(recorder.metrics)

            state = (
                "cancelled" if result.stop_reason == "cancelled" else "done"
            )
            self.registry.counter("serve.jobs", {"state": state}).inc()
            if result.stop_reason == "deadline":
                self.registry.counter("serve.deadline_hits").inc()
            if self._draining:
                self.registry.counter("serve.drained").inc()
            latency_ms = (time.time() - job.created) * 1e3
            with self._lock:
                self._latencies_ms.append(latency_ms)
            self.registry.histogram(
                "serve.request_ms",
                {"solver": job.request.solver},
                boundaries=LATENCY_BOUNDARIES_MS,
            ).observe(latency_ms)
            self._reap_checkpoint(job)
            self._close_request_span(
                job, state=state, stop_reason=result.stop_reason
            )
            self._flight_add(job)
            job.publish(
                {
                    "type": "result",
                    "job": job.id,
                    **result.to_dict(
                        include_assignment=job.request.include_assignment
                    ),
                }
            )
            job._finish(state, result=result)
        finally:
            with self._lock:
                self._running.pop(job.id, None)
                self.registry.gauge("serve.running").set(len(self._running))

    def _reap_checkpoint(self, job: Job) -> None:
        """Keep drain checkpoints, remove ordinary interrupt residue.

        ``SolveRuntime.finalize`` writes a checkpoint whenever an
        interrupted solve has a checkpoint path — during a drain that
        file *is* the restart story and must survive; outside one it is
        noise (a client's own micro-deadline, say) and is removed.
        """
        path = job.checkpoint_path
        if path is None:
            return
        if self._draining and os.path.exists(path):
            job.checkpoint_persisted = True
            self.registry.counter("serve.drain_checkpoints").inc()
            return
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- queries --------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def running_count(self) -> int:
        with self._lock:
            return len(self._running)

    def recent_p99_ms(self) -> Optional[float]:
        """p99 of the most recent request latencies (None before any)."""
        with self._lock:
            samples = sorted(self._latencies_ms)
        if not samples:
            return None
        index = min(len(samples) - 1, round(0.99 * (len(samples) - 1)))
        return samples[index]

    def retry_after_seconds(self) -> float:
        """How long a rejected client should back off before retrying.

        Estimated as the time for the pool to chew through the current
        queue at the recent median latency; clamped to [1, 30] so the
        hint stays useful even with a cold latency window.
        """
        with self._lock:
            samples = sorted(self._latencies_ms)
        depth = self.queue.depth()
        if not samples:
            return 1.0
        p50_seconds = samples[len(samples) // 2] / 1e3
        estimate = p50_seconds * max(1, depth) / max(1, self.pool_size)
        return min(30.0, max(1.0, estimate))

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cooperative cancellation; returns the job (or None).

        Queued jobs start with an already-cancelled token and stop at
        their first round boundary; running jobs stop at the next one.
        Finished jobs are left untouched (the caller inspects state).
        """
        job = self.get(job_id)
        if job is None:
            return None
        if not job.wait(0):
            job.cancel_requested = True
            job.token.cancel()
            self.registry.counter("serve.cancel_requests").inc()
        return job

    # -- graceful drain -------------------------------------------------
    def drain(
        self, grace_seconds: Optional[float] = None, wait: bool = True
    ) -> None:
        """Stop accepting work; let in-flight jobs degrade gracefully.

        Flips the table into draining mode (``submit`` → 503), injects
        ``grace_seconds`` as a deadline into every running solve via
        :meth:`RuntimeBudget.tighten` — the PR 4 anytime machinery turns
        that into valid best-so-far results with
        ``stop_reason="deadline"`` — and, with ``wait=True``, blocks
        until the queue and pool are empty.  Jobs still running once the
        grace elapses are cancelled at their next round boundary; if a
        drain checkpoint dir is configured their round-boundary
        checkpoint is persisted for a byte-identical resume after
        restart.  Idempotent; the first call pins the grace deadline.
        """
        grace = (
            grace_seconds if grace_seconds is not None
            else self.drain_grace_seconds
        )
        first_flip = False
        with self._lock:
            if not self._draining:
                self._draining = True
                self._drain_deadline = time.monotonic() + grace
                first_flip = True
            running = list(self._running.values())
        if first_flip and self.flight is not None:
            self.flight.note("serve.drain", grace_seconds=grace)
            self.flight.trigger("drain_start")
        for job in running:
            if job.budget is not None:
                job.budget.tighten(max(self.drain_remaining_seconds(), 1e-9))
        if not wait:
            return
        cancelled = False
        hard_cap = time.monotonic() + grace + _DRAIN_HARD_CAP_SECONDS
        while time.monotonic() < hard_cap:
            with self._lock:
                active = len(self._running)
            if active == 0 and self.queue.depth() == 0:
                return
            if not cancelled and self.drain_remaining_seconds() <= 0:
                with self._lock:
                    stragglers = list(self._running.values())
                for job in stragglers:
                    job.token.cancel()
                cancelled = True
            time.sleep(0.01)

    def shutdown(self, wait: bool = True) -> None:
        """Terminal stop: cancel everything and join the workers.

        The abrupt path (process exit, test teardown).  For the
        graceful SIGTERM path call :meth:`drain` first — ``shutdown``
        makes no attempt to let solves finish beyond their next round
        boundary.
        """
        self._draining = True
        if self._drain_deadline is None:
            self._drain_deadline = time.monotonic()
        self._closed = True
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if not job.wait(0):
                job.token.cancel()
        if wait:
            # Workers shed remaining queued entries (grace is zero) and
            # exit once the queue is empty and closed.
            deadline = time.monotonic() + _DRAIN_HARD_CAP_SECONDS
            self.queue.close()
            for worker in self._workers:
                worker.join(timeout=max(0.0, deadline - time.monotonic()))
        else:
            for victim in self.queue.drain_all():
                self._finish_shed(victim, "server shut down")
            self.queue.close()
