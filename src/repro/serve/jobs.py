"""The job table: bounded worker pool over ``partition()`` solves.

Every ``POST /v1/solve`` becomes a :class:`Job`: a per-request
:class:`~repro.runtime.CancelToken` (``DELETE /v1/jobs/<id>`` cancels
cooperatively at the next round boundary), the request's deadline
composed into a :class:`~repro.runtime.RuntimeBudget` by ``partition()``
itself, and a :class:`RequestRecorder` whose per-round telemetry hook
feeds both the chunked progress stream and the server-wide metrics
registry scraped at ``/metrics``.

Jobs run on a bounded :class:`~concurrent.futures.ThreadPoolExecutor` —
the asyncio front end never solves inline, so the server stays
responsive while every worker is busy.  Interrupted solves are *normal*
results here (``stop_reason`` of ``"deadline"``/``"cancelled"`` with a
valid best-so-far assignment): the runtime layer's anytime guarantee is
what makes a solve server with per-request deadlines possible at all.
"""

from __future__ import annotations

import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import TraceRecorder
from repro.runtime.token import CancelToken
from repro.serve.store import InstanceStore
from repro.serve.wire import SolveRequest

#: Job lifecycle states.  ``cancelled`` and ``done`` both carry a valid
#: result; ``failed`` carries an error message instead.
JOB_STATES = ("queued", "running", "done", "cancelled", "failed")

#: Request-latency histogram boundaries (milliseconds).
LATENCY_BOUNDARIES_MS = (
    0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
    1_000, 2_500, 5_000, 10_000, 30_000, 60_000,
)


class RequestRecorder(TraceRecorder):
    """Per-request trace recorder that also publishes round progress.

    The solver's own per-round telemetry call (PR 3's
    :meth:`Recorder.round_end`) is the progress feed: each round becomes
    one JSON record pushed to every subscriber of the job, so a
    streaming client watches the frontier drain live without any extra
    instrumentation in the kernels.
    """

    def __init__(self, job: "Job") -> None:
        super().__init__()
        self._job = job

    def round_end(
        self,
        span,
        solver: str,
        round_index: int,
        *,
        deviations: int,
        examined: int,
        cost_evaluations: Optional[int] = None,
        frontier_fn: Optional[Callable[[], int]] = None,
        potential_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        # Evaluate the lazy callables once and memoize, so the super
        # call does not pay for (or double-count) a second evaluation.
        frontier = int(frontier_fn()) if frontier_fn is not None else examined
        potential = float(potential_fn()) if potential_fn is not None else None
        super().round_end(
            span,
            solver,
            round_index,
            deviations=deviations,
            examined=examined,
            cost_evaluations=cost_evaluations,
            frontier_fn=(lambda: frontier) if frontier_fn is not None else None,
            potential_fn=(
                (lambda: potential) if potential_fn is not None else None
            ),
        )
        record: Dict[str, Any] = {
            "type": "round",
            "job": self._job.id,
            "solver": solver,
            "round": round_index,
            "deviations": deviations,
            "players_examined": examined,
            "frontier": frontier,
        }
        if potential is not None:
            record["potential"] = potential
        self._job.publish(record)


class Job:
    """One solve request moving through the worker pool."""

    def __init__(self, job_id: str, request: SolveRequest) -> None:
        self.id = job_id
        self.request = request
        self.token = CancelToken()
        self.state = "queued"
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.result = None  # PartitionResult
        self.error: Optional[str] = None
        self.cache_hit: Optional[bool] = None
        self.cancel_requested = False
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._done_callbacks: List[Callable[[], None]] = []
        self._subscribers: List[Any] = []

    # -- progress -------------------------------------------------------
    def subscribe(self, sink: Any) -> None:
        """Attach a progress sink (``sink.publish(record)``, thread-safe)."""
        with self._lock:
            self._subscribers.append(sink)

    def publish(self, record: Dict[str, Any]) -> None:
        with self._lock:
            sinks = list(self._subscribers)
        for sink in sinks:
            sink.publish(record)

    # -- completion -----------------------------------------------------
    def add_done_callback(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` once the job finishes (immediately if it has).

        Called from the worker thread that finishes the job — callbacks
        must be cheap and thread-safe (the server passes
        ``loop.call_soon_threadsafe`` trampolines).
        """
        with self._lock:
            if not self._done.is_set():
                self._done_callbacks.append(callback)
                return
        callback()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def _finish(self, state: str, result=None, error: Optional[str] = None) -> None:
        with self._lock:
            self.state = state
            self.result = result
            self.error = error
            self.finished = time.time()
            self._done.set()
            callbacks = list(self._done_callbacks)
            self._done_callbacks.clear()
        for callback in callbacks:
            callback()

    # -- wire form ------------------------------------------------------
    def to_dict(self, include_assignment: bool = False) -> Dict[str, Any]:
        """The job envelope of ``GET /v1/jobs/<id>``."""
        with self._lock:
            payload: Dict[str, Any] = {
                "job": self.id,
                "state": self.state,
                "request": self.request.summary(),
                "created": self.created,
            }
            if self.started is not None:
                payload["started"] = self.started
            if self.finished is not None:
                payload["finished"] = self.finished
                payload["wall_seconds"] = self.finished - self.created
            if self.cache_hit is not None:
                payload["instance_cache_hit"] = self.cache_hit
            if self.cancel_requested:
                payload["cancel_requested"] = True
            if self.result is not None:
                payload["result"] = self.result.to_dict(
                    include_assignment=include_assignment
                    or self.request.include_assignment
                )
            if self.error is not None:
                payload["error"] = self.error
            return payload


class JobTable:
    """Submission, execution, retention and cancellation of jobs."""

    def __init__(
        self,
        store: InstanceStore,
        registry: MetricsRegistry,
        pool_size: int = 4,
        max_jobs: int = 256,
        default_deadline_seconds: Optional[float] = None,
    ) -> None:
        self.store = store
        self.registry = registry
        self.max_jobs = max_jobs
        self.default_deadline_seconds = default_deadline_seconds
        self._executor = ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._next_id = 0

    # -- lifecycle ------------------------------------------------------
    def submit(self, request: SolveRequest, sink: Any = None) -> Job:
        """Queue a job; ``sink`` (if given) is subscribed to progress
        records before the worker can start, so no round is missed."""
        with self._lock:
            job = Job(f"job-{self._next_id}", request)
            self._next_id += 1
            if sink is not None:
                job.subscribe(sink)
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._evict_finished_locked()
        self.registry.counter(
            "serve.requests", {"solver": request.solver}
        ).inc()
        self._executor.submit(self._run, job)
        return job

    def _evict_finished_locked(self) -> None:
        # Retain at most max_jobs entries; only finished jobs may go.
        if len(self._order) <= self.max_jobs:
            return
        kept: List[str] = []
        excess = len(self._order) - self.max_jobs
        for job_id in self._order:
            job = self._jobs[job_id]
            if excess > 0 and job.state in ("done", "cancelled", "failed"):
                del self._jobs[job_id]
                excess -= 1
            else:
                kept.append(job_id)
        self._order = kept

    def _run(self, job: Job) -> None:
        from repro.api import partition

        job.started = time.time()
        job.state = "running"
        recorder = RequestRecorder(job)
        try:
            instance, hit = self.store.get(job.request.instance)
            job.cache_hit = hit
            self.registry.counter(
                "serve.instance_lookups", {"outcome": "hit" if hit else "miss"}
            ).inc()
            options = job.request.build_options(
                self.default_deadline_seconds, job.token, recorder
            )
            with recorder.span(
                "serve.request", job=job.id, solver=job.request.solver
            ):
                result = partition(
                    instance,
                    solver=job.request.solver,
                    options=options,
                    **job.request.solver_kwargs,
                )
        except Exception as exc:  # noqa: BLE001 - job boundary
            self.registry.counter("serve.jobs", {"state": "failed"}).inc()
            # Keep the traceback out of the wire but in the server log.
            traceback.print_exc()
            message = f"{type(exc).__name__}: {exc}"
            job.publish({"type": "error", "job": job.id, "error": message})
            job._finish("failed", error=message)
            return
        finally:
            self.registry.merge(recorder.metrics)

        state = "cancelled" if result.stop_reason == "cancelled" else "done"
        self.registry.counter("serve.jobs", {"state": state}).inc()
        if result.stop_reason == "deadline":
            self.registry.counter("serve.deadline_hits").inc()
        latency_ms = (time.time() - job.created) * 1e3
        self.registry.histogram(
            "serve.request_ms",
            {"solver": job.request.solver},
            boundaries=LATENCY_BOUNDARIES_MS,
        ).observe(latency_ms)
        job.publish(
            {
                "type": "result",
                "job": job.id,
                **result.to_dict(
                    include_assignment=job.request.include_assignment
                ),
            }
        )
        job._finish(state, result=result)

    # -- queries --------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cooperative cancellation; returns the job (or None).

        Queued jobs start with an already-cancelled token and stop at
        their first round boundary; running jobs stop at the next one.
        Finished jobs are left untouched (the caller inspects state).
        """
        job = self.get(job_id)
        if job is None:
            return None
        if not job.wait(0):
            job.cancel_requested = True
            job.token.cancel()
            self.registry.counter("serve.cancel_requests").inc()
        return job

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if not job.wait(0):
                job.token.cancel()
        self._executor.shutdown(wait=wait)
