"""Partitioning-as-a-service: the async HTTP/JSON solve server.

The paper's headline scenario is *real-time, query-time* partitioning —
queries arrive with a class set ``P`` and preference ``α`` at runtime
and must be answered within an interactive deadline.  This package is
that serving path, zero-dependency on top of stdlib ``asyncio``:

* :class:`~repro.serve.server.SolveServer` — ``asyncio.start_server``
  HTTP/1.1 front end exposing the versioned ``/v1`` wire API
  (``POST /v1/solve``, job polling/cancellation, chunked JSONL progress
  streaming) and the Prometheus text exporter at ``/metrics``;
* :class:`~repro.serve.store.InstanceStore` — LRU store keeping hot
  :class:`~repro.core.instance.RMGPInstance`\\ s resident across
  requests (mixed α/k queries share one resident graph);
* :class:`~repro.serve.jobs.JobTable` — bounded worker pool running
  ``partition()`` jobs, composing per-request
  :class:`~repro.runtime.CancelToken` + deadline budgets, publishing
  per-round progress from the PR 3 telemetry hook;
* :class:`~repro.serve.client.ServeClient` — stdlib ``http.client``
  consumer used by the tests, the load-generator bench and scripts;
  :class:`~repro.serve.client.EmbeddedServer` runs a server on a
  background thread for in-process use.

The wire schemas are the library's own: request options are
:meth:`repro.api.SolveOptions.from_dict` and responses embed the frozen
``repro-result/v1`` payload of
:meth:`repro.core.result.PartitionResult.to_dict` — one contract for
library callers, the CLI and the wire.  Every non-2xx response is one
``repro-error/v1`` envelope (:mod:`repro.serve.errors`); overload and
shutdown semantics (admission control, load shedding, graceful drain)
are documented in ``docs/API.md`` (Serving → Overload & shutdown).
"""

from repro.serve.chaos import ChaosPlan, ChaosProxy
from repro.serve.client import EmbeddedServer, RetryPolicy, ServeClient
from repro.serve.config import ServeConfig
from repro.serve.console import ConsoleSnapshot, render, run_top, snapshot
from repro.serve.errors import ERROR_SCHEMA_VERSION, error_body, validate_error
from repro.serve.jobs import (
    AdmissionQueue,
    AdmissionRejected,
    Job,
    JobTable,
    ServiceDraining,
)
from repro.serve.server import SolveServer
from repro.serve.store import InstanceStore
from repro.serve.wire import API_VERSION, SolveRequest

__all__ = [
    "API_VERSION",
    "AdmissionQueue",
    "AdmissionRejected",
    "ChaosPlan",
    "ChaosProxy",
    "ConsoleSnapshot",
    "ERROR_SCHEMA_VERSION",
    "EmbeddedServer",
    "InstanceStore",
    "Job",
    "JobTable",
    "RetryPolicy",
    "ServeClient",
    "ServeConfig",
    "ServiceDraining",
    "SolveRequest",
    "SolveServer",
    "error_body",
    "render",
    "run_top",
    "snapshot",
    "validate_error",
]
