"""Terminal bar charts for benchmark tables.

The figure runners produce :class:`~repro.bench.harness.Table` objects;
these helpers render one numeric column as a horizontal bar chart so the
paper's figures can be eyeballed straight from the CLI
(``python -m repro figure fig12c --chart RMGP_gt_ms``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bench.harness import Table
from repro.errors import ConfigurationError

DEFAULT_WIDTH = 48
BAR_CHARACTER = "#"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = DEFAULT_WIDTH,
    title: str = "",
) -> str:
    """Render a labeled horizontal bar chart.

    Bars scale linearly with the maximum value; negative values are
    rejected (nothing in this package produces them).
    """
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must align")
    if width < 4:
        raise ConfigurationError("width must be at least 4")
    if any(v < 0 for v in values):
        raise ConfigurationError("bar charts require non-negative values")

    lines: List[str] = []
    if title:
        lines.append(title)
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)

    peak = max(values) or 1.0
    label_width = max(len(str(l)) for l in labels)
    for label, value in zip(labels, values):
        bar = BAR_CHARACTER * max(
            1 if value > 0 else 0, round(width * value / peak)
        )
        lines.append(
            f"{str(label).rjust(label_width)} | {bar} {_format(value)}"
        )
    return "\n".join(lines)


def table_chart(
    table: Table,
    value_column: str,
    label_column: Optional[str] = None,
    width: int = DEFAULT_WIDTH,
) -> str:
    """Chart one numeric column of a results table.

    ``label_column`` defaults to the table's first column.
    """
    if value_column not in table.columns:
        raise ConfigurationError(
            f"unknown column {value_column!r}; table has {table.columns}"
        )
    label_column = label_column or table.columns[0]
    rows = [
        row
        for row in table.rows
        if isinstance(row.get(value_column), (int, float))
    ]
    labels = [str(row.get(label_column, "?")) for row in rows]
    values = [float(row[value_column]) for row in rows]
    return bar_chart(
        labels, values, width=width,
        title=f"{table.title} — {value_column}",
    )


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    if abs(value) >= 1000 or (0 < abs(value) < 0.01):
        return f"{value:.3g}"
    return f"{value:.2f}"
