"""Bench-history store: one JSONL line per perf run, with git SHA.

``benchmarks/history/<profile>.jsonl`` accumulates every
``make bench-perf`` run (appended by ``bench_perf_regression.py``), so
performance over time is queryable instead of being a single committed
snapshot.  Each record carries the commit SHA, the machine calibration
time and the calibration-normalized ratio per ``instance/solver`` key —
the portable quantity the regression check compares.

Writes are atomic: the new content lands in ``<file>.tmp`` first and is
moved into place with :func:`os.replace`, so a crashed run never leaves
a half-written history line behind.

The statistical check flags a key when, against at least
``min_samples`` prior runs, the current normalized ratio exceeds both
``mean + sigma * stdev`` and ``ratio_threshold * mean`` — the two-sided
guard keeps noisy-but-tiny samples from tripping it.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

HISTORY_SCHEMA = "bench-history/v1"

#: Default location relative to the repository root.
DEFAULT_HISTORY_DIR = "benchmarks/history"


def git_revision(repo_root: Optional[Path] = None) -> str:
    """Current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def make_record(
    profile: str,
    calibration_ms: float,
    results: Dict[str, Dict[str, Any]],
    repo_root: Optional[Path] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, Any]:
    """One history record for a finished perf run.

    ``results`` maps ``instance/solver`` keys to the measured numbers
    (``wall_ms`` at minimum); the calibration-normalized ratio is
    derived here so every record stores it consistently.
    """
    normalized = {}
    for key, measured in results.items():
        entry = dict(measured)
        if calibration_ms > 0 and "wall_ms" in entry:
            entry["normalized"] = entry["wall_ms"] / calibration_ms
        normalized[key] = entry
    return {
        "schema": HISTORY_SCHEMA,
        "timestamp": (
            float(timestamp) if timestamp is not None else time.time()
        ),
        "git_sha": git_revision(repo_root),
        "profile": profile,
        "calibration_ms": calibration_ms,
        "results": normalized,
    }


def history_file(history_dir: Path, profile: str) -> Path:
    return Path(history_dir) / f"{profile}.jsonl"


def load_history(history_dir: Path, profile: str) -> List[Dict[str, Any]]:
    """All committed records for ``profile`` (oldest first).

    Unparseable lines are skipped — a corrupted history must not brick
    the perf gate.
    """
    path = history_file(history_dir, profile)
    if not path.exists():
        return []
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (
                isinstance(record, dict)
                and record.get("schema") == HISTORY_SCHEMA
            ):
                records.append(record)
    return records


def append_run(
    history_dir: Path, profile: str, record: Dict[str, Any]
) -> Path:
    """Append ``record`` to the profile's history file, atomically."""
    path = history_file(history_dir, profile)
    path.parent.mkdir(parents=True, exist_ok=True)
    existing = path.read_text(encoding="utf-8") if path.exists() else ""
    if existing and not existing.endswith("\n"):
        existing += "\n"
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(
        existing + json.dumps(record, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    os.replace(tmp, path)
    return path


def regression_messages(
    history: List[Dict[str, Any]],
    current: Dict[str, Any],
    min_samples: int = 3,
    sigma: float = 3.0,
    ratio_threshold: float = 1.2,
) -> List[str]:
    """Keys whose normalized time significantly regressed vs history.

    Returns one human-readable message per regressed key; an empty list
    means the run is statistically in line with its history.
    """
    samples: Dict[str, List[float]] = {}
    for record in history:
        for key, entry in (record.get("results") or {}).items():
            value = entry.get("normalized")
            if isinstance(value, (int, float)):
                samples.setdefault(key, []).append(float(value))
    messages: List[str] = []
    for key, entry in sorted((current.get("results") or {}).items()):
        value = entry.get("normalized")
        past = samples.get(key, [])
        if not isinstance(value, (int, float)) or len(past) < min_samples:
            continue
        mean = statistics.fmean(past)
        spread = statistics.stdev(past) if len(past) > 1 else 0.0
        if value > mean + sigma * spread and value > ratio_threshold * mean:
            messages.append(
                f"{key}: normalized {value:.3f} vs history mean "
                f"{mean:.3f} (n={len(past)}, stdev {spread:.3f}) — "
                f"exceeds mean + {sigma:g}*stdev and "
                f"{ratio_threshold:g}x mean"
            )
    return messages
