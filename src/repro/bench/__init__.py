"""Benchmark harness: workloads, measurement, and one runner per figure."""

from repro.bench.fig_centralized import (
    run_fig10,
    run_fig11,
    run_fig12_per_round,
    run_fig12_vs_alpha,
    run_fig12_vs_k,
)
from repro.bench.churn import ChurnRun, run_churn
from repro.bench.fig_comparison import run_fig7, run_fig8
from repro.bench.fig_decentralized import run_fig13, run_fig14
from repro.bench.fig_normalization import run_fig9, run_fig9_cn_values
from repro.bench.fig_table1 import run_table1
from repro.bench.harness import Measurement, Table, full_scale, time_call
from repro.bench.history import (
    HISTORY_SCHEMA,
    append_run,
    git_revision,
    load_history,
    make_record,
    regression_messages,
)
from repro.bench.workloads import (
    event_sweep,
    foursquare_dataset,
    gowalla_dataset,
    instance_for,
    small_uml_dataset,
)

__all__ = [
    "ChurnRun",
    "HISTORY_SCHEMA",
    "Measurement",
    "Table",
    "append_run",
    "event_sweep",
    "foursquare_dataset",
    "full_scale",
    "git_revision",
    "gowalla_dataset",
    "instance_for",
    "load_history",
    "make_record",
    "regression_messages",
    "run_churn",
    "run_fig10",
    "run_fig11",
    "run_fig12_per_round",
    "run_fig12_vs_alpha",
    "run_fig12_vs_k",
    "run_fig13",
    "run_fig14",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig9_cn_values",
    "run_table1",
    "small_uml_dataset",
    "time_call",
]
