"""Table 1: the execution trace of RMGP_b on the running example.

Reproduces the paper's step-by-step illustration: per examined player,
the cost of every class and the chosen best response, round by round,
until the equilibrium.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import Table
from repro.core.dynamics import DEVIATION_TOLERANCE
from repro.core.objective import player_strategy_costs
from repro.datasets.paper_example import (
    EVENTS,
    USERS,
    paper_example_instance,
)
from repro.obs.recorder import active_recorder


def run_table1(init: str = "closest") -> Table:
    """Trace RMGP_b on the Figure 1 example (deterministic sweep order)."""
    instance = paper_example_instance()
    if init == "closest":
        assignment = np.array(
            [int(instance.cost.row(v).argmin()) for v in range(instance.n)],
            dtype=np.int64,
        )
    else:
        assignment = np.zeros(instance.n, dtype=np.int64)

    table = Table(
        title="Table 1: RMGP_b trace on the running example",
        columns=["round", "player"]
        + [f"cost_{p}" for p in EVENTS]
        + ["from", "to", "deviated"],
    )
    rec = active_recorder()
    round_index = 0
    with rec.span(
        "solve", solver="Table1_trace", n=instance.n, k=instance.k
    ):
        while True:
            round_index += 1
            deviations = 0
            with rec.span("round", round=round_index) as round_span:
                for player in range(instance.n):
                    costs = player_strategy_costs(instance, assignment, player)
                    current = int(assignment[player])
                    best = int(costs.argmin())
                    deviated = (
                        best != current
                        and costs[best] < costs[current] - DEVIATION_TOLERANCE
                    )
                    table.add_row(
                        round=round_index,
                        player=USERS[player],
                        **{
                            f"cost_{p}": float(costs[j])
                            for j, p in enumerate(EVENTS)
                        },
                        **{
                            "from": EVENTS[current],
                            "to": EVENTS[best if deviated else current],
                            "deviated": "*" if deviated else "",
                        },
                    )
                    if deviated:
                        assignment[player] = best
                        deviations += 1
            rec.round_end(
                round_span, "Table1_trace", round_index,
                deviations=deviations,
                examined=instance.n,
                cost_evaluations=instance.n * instance.k,
            )
            if deviations == 0:
                break
    table.notes.append(
        "final assignment: "
        + ", ".join(
            f"{USERS[v]}->{EVENTS[int(assignment[v])]}" for v in range(instance.n)
        )
    )
    return table
