"""Figure 9: the effect of normalization (Section 6.2).

Three panels at α = 0.5 over Gowalla, sweeping k: (a) raw RMGP — the
assignment (distance) cost dominates the social cost for every k because
distances are ~100 km while edge weights are 1; (b) optimistic RMGP_N and
(c) pessimistic RMGP_N — balanced components, the pessimistic variant
most evenly.  Also reported: the number of users re-assigned away from
their closest event (1,434 of 12,748 raw vs 3,459 optimistic / 6,583
pessimistic at k = 8 in the paper).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bench.harness import Table
from repro.bench.workloads import event_sweep, gowalla_dataset, instance_for
from repro.core.baseline import _solve_baseline as solve_baseline
from repro.core.normalization import estimate_cn, normalize

VARIANTS = ("raw", "optimistic", "pessimistic")


def run_fig9(
    event_counts: Optional[List[int]] = None,
    seed: int = 0,
    alpha: float = 0.5,
) -> Table:
    """Reproduce Figure 9's three panels as one table.

    For each k and variant: the assignment and social components of the
    final solution (in the variant's own objective units, as in the
    paper — "the overall costs in the three diagrams are not directly
    comparable"), the C_N used, and the number of users moved away from
    their closest event.
    """
    event_counts = event_counts or event_sweep(full=[8, 16, 32, 64, 128])
    dataset = gowalla_dataset(seed=seed)
    table = Table(
        title=f"Figure 9: normalization effect (alpha={alpha})",
        columns=[
            "k",
            "variant",
            "cn",
            "assignment_cost",
            "social_cost",
            "balance_ratio",
            "users_moved",
        ],
    )
    for k in event_counts:
        base = instance_for(dataset, num_events=k, alpha=alpha, seed=seed)
        closest = np.array(
            [int(base.cost.row(v).argmin()) for v in range(base.n)]
        )
        for variant in VARIANTS:
            if variant == "raw":
                instance, cn = base, 1.0
            else:
                instance, estimate = normalize(base, variant)
                cn = estimate.cn
            result = solve_baseline(
                instance, init="closest", order="given", seed=seed
            )
            value = result.value
            # Components weighted as in Equation 1/7 at this alpha.
            assignment_component = alpha * value.assignment_cost
            social_component = (1 - alpha) * value.social_cost
            moved = int((result.assignment != closest).sum())
            table.add_row(
                k=k,
                variant=variant,
                cn=cn,
                assignment_cost=assignment_component,
                social_cost=social_component,
                balance_ratio=(
                    assignment_component / social_component
                    if social_component > 0
                    else float("inf")
                ),
                users_moved=moved,
            )
    table.notes.append(
        "expected: raw balance_ratio >> 1 (distance dominates); "
        "pessimistic ~ 1; users_moved raw < optimistic < pessimistic"
    )
    return table


def run_fig9_cn_values(
    event_counts: Optional[List[int]] = None, seed: int = 0
) -> Table:
    """The C_N annotations printed on top of Figure 9(b)/(c) columns."""
    event_counts = event_counts or event_sweep(full=[8, 16, 32, 64, 128])
    dataset = gowalla_dataset(seed=seed)
    table = Table(
        title="Figure 9 annotations: estimated C_N per k",
        columns=["k", "cn_optimistic", "cn_pessimistic"],
    )
    for k in event_counts:
        instance = instance_for(dataset, num_events=k, seed=seed)
        table.add_row(
            k=k,
            cn_optimistic=estimate_cn(instance, "optimistic").cn,
            cn_pessimistic=estimate_cn(instance, "pessimistic").cn,
        )
    return table
