"""Figures 10-12: centralized RMGP heuristics and optimizations.

* Figure 10 — baseline heuristics (b, b+i, b+i+o): time and quality vs k.
* Figure 11 — the same three variants versus α at k = 32.
* Figure 12 — the optimizations (se, is, gt, all) versus k and α, plus
  the per-round time decomposition at k = 32, α = 0.5.

All run over the (pessimistically normalized) Gowalla workload, matching
Section 6.3's setup.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.bench.harness import Table, full_scale, time_call
from repro.bench.workloads import event_sweep, gowalla_dataset, instance_for
from repro.core.baseline import _solve_baseline as solve_baseline
from repro.core.combined import _solve_all as solve_all
from repro.core.global_table import _solve_global_table as solve_global_table
from repro.core.independent_sets import (
    _solve_independent_sets as solve_independent_sets,
)
from repro.core.instance import RMGPInstance
from repro.core.normalization import normalize
from repro.core.strategy_elimination import (
    _solve_strategy_elimination as solve_strategy_elimination,
)

ALPHA_SWEEP = [0.1, 0.3, 0.5, 0.7, 0.9]

HEURISTIC_VARIANTS: Dict[str, Dict[str, str]] = {
    "RMGP_b": {"init": "random", "order": "random"},
    "RMGP_b+i": {"init": "closest", "order": "random"},
    "RMGP_b+i+o": {"init": "closest", "order": "degree"},
}

OPTIMIZATION_SOLVERS: Dict[str, Callable] = {
    "RMGP_b+i+o": lambda inst, seed: solve_baseline(
        inst, init="closest", order="degree", seed=seed
    ),
    "RMGP_se": lambda inst, seed: solve_strategy_elimination(inst, seed=seed),
    "RMGP_is": lambda inst, seed: solve_independent_sets(inst, seed=seed),
    "RMGP_gt": lambda inst, seed: solve_global_table(inst, seed=seed),
    "RMGP_all": lambda inst, seed: solve_all(inst, seed=seed),
}


def _normalized(instance: RMGPInstance) -> RMGPInstance:
    """Pessimistic normalization — the default after Section 6.2."""
    normalized, _ = normalize(instance, "pessimistic")
    return normalized


def run_fig10(
    event_counts: Optional[List[int]] = None, seed: int = 0, repeats: int = 1
) -> Table:
    """Figure 10: heuristic variants versus k (time + cost split)."""
    event_counts = event_counts or event_sweep()
    dataset = gowalla_dataset(seed=seed)
    table = Table(
        title="Figure 10: RMGP_b heuristics vs k (alpha=0.5)",
        columns=["k", "variant", "ms", "rounds", "assignment_cost", "social_cost"],
    )
    for k in event_counts:
        instance = _normalized(instance_for(dataset, num_events=k, seed=seed))
        for variant, kwargs in HEURISTIC_VARIANTS.items():
            measured = time_call(
                lambda kw=kwargs: solve_baseline(instance, seed=seed, **kw),
                repeats=repeats,
            )
            result = measured.result
            table.add_row(
                k=k,
                variant=variant,
                ms=measured.median * 1e3,
                rounds=result.num_rounds,
                assignment_cost=0.5 * result.value.assignment_cost,
                social_cost=0.5 * result.value.social_cost,
            )
    table.notes.append(
        "expected: b+i much faster than b; b+i+o helps at large k; "
        "b's solutions inferior"
    )
    return table


def run_fig11(
    alphas: Optional[List[float]] = None,
    num_events: int = 32,
    seed: int = 0,
    repeats: int = 1,
) -> Table:
    """Figure 11: heuristic variants versus alpha at k = 32."""
    alphas = alphas or (ALPHA_SWEEP if full_scale() else [0.1, 0.5, 0.9])
    dataset = gowalla_dataset(seed=seed)
    table = Table(
        title=f"Figure 11: RMGP_b heuristics vs alpha (k={num_events})",
        columns=[
            "alpha",
            "variant",
            "ms",
            "rounds",
            "assignment_cost",
            "social_cost",
        ],
    )
    for alpha in alphas:
        instance = _normalized(
            instance_for(dataset, num_events=num_events, alpha=alpha, seed=seed)
        )
        for variant, kwargs in HEURISTIC_VARIANTS.items():
            measured = time_call(
                lambda kw=kwargs: solve_baseline(instance, seed=seed, **kw),
                repeats=repeats,
            )
            result = measured.result
            table.add_row(
                alpha=alpha,
                variant=variant,
                ms=measured.median * 1e3,
                rounds=result.num_rounds,
                assignment_cost=alpha * result.value.assignment_cost,
                social_cost=(1 - alpha) * result.value.social_cost,
            )
    table.notes.append(
        "expected: small alpha -> social component small (it is optimized "
        "hardest); alpha=0.9 -> social dominates the weighted total"
    )
    return table


def run_fig12_vs_k(
    event_counts: Optional[List[int]] = None, seed: int = 0, repeats: int = 1
) -> Table:
    """Figure 12(a): the optimizations versus k at alpha = 0.5."""
    event_counts = event_counts or event_sweep()
    dataset = gowalla_dataset(seed=seed)
    table = Table(
        title="Figure 12(a): optimizations vs k (alpha=0.5)",
        columns=["k"] + [f"{name}_ms" for name in OPTIMIZATION_SOLVERS],
    )
    for k in event_counts:
        instance = _normalized(instance_for(dataset, num_events=k, seed=seed))
        row = {"k": k}
        for name, solver in OPTIMIZATION_SOLVERS.items():
            measured = time_call(
                lambda s=solver: s(instance, seed), repeats=repeats
            )
            row[f"{name}_ms"] = measured.median * 1e3
        table.add_row(**row)
    table.notes.append("expected: gt best single optimization; all fastest")
    return table


def run_fig12_vs_alpha(
    alphas: Optional[List[float]] = None,
    num_events: int = 32,
    seed: int = 0,
    repeats: int = 1,
) -> Table:
    """Figure 12(b): the optimizations versus alpha at k = 32."""
    alphas = alphas or (ALPHA_SWEEP if full_scale() else [0.1, 0.5, 0.9])
    dataset = gowalla_dataset(seed=seed)
    table = Table(
        title=f"Figure 12(b): optimizations vs alpha (k={num_events})",
        columns=["alpha"] + [f"{name}_ms" for name in OPTIMIZATION_SOLVERS],
    )
    for alpha in alphas:
        instance = _normalized(
            instance_for(dataset, num_events=num_events, alpha=alpha, seed=seed)
        )
        row = {"alpha": alpha}
        for name, solver in OPTIMIZATION_SOLVERS.items():
            measured = time_call(
                lambda s=solver: s(instance, seed), repeats=repeats
            )
            row[f"{name}_ms"] = measured.median * 1e3
        table.add_row(**row)
    table.notes.append(
        "expected: se's pruning strengthens as alpha grows (valid regions "
        "shrink); all fastest everywhere"
    )
    return table


def run_fig12_per_round(
    num_events: int = 32, alpha: float = 0.5, seed: int = 0
) -> Table:
    """Figure 12(c): per-round running time of each variant.

    Round 0 is initialization (heaviest for se/gt/all); per-round cost is
    roughly flat for b/se/is and decaying for gt (only unhappy players
    are examined).
    """
    dataset = gowalla_dataset(seed=seed)
    instance = _normalized(
        instance_for(dataset, num_events=num_events, alpha=alpha, seed=seed)
    )
    results = {
        name: solver(instance, seed)
        for name, solver in OPTIMIZATION_SOLVERS.items()
    }
    max_rounds = max(len(r.rounds) for r in results.values())
    table = Table(
        title=f"Figure 12(c): per-round time (k={num_events}, alpha={alpha})",
        columns=["round"] + [f"{name}_ms" for name in results],
    )
    for round_index in range(max_rounds):
        row = {"round": round_index}
        for name, result in results.items():
            if round_index < len(result.rounds):
                row[f"{name}_ms"] = result.rounds[round_index].seconds * 1e3
        table.add_row(**row)
    table.notes.append(
        "round 0 = initialization; gt/all rounds shrink toward convergence"
    )
    return table
