"""Figures 13 and 14: the decentralized game versus fetch-and-execute.

Figure 13: total time versus k, with FaE split into (query-independent)
transfer and execution; DG avoids the bulk transfer and parallelizes the
expensive initialization, so it wins overall while both grow ~linearly in
k.  Figure 14: DG's per-round processing time and bytes transferred at
k = 256 — a round-0 peak followed by decay as fewer users deviate.

Both run on the Foursquare-like dataset over two slaves plus a master,
matching the paper's three-server testbed (simulated; see
:mod:`repro.distributed.network`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.harness import Table, full_scale
from repro.bench.workloads import foursquare_dataset
from repro.datasets.registry import with_event_count
from repro.distributed.cluster import build_cluster
from repro.distributed.fae import run_fae
from repro.distributed.network import SimulatedNetwork
from repro.distributed.query import DGQuery

FIG13_EVENT_COUNTS = [16, 64, 256, 1024]


def run_fig13(
    event_counts: Optional[List[int]] = None,
    num_slaves: int = 2,
    seed: int = 0,
) -> Table:
    """Figure 13: DG vs FaE total seconds as a function of k."""
    event_counts = event_counts or (
        FIG13_EVENT_COUNTS if full_scale() else [16, 64, 256]
    )
    dataset = foursquare_dataset(seed=seed)
    cluster = build_cluster(dataset, num_slaves=num_slaves)
    shards = cluster.shards
    table = Table(
        title=f"Figure 13: DG vs FaE vs k ({num_slaves} slaves)",
        columns=[
            "k",
            "fae_transfer_s",
            "fae_execution_s",
            "fae_total_s",
            "dg_total_s",
            "dg_rounds",
            "dg_bytes",
        ],
    )
    for k in event_counts:
        sliced = with_event_count(dataset, k, seed=seed)
        query = DGQuery(events=sliced.events, alpha=0.5, seed=seed)
        fae = run_fae(
            dataset.graph,
            dataset.checkins,
            shards,
            query,
            network=SimulatedNetwork(),
            seed=seed,
        )
        dg_cluster = build_cluster(
            dataset, num_slaves=num_slaves, shards=shards,
            use_distributed_coloring=False,
        )
        dg = dg_cluster.game.run(query)
        table.add_row(
            k=k,
            fae_transfer_s=fae.transfer_seconds,
            fae_execution_s=fae.execution_seconds,
            fae_total_s=fae.total_seconds,
            dg_total_s=dg.total_seconds,
            dg_rounds=dg.num_rounds,
            dg_bytes=dg.total_bytes,
        )
    table.notes.append(
        "expected: FaE transfer is k-independent and dominates at small k; "
        "DG avoids it; both grow ~linearly in k via initialization"
    )
    return table


def run_fig14(
    num_events: int = 256, num_slaves: int = 2, seed: int = 0
) -> Table:
    """Figure 14: DG per-round processing time and data transferred."""
    dataset = foursquare_dataset(seed=seed)
    sliced = with_event_count(dataset, num_events, seed=seed)
    cluster = build_cluster(dataset, num_slaves=num_slaves,
                            use_distributed_coloring=False)
    query = DGQuery(events=sliced.events, alpha=0.5, seed=seed)
    result = cluster.game.run(query)
    table = Table(
        title=f"Figure 14: DG per-round cost (k={num_events})",
        columns=[
            "round",
            "deviations",
            "compute_ms",
            "transfer_ms",
            "total_ms",
            "bytes",
        ],
    )
    for stats in result.rounds:
        table.add_row(
            round=stats.round_index,
            deviations=stats.deviations,
            compute_ms=stats.compute_seconds * 1e3,
            transfer_ms=stats.transfer_seconds * 1e3,
            total_ms=stats.total_seconds * 1e3,
            bytes=stats.bytes_sent,
        )
    table.notes.append(
        "expected: round 0 peak (init + full GSV broadcast), then both "
        "time and bytes decay as deviations diminish"
    )
    return table
