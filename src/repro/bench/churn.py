"""Churn workload: sustained mutation throughput, incremental vs cold.

The streaming claim of ISSUE 6, measured: feed a seeded random mutation
stream through a live :class:`~repro.core.incremental.IncrementalRMGP`
(one :class:`~repro.streaming.feed.MutationFeed` batch per resolve) and,
for every batch, also re-solve the pure-mutated instance from scratch.
Three series come out:

* **Throughput** — sustained mutations/sec for each path (the
  incremental path amortizes warm starts + dirty frontiers; the cold
  path pays a full solve per batch).
* **Movement** — SPAR-style per-batch ``vertices_moved`` and cumulative
  migration cost (the shard-churn the paper's setting cares about).
* **Quality drift** — ``incremental_cost / scratch_cost`` per batch:
  both sides are Nash equilibria, the ratio tracks how far warm-started
  basins drift from cold-started ones over a long stream.

``run_churn`` returns a :class:`ChurnRun` whose ``results`` dict is
shaped for the bench-history store (``benchmarks/bench_churn.py``
appends it to ``benchmarks/history/churn.jsonl``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api import partition
from repro.bench.harness import Table
from repro.bench.workloads import instance_for, small_uml_dataset
from repro.core.incremental import IncrementalRMGP
from repro.streaming.feed import MutationFeed
from repro.streaming.mutations import apply_mutations, random_mutation_stream


@dataclass
class ChurnRun:
    """Outcome of one churn workload: printable table + history record."""

    table: Table
    #: ``key -> measured numbers`` in bench-history shape (every entry
    #: carries ``wall_ms`` so the store derives normalized ratios).
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.table.render()


def churn_instance(num_users: int = 60, num_events: int = 6, seed: int = 0,
                   alpha: float = 0.5):
    """The workload instance: a UML-style geo-social slice."""
    dataset = small_uml_dataset(
        num_users=num_users, num_events=num_events, seed=seed
    )
    return instance_for(dataset, alpha=alpha)


def run_churn(
    num_users: int = 60,
    num_events: int = 6,
    num_batches: int = 8,
    batch_size: int = 10,
    seed: int = 0,
    alpha: float = 0.5,
    scratch_solver: str = "gt",
    movement_penalty: Optional[float] = None,
) -> ChurnRun:
    """Run the churn workload and measure both paths per batch."""
    base = churn_instance(num_users, num_events, seed=seed, alpha=alpha)
    stream = random_mutation_stream(
        base, num_batches * batch_size, seed=seed
    )
    batches = [
        stream[i * batch_size : (i + 1) * batch_size]
        for i in range(num_batches)
    ]

    # The engine churns its instance's graph in place — give it a
    # private clone so `base` stays the pristine replay root.
    engine = IncrementalRMGP(apply_mutations(base, []), seed=seed)
    feed = MutationFeed(engine)
    # The cold path maintains its own rolling instance: each timed lap
    # pays for applying the batch *and* the full re-solve — the same
    # end-to-end work the incremental lap is charged for.
    rolling = base

    table = Table(
        title=(
            f"churn: {num_batches}x{batch_size} mutations, "
            f"n0={base.n}, incremental vs {scratch_solver} from scratch"
        ),
        columns=[
            "batch", "n", "inc_ms", "scratch_ms", "inc_mut_per_s",
            "scratch_mut_per_s", "moved", "migration_cost", "drift",
        ],
    )
    results: Dict[str, Dict[str, Any]] = {}
    inc_total = 0.0
    scratch_total = 0.0
    moved_series: List[int] = []

    for index, batch in enumerate(batches):
        start = time.perf_counter()
        _, stats = feed.apply(batch, movement_penalty=movement_penalty)
        inc_seconds = time.perf_counter() - start

        start = time.perf_counter()
        rolling = apply_mutations(rolling, batch)
        scratch = partition(rolling, solver=scratch_solver, seed=seed)
        scratch_seconds = time.perf_counter() - start

        drift = (
            stats.cost_total / scratch.value.total
            if scratch.value.total > 0 else 1.0
        )
        inc_total += inc_seconds
        scratch_total += scratch_seconds
        moved_series.append(stats.vertices_moved)
        table.add_row(
            batch=index,
            n=stats.n,
            inc_ms=inc_seconds * 1e3,
            scratch_ms=scratch_seconds * 1e3,
            inc_mut_per_s=(
                len(batch) / inc_seconds if inc_seconds > 0 else float("inf")
            ),
            scratch_mut_per_s=(
                len(batch) / scratch_seconds
                if scratch_seconds > 0 else float("inf")
            ),
            moved=stats.vertices_moved,
            migration_cost=stats.migration_cost,
            drift=drift,
        )
        results[f"churn/batch{index}"] = {
            "wall_ms": inc_seconds * 1e3,
            "scratch_ms": scratch_seconds * 1e3,
            "vertices_moved": stats.vertices_moved,
            "migration_cost": stats.migration_cost,
            "drift": drift,
            "n": stats.n,
        }

    total_mutations = sum(len(batch) for batch in batches)
    results["churn/summary"] = {
        "wall_ms": inc_total * 1e3,
        "scratch_ms": scratch_total * 1e3,
        "mutations_per_sec_incremental": (
            total_mutations / inc_total if inc_total > 0 else float("inf")
        ),
        "mutations_per_sec_scratch": (
            total_mutations / scratch_total
            if scratch_total > 0 else float("inf")
        ),
        "moved_per_batch": moved_series,
        "moved_total": engine.moved_total,
        "migration_cost_total": engine.migration_cost_total,
    }
    summary = results["churn/summary"]
    table.notes.append(
        f"sustained: {summary['mutations_per_sec_incremental']:.0f} "
        f"mut/s incremental vs "
        f"{summary['mutations_per_sec_scratch']:.0f} mut/s from scratch"
    )
    table.notes.append(
        f"movement: {engine.moved_total} vertices total, cumulative "
        f"migration cost {engine.migration_cost_total:.2f}"
    )
    return ChurnRun(table=table, results=results)
