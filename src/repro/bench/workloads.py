"""Workload builders shared by the figure benchmarks.

Each figure of Section 6 runs over a specific dataset slice; these
helpers build them once (cached through the dataset registry) at either
quick (default) or paper scale (``REPRO_BENCH_FULL=1``).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.bench.harness import full_scale
from repro.core.instance import RMGPInstance
from repro.datasets.base import GeoSocialDataset
from repro.datasets.registry import load_dataset, with_event_count
from repro.graph.sampling import forest_fire_sample


def gowalla_dataset(num_events: int = 128, seed: int = 0) -> GeoSocialDataset:
    """The Gowalla-like dataset at benchmark scale.

    Quick mode uses 2,500 users; full mode the paper's 12,748.
    """
    num_users = 12_748 if full_scale() else 2_500
    return load_dataset(
        "gowalla", num_users=num_users, num_events=num_events, seed=seed
    )


def foursquare_dataset(num_events: int = 1024, seed: int = 0) -> GeoSocialDataset:
    """The Foursquare-like dataset at benchmark scale.

    Quick mode uses 3,000 users; full mode 30,000 (the largest size that
    keeps the full decentralized sweep in single-digit minutes in pure
    Python; the paper's 2.15M-user snapshot parameters are documented in
    :mod:`repro.datasets.foursquare`).
    """
    num_users = 30_000 if full_scale() else 3_000
    return load_dataset(
        "foursquare", num_users=num_users, num_events=num_events, seed=seed
    )


def small_uml_dataset(
    num_users: int, num_events: int, seed: int = 0
) -> GeoSocialDataset:
    """Forest-Fire-downsized Gowalla slice for the UML comparisons.

    Mirrors Section 6.1: "Since UML methods aim at small datasets, we
    reduce the size of Gowalla through Forest Fire."
    """
    base = gowalla_dataset(num_events=128, seed=seed)
    rng = random.Random(seed)
    sampled = forest_fire_sample(base.graph, num_users, rng=rng)
    dataset = GeoSocialDataset(
        name=f"gowalla_ff(n={num_users}, seed={seed})",
        graph=sampled,
        checkins={u: base.checkins[u] for u in sampled.nodes()},
        events=base.events,
    )
    return with_event_count(dataset, num_events, seed=seed)


def instance_for(
    dataset: GeoSocialDataset,
    num_events: Optional[int] = None,
    alpha: float = 0.5,
    seed: int = 0,
) -> RMGPInstance:
    """RMGP instance over ``dataset`` with an optional event subset."""
    if num_events is not None:
        dataset = with_event_count(dataset, num_events, seed=seed)
    return RMGPInstance(
        dataset.graph, dataset.event_ids, dataset.cost_matrix(), alpha=alpha
    )


def event_sweep(full: Optional[List[int]] = None, quick: Optional[List[int]] = None) -> List[int]:
    """The k-axis of a figure: paper values or a reduced quick sweep."""
    full = full or [8, 16, 32, 64, 128]
    quick = quick or [8, 16, 32]
    return full if full_scale() else quick
