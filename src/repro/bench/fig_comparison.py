"""Figures 7 and 8: RMGP_b versus MH, UML_lp and UML_gr.

Figure 7 sweeps the class count ``k`` at |V| = 200; Figure 8 sweeps the
node count at k = 7.  Both report (a) execution time and (b) solution
quality (the Equation 1 objective).  Expected shape (paper §6.1):
RMGP_b orders of magnitude faster than both UML methods and slightly
faster than MH; quality UML_lp ≤ RMGP_b << UML_gr, MH.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.metis_hungarian import solve_metis_hungarian
from repro.baselines.uml_greedy import solve_uml_greedy
from repro.baselines.uml_lp import solve_uml_lp
from repro.bench.harness import Table, full_scale, time_call
from repro.bench.workloads import instance_for, small_uml_dataset
from repro.core.baseline import _solve_baseline as solve_baseline
from repro.core.normalization import normalize

#: Paper's Figure 7 x-axis.
FIG7_EVENT_COUNTS = [3, 5, 7, 9]
FIG7_NUM_USERS = 200

#: Paper's Figure 8 x-axis.
FIG8_NODE_COUNTS = [100, 150, 200, 250, 300]
FIG8_NUM_EVENTS = 7

METHODS = ("RMGP_b", "MH", "UML_lp", "UML_gr")


def _solve(method: str, instance, seed: int):
    if method == "RMGP_b":
        # Unoptimized baseline: random init, random order (Section 6.1).
        return solve_baseline(instance, init="random", order="random", seed=seed)
    if method == "MH":
        return solve_metis_hungarian(instance, seed=seed)
    if method == "UML_lp":
        return solve_uml_lp(instance, seed=seed)
    if method == "UML_gr":
        return solve_uml_greedy(instance)
    raise ValueError(method)


def run_fig7(
    event_counts: Optional[List[int]] = None,
    num_users: int = FIG7_NUM_USERS,
    seed: int = 0,
    repeats: int = 1,
) -> Table:
    """Reproduce Figure 7: time (ms) and quality versus ``k``."""
    event_counts = event_counts or (
        FIG7_EVENT_COUNTS if full_scale() else [3, 5, 7]
    )
    table = Table(
        title=f"Figure 7: methods vs k (|V|={num_users}, alpha=0.5)",
        columns=["k"]
        + [f"{m}_ms" for m in METHODS]
        + [f"{m}_cost" for m in METHODS],
    )
    for k in event_counts:
        dataset = small_uml_dataset(num_users, k, seed=seed)
        # Normalize so the social term matters to *all* methods equally;
        # on raw ~100km distances every method degenerates to
        # closest-event and the quality comparison is vacuous.
        instance, _ = normalize(instance_for(dataset, alpha=0.5), "pessimistic")
        row = {"k": k}
        for method in METHODS:
            measured = time_call(
                lambda m=method: _solve(m, instance, seed), repeats=repeats
            )
            row[f"{method}_ms"] = measured.median * 1e3
            row[f"{method}_cost"] = measured.result.value.total
        table.add_row(**row)
    table.notes.append(
        "expected: RMGP_b ~3 orders faster than UML_{lp,gr}; "
        "quality UML_lp <= RMGP_b << UML_gr, MH"
    )
    return table


def run_fig8(
    node_counts: Optional[List[int]] = None,
    num_events: int = FIG8_NUM_EVENTS,
    seed: int = 0,
    repeats: int = 1,
) -> Table:
    """Reproduce Figure 8: time (ms) and quality versus |V|."""
    node_counts = node_counts or (
        FIG8_NODE_COUNTS if full_scale() else [100, 150, 200]
    )
    table = Table(
        title=f"Figure 8: methods vs |V| (k={num_events}, alpha=0.5)",
        columns=["num_nodes"]
        + [f"{m}_ms" for m in METHODS]
        + [f"{m}_cost" for m in METHODS],
    )
    for num_nodes in node_counts:
        dataset = small_uml_dataset(num_nodes, num_events, seed=seed)
        instance, _ = normalize(instance_for(dataset, alpha=0.5), "pessimistic")
        row = {"num_nodes": num_nodes}
        for method in METHODS:
            measured = time_call(
                lambda m=method: _solve(m, instance, seed), repeats=repeats
            )
            row[f"{method}_ms"] = measured.median * 1e3
            row[f"{method}_cost"] = measured.result.value.total
        table.add_row(**row)
    table.notes.append("quality cost grows with |V| (more users to assign)")
    return table
