"""Measurement utilities for the figure-reproduction benchmarks."""

from __future__ import annotations

import os
import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs.recorder import Recorder, active_recorder

#: Environment switch: set REPRO_BENCH_FULL=1 to run paper-scale
#: workloads instead of the quick CI-sized defaults.
FULL_SCALE_ENV = "REPRO_BENCH_FULL"


def full_scale() -> bool:
    """True when paper-scale benchmark workloads were requested."""
    return os.environ.get(FULL_SCALE_ENV, "").strip() in ("1", "true", "yes")


@dataclass
class Measurement:
    """Repeated timing of one callable."""

    label: str
    seconds: List[float]
    result: Any = None

    @property
    def median(self) -> float:
        return statistics.median(self.seconds)

    @property
    def best(self) -> float:
        return min(self.seconds)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.seconds)

    @property
    def stdev(self) -> float:
        """Run-to-run spread (0.0 for a single repetition)."""
        if len(self.seconds) < 2:
            return 0.0
        return statistics.stdev(self.seconds)


def time_call(
    fn: Callable[[], Any],
    repeats: int = 3,
    label: str = "",
    recorder: Optional[Recorder] = None,
) -> Measurement:
    """Call ``fn`` ``repeats`` times, keeping the last return value.

    Each repetition runs inside a ``bench.call`` span on the active (or
    given) recorder, so benchmark traces share the solver trace schema.
    """
    if repeats <= 0:
        raise ConfigurationError("repeats must be positive")
    rec = active_recorder(recorder)
    seconds: List[float] = []
    result = None
    for repetition in range(repeats):
        with rec.span("bench.call", label=label, repetition=repetition) as span:
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
            if span is not None:
                span.attrs["seconds"] = elapsed
        seconds.append(elapsed)
    return Measurement(label=label, seconds=seconds, result=result)


@dataclass
class Table:
    """A paper-style results table: named columns, printable rows."""

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; unknown columns are rejected to catch typos."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ConfigurationError(f"unknown columns: {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ConfigurationError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        """Fixed-width text rendering (the benchmark stdout format)."""
        cells: List[List[str]] = [[str(c) for c in self.columns]]
        for row in self.rows:
            cells.append([_fmt(row.get(c)) for c in self.columns])
        widths = [
            max(len(line[i]) for line in cells) for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        for index, line in enumerate(cells):
            lines.append(
                "  ".join(value.rjust(widths[i]) for i, value in enumerate(line))
            )
            if index == 0:
                lines.append("  ".join("-" * w for w in widths))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def to_csv(self, path: str) -> None:
        """Write the table as CSV (header row + one line per row)."""
        import csv
        import os

        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({c: row.get(c, "") for c in self.columns})


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)
