"""The typed mutation algebra over RMGP instances.

Six mutation kinds cover the churn the paper describes (Section 1):
friendships form/dissolve/re-weight (:class:`AddEdge` /
:class:`RemoveEdge`), users enter/leave the query region
(:class:`AddVertex` / :class:`RemoveVertex`), a check-in changes a
user's assignment costs (:class:`UpdateCostRow`), and the query's
preference parameter drifts (:class:`AlphaDrift`).

Every mutation supports two application paths:

* ``apply_to(engine)`` — patch a live
  :class:`~repro.core.incremental.IncrementalRMGP` in place (table +
  dirty frontier updated incrementally; the engine defers CSR rebuilds
  inside :meth:`~repro.core.incremental.IncrementalRMGP.batch`).  The
  engine never imports this module — mutations are duck-typed — so the
  core package stays free of streaming dependencies.
* :func:`apply_mutations` — the *pure* path: build a fresh
  :class:`~repro.core.instance.RMGPInstance` with the mutations applied,
  leaving the input untouched.  This is the from-scratch side of the
  differential harness and the pre-apply fallback
  ``partition(..., mutations=...)`` uses for solvers without native
  mutation support.

and an inverse: ``mutation.invert(instance)`` returns the mutation that
undoes it, *computed against the pre-application instance* (an inverse
must capture the state the mutation destroys — the old weight, the
departed vertex's cost row and friendships, the previous α).  Because
the CSR layout is canonical (ascending neighbor index, see
:meth:`RMGPInstance._build_adjacency`), ``apply → invert`` round-trips
the flat adjacency arrays byte-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.costs import MatrixCost
from repro.core.instance import RMGPInstance
from repro.errors import ConfigurationError, GraphError
from repro.graph.social_graph import NodeId, SocialGraph


class Mutation:
    """Base class: one atomic change to an RMGP instance."""

    #: node ids whose neighborhoods a feed should seed into the dirty
    #: frontier after applying this mutation (empty for global changes).
    def touched(self) -> Tuple[NodeId, ...]:
        return ()

    def apply_to(self, engine) -> None:
        """Patch a live :class:`IncrementalRMGP` in place."""
        raise NotImplementedError

    def _apply_state(self, state: "_MutationState") -> None:
        """Apply to the pure rolling state (:func:`apply_mutations`)."""
        raise NotImplementedError

    def invert(self, instance: RMGPInstance) -> "Mutation":
        """The undo mutation, computed against the *pre-apply* instance."""
        raise NotImplementedError


class _MutationState:
    """Mutable scratch the pure path applies mutations to.

    Holds exactly what an :class:`RMGPInstance` freezes: the graph, the
    node order, per-node cost rows, and α.  :meth:`freeze` re-freezes it
    — rebuilding the graph in ``node_ids`` insertion order so the
    resulting CSR layout is deterministic.
    """

    def __init__(
        self,
        graph: SocialGraph,
        node_ids: List[NodeId],
        rows: Dict[NodeId, np.ndarray],
        classes: Sequence,
        alpha: float,
    ) -> None:
        self.graph = graph
        self.node_ids = node_ids
        self.rows = rows
        self.classes = classes
        self.alpha = alpha

    @classmethod
    def from_instance(cls, instance: RMGPInstance) -> "_MutationState":
        matrix = instance.cost.dense()
        return cls(
            graph=instance.graph.copy(),
            node_ids=list(instance.node_ids),
            rows={
                node: matrix[i].copy()
                for i, node in enumerate(instance.node_ids)
            },
            classes=instance.classes,
            alpha=instance.alpha,
        )

    @property
    def k(self) -> int:
        return len(self.classes)

    def require_node(self, node: NodeId) -> None:
        if node not in self.rows:
            raise ConfigurationError(f"unknown user {node!r}")

    def freeze(self) -> RMGPInstance:
        ordered = SocialGraph(self.node_ids)
        for u, v, w in self.graph.edges():
            ordered.add_edge(u, v, w)
        if self.node_ids:
            matrix = np.vstack([self.rows[node] for node in self.node_ids])
        else:
            matrix = np.empty((0, self.k), dtype=np.float64)
        return RMGPInstance(
            ordered, self.classes, MatrixCost(matrix), alpha=self.alpha
        )


def _as_row(row: Sequence[float], k: int) -> Tuple[float, ...]:
    values = tuple(float(c) for c in row)
    if len(values) != k:
        raise ConfigurationError(f"cost row must have length {k}")
    return values


@dataclass(frozen=True)
class AddEdge(Mutation):
    """A friendship forms — or an existing one changes strength."""

    u: NodeId
    v: NodeId
    weight: float = 1.0

    def touched(self) -> Tuple[NodeId, ...]:
        return (self.u, self.v)

    def apply_to(self, engine) -> None:
        engine.add_edge(self.u, self.v, self.weight)

    def _apply_state(self, state: _MutationState) -> None:
        state.require_node(self.u)
        state.require_node(self.v)
        state.graph.add_edge(self.u, self.v, self.weight)

    def invert(self, instance: RMGPInstance) -> Mutation:
        if instance.graph.has_edge(self.u, self.v):
            return AddEdge(self.u, self.v, instance.graph.weight(self.u, self.v))
        return RemoveEdge(self.u, self.v)


@dataclass(frozen=True)
class RemoveEdge(Mutation):
    """A friendship dissolves."""

    u: NodeId
    v: NodeId

    def touched(self) -> Tuple[NodeId, ...]:
        return (self.u, self.v)

    def apply_to(self, engine) -> None:
        engine.remove_edge(self.u, self.v)

    def _apply_state(self, state: _MutationState) -> None:
        state.graph.remove_edge(self.u, self.v)

    def invert(self, instance: RMGPInstance) -> Mutation:
        return AddEdge(self.u, self.v, instance.graph.weight(self.u, self.v))


@dataclass(frozen=True)
class AddVertex(Mutation):
    """A user enters the query region.

    ``index`` pins the player's position in the node order; ``None``
    appends.  The live-engine path only ever appends (existing player
    indices must stay stable for the table/assignment arrays), so a
    non-``None`` index there must equal ``engine.instance.n`` — the pure
    path honors arbitrary positions, which is what lets
    :meth:`RemoveVertex.invert` restore the original node order exactly.
    """

    node: NodeId
    cost_row: Tuple[float, ...]
    edges: Tuple[Tuple[NodeId, float], ...] = ()
    index: Optional[int] = None

    def touched(self) -> Tuple[NodeId, ...]:
        return (self.node,) + tuple(friend for friend, _ in self.edges)

    def apply_to(self, engine) -> None:
        if self.index is not None and self.index != engine.instance.n:
            raise ConfigurationError(
                f"the live engine appends new players (index "
                f"{engine.instance.n}); cannot insert at {self.index} — "
                "positioned inserts are a pure-path (replay) feature"
            )
        engine.add_vertex(self.node, list(self.cost_row), list(self.edges))

    def _apply_state(self, state: _MutationState) -> None:
        if self.node in state.rows:
            raise ConfigurationError(f"user {self.node!r} already exists")
        row = np.asarray(
            _as_row(self.cost_row, state.k), dtype=np.float64
        )
        if row.size and (row.min() < 0 or not np.isfinite(row).all()):
            raise ConfigurationError("costs must be finite and non-negative")
        for friend, _ in self.edges:
            if friend == self.node:
                raise GraphError(f"self-loop on node {self.node!r}")
            state.require_node(friend)
        state.graph.add_node(self.node)
        for friend, w in self.edges:
            state.graph.add_edge(self.node, friend, w)
        position = len(state.node_ids) if self.index is None else self.index
        if not 0 <= position <= len(state.node_ids):
            raise ConfigurationError(
                f"insert index {position} out of range for "
                f"{len(state.node_ids)} players"
            )
        state.node_ids.insert(position, self.node)
        state.rows[self.node] = row

    def invert(self, instance: RMGPInstance) -> Mutation:
        return RemoveVertex(self.node)


@dataclass(frozen=True)
class RemoveVertex(Mutation):
    """A user leaves the query region; its friendships dissolve with it."""

    node: NodeId

    def touched(self) -> Tuple[NodeId, ...]:
        return (self.node,)

    def apply_to(self, engine) -> None:
        engine.remove_vertex(self.node)

    def _apply_state(self, state: _MutationState) -> None:
        state.require_node(self.node)
        state.graph.remove_node(self.node)
        state.node_ids.remove(self.node)
        del state.rows[self.node]

    def invert(self, instance: RMGPInstance) -> Mutation:
        index = instance.index_of.get(self.node)
        if index is None:
            raise ConfigurationError(f"unknown user {self.node!r}")
        return AddVertex(
            node=self.node,
            cost_row=tuple(float(c) for c in instance.cost.row(index)),
            edges=tuple(
                (friend, float(w))
                for friend, w in instance.graph.neighbors(self.node).items()
            ),
            index=index,
        )


@dataclass(frozen=True)
class UpdateCostRow(Mutation):
    """A user's assignment-cost row changes (e.g. after a check-in)."""

    node: NodeId
    cost_row: Tuple[float, ...]

    def touched(self) -> Tuple[NodeId, ...]:
        return (self.node,)

    def apply_to(self, engine) -> None:
        engine.update_player_costs(self.node, list(self.cost_row))

    def _apply_state(self, state: _MutationState) -> None:
        state.require_node(self.node)
        row = np.asarray(
            _as_row(self.cost_row, state.k), dtype=np.float64
        )
        if row.size and (row.min() < 0 or not np.isfinite(row).all()):
            raise ConfigurationError("costs must be finite and non-negative")
        state.rows[self.node] = row

    def invert(self, instance: RMGPInstance) -> Mutation:
        index = instance.index_of.get(self.node)
        if index is None:
            raise ConfigurationError(f"unknown user {self.node!r}")
        return UpdateCostRow(
            self.node, tuple(float(c) for c in instance.cost.row(index))
        )


@dataclass(frozen=True)
class AlphaDrift(Mutation):
    """The preference parameter α drifts to a new value."""

    alpha: float

    def apply_to(self, engine) -> None:
        engine.set_alpha(self.alpha)

    def _apply_state(self, state: _MutationState) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1), got {self.alpha}"
            )
        state.alpha = float(self.alpha)

    def invert(self, instance: RMGPInstance) -> Mutation:
        return AlphaDrift(instance.alpha)


# ----------------------------------------------------------------------
def apply_mutations(
    instance: RMGPInstance, mutations: Sequence[Mutation]
) -> RMGPInstance:
    """Pure application: a fresh instance with ``mutations`` applied in order.

    The input instance is never touched.  The result's node order is the
    input's with appends/inserts/removals applied, and its CSR layout is
    canonical — so equal (node order, edge set, rows, α) means
    byte-equal flat arrays.
    """
    state = _MutationState.from_instance(instance)
    for mutation in mutations:
        mutation._apply_state(state)
    return state.freeze()


def invert_stream(
    instance: RMGPInstance, mutations: Sequence[Mutation]
) -> Tuple[List[Mutation], RMGPInstance]:
    """Inverses of a whole stream, plus the mutated instance.

    Returns ``(inverses, mutated)`` where ``inverses`` undo
    ``mutations`` when applied *in the returned (already reversed)
    order* to ``mutated``::

        inverses, mutated = invert_stream(instance, stream)
        restored = apply_mutations(mutated, inverses)   # == instance

    Each inverse is computed against the prefix state it will see during
    the undo, which requires replaying the stream once — O(len(stream))
    pure applications.
    """
    inverses: List[Mutation] = []
    current = instance
    for mutation in mutations:
        inverses.append(mutation.invert(current))
        current = apply_mutations(current, [mutation])
    inverses.reverse()
    return inverses, current


# ----------------------------------------------------------------------
#: default mix of mutation kinds for random streams (weights):
#: mostly edge churn + check-ins, occasional vertex churn and α drift —
#: the workload shape Section 1 describes.
DEFAULT_MUTATION_WEIGHTS: Dict[str, float] = {
    "add_edge": 4.0,
    "remove_edge": 3.0,
    "update_costs": 4.0,
    "add_vertex": 1.5,
    "remove_vertex": 1.0,
    "alpha_drift": 0.5,
}

#: random streams never shrink an instance below this many players —
#: churn should stress the dynamics, not degenerate to the empty game.
MIN_STREAM_PLAYERS = 4

#: cost floor for generated rows: strictly positive costs keep the
#: price-of-anarchy bound finite (a zero-cost class makes it vacuous),
#: which the differential harness's cost comparisons rely on.
COST_FLOOR = 0.05


def random_mutation_stream(
    instance: RMGPInstance,
    count: int,
    seed: int = 0,
    weights: Optional[Dict[str, float]] = None,
) -> List[Mutation]:
    """A reproducible, *valid-in-sequence* random mutation stream.

    Each mutation is generated against the rolling post-prefix state, so
    the stream always applies cleanly (no dangling edges, no duplicate
    vertices).  ``seed`` pins the stream exactly; ``weights`` reshapes
    the kind mix (see :data:`DEFAULT_MUTATION_WEIGHTS`).
    """
    rng = random.Random(seed)
    weights = dict(weights or DEFAULT_MUTATION_WEIGHTS)
    kinds = sorted(weights)
    state = _MutationState.from_instance(instance)
    stream: List[Mutation] = []
    fresh = 0
    while len(stream) < count:
        kind = rng.choices(kinds, [weights[k] for k in kinds])[0]
        mutation = _random_mutation(kind, state, rng, fresh)
        if mutation is None:
            continue
        if isinstance(mutation, AddVertex):
            fresh += 1
        mutation._apply_state(state)
        stream.append(mutation)
    return stream


def _random_mutation(
    kind: str, state: _MutationState, rng: random.Random, fresh: int
) -> Optional[Mutation]:
    nodes = state.node_ids
    if kind == "add_edge" and len(nodes) >= 2:
        u, v = rng.sample(nodes, 2)
        return AddEdge(u, v, round(rng.uniform(0.5, 2.5), 3))
    if kind == "remove_edge":
        edges = list(state.graph.edges())
        if not edges:
            return None
        u, v, _ = edges[rng.randrange(len(edges))]
        return RemoveEdge(u, v)
    if kind == "update_costs" and nodes:
        node = nodes[rng.randrange(len(nodes))]
        row = tuple(
            round(rng.uniform(COST_FLOOR, 1.0), 4) for _ in range(state.k)
        )
        return UpdateCostRow(node, row)
    if kind == "add_vertex":
        node = f"churn-{fresh}"
        while node in state.rows:
            fresh += 1
            node = f"churn-{fresh}"
        row = tuple(
            round(rng.uniform(COST_FLOOR, 1.0), 4) for _ in range(state.k)
        )
        degree = min(len(nodes), rng.randint(0, 3))
        friends = rng.sample(nodes, degree) if degree else []
        return AddVertex(
            node,
            row,
            tuple((f, round(rng.uniform(0.5, 2.0), 3)) for f in friends),
        )
    if kind == "remove_vertex" and len(nodes) > MIN_STREAM_PLAYERS:
        return RemoveVertex(nodes[rng.randrange(len(nodes))])
    if kind == "alpha_drift":
        return AlphaDrift(round(rng.uniform(0.2, 0.8), 3))
    return None
