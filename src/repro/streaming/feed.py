"""Mutation feeds: batched churn against a live incremental engine.

:class:`MutationFeed` is the operational layer between a stream of
:class:`~repro.streaming.mutations.Mutation` objects and an
:class:`~repro.core.incremental.IncrementalRMGP`: it applies each batch
inside one :meth:`~repro.core.incremental.IncrementalRMGP.batch` (so the
CSR layout is rebuilt once per batch, not once per mutation), seeds the
dirty frontier from the touched vertices' neighborhoods, resolves, and
keeps SPAR-style movement accounting per batch and cumulatively.

:class:`MutationLog` is the durable record: every applied batch is
appended, so the exact instance the engine has converged on can be
reproduced from the pre-stream instance at any time
(:meth:`MutationLog.replay`) — which is precisely what the differential
harness compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.incremental import IncrementalRMGP
from repro.core.instance import RMGPInstance
from repro.core.result import PartitionResult
from repro.obs.recorder import Recorder, active_recorder
from repro.runtime.budget import RuntimeBudget
from repro.streaming.mutations import Mutation, apply_mutations


@dataclass(frozen=True)
class BatchStats:
    """Per-batch churn accounting (the SPAR metrics of PAPERS.md).

    ``baseline`` maps each post-mutation player to its class label just
    before the resolve — ``vertices_moved`` is exactly the diff between
    it and the post-resolve labels, and the differential harness
    recomputes that diff independently.
    """

    batch_index: int
    size: int
    vertices_moved: int
    migration_cost: float
    moved_total: int
    migration_cost_total: float
    rounds: int
    converged: bool
    cost_total: float
    n: int
    baseline: dict = field(repr=False, default_factory=dict)


class MutationLog:
    """Append-only record of applied mutation batches.

    Indexable (``log[i]`` is batch ``i``), iterable, and replayable:
    :meth:`replay` pure-applies every logged mutation to a base instance,
    reproducing the stream's net effect without an engine.
    """

    def __init__(self) -> None:
        self._batches: List[Tuple[Mutation, ...]] = []

    def append(self, batch: Sequence[Mutation]) -> None:
        self._batches.append(tuple(batch))

    def __len__(self) -> int:
        return len(self._batches)

    def __getitem__(self, index: int) -> Tuple[Mutation, ...]:
        return self._batches[index]

    def __iter__(self) -> Iterator[Tuple[Mutation, ...]]:
        return iter(self._batches)

    @property
    def num_mutations(self) -> int:
        return sum(len(batch) for batch in self._batches)

    def flattened(self) -> List[Mutation]:
        """Every logged mutation, in application order."""
        return [m for batch in self._batches for m in batch]

    def replay(
        self, instance: RMGPInstance, upto: Optional[int] = None
    ) -> RMGPInstance:
        """Pure-apply the first ``upto`` batches (default: all) to
        ``instance`` — the from-scratch reference of the differential
        harness."""
        batches = self._batches if upto is None else self._batches[:upto]
        return apply_mutations(
            instance, [m for batch in batches for m in batch]
        )


class MutationFeed:
    """Drive an incremental engine with batches of mutations.

    Parameters
    ----------
    engine:
        The live engine; construct with ``IncrementalRMGP(instance)`` or
        pass one already warmed by previous work.
    recorder:
        Optional recorder for ``churn.*`` metrics; defaults to the
        engine's recorder / the ambient one.
    """

    def __init__(
        self,
        engine: IncrementalRMGP,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.engine = engine
        self.log = MutationLog()
        self.history: List[BatchStats] = []
        self._recorder = recorder
        if engine.resolve_count == 0:
            # Movement accounting needs an initial placement to diff
            # against (engines built with auto_resolve=False).
            engine.resolve()

    def apply(
        self,
        batch: Sequence[Mutation],
        movement_penalty: Optional[float] = None,
        budget: Optional[RuntimeBudget] = None,
    ) -> Tuple[PartitionResult, BatchStats]:
        """Apply one batch and re-converge.

        The whole batch runs inside one engine ``batch()`` (single CSR
        rebuild); afterwards the dirty frontier is widened to the
        touched vertices' neighborhoods
        (:meth:`IncrementalRMGP.seed_frontier` — the per-mutation table
        patches already guarantee correctness, the widening is the
        conservative ISSUE-6 seeding rule), and one
        :meth:`~repro.core.incremental.IncrementalRMGP.resolve` drains
        it.  Returns the resolve's :class:`PartitionResult` and the
        batch's :class:`BatchStats` (also appended to :attr:`history`).
        """
        batch = tuple(batch)
        engine = self.engine
        rec = active_recorder(
            self._recorder if self._recorder is not None
            else engine._recorder
        )
        touched: List = []
        with engine.batch():
            for mutation in batch:
                mutation.apply_to(engine)
                touched.extend(mutation.touched())
        alive = [
            node for node in dict.fromkeys(touched)
            if node in engine.instance.index_of
        ]
        engine.seed_frontier(alive)
        baseline = engine.instance.assignment_to_labels(engine.assignment)
        result = engine.resolve(
            movement_penalty=movement_penalty, budget=budget
        )
        stats = BatchStats(
            batch_index=len(self.history),
            size=len(batch),
            vertices_moved=int(result.extra.get("vertices_moved", 0)),
            migration_cost=float(result.extra.get("migration_cost", 0.0)),
            moved_total=engine.moved_total,
            migration_cost_total=engine.migration_cost_total,
            rounds=result.num_rounds,
            converged=result.converged,
            cost_total=result.value.total,
            n=engine.instance.n,
            baseline=baseline,
        )
        self.log.append(batch)
        self.history.append(stats)
        rec.count("churn.mutations", len(batch))
        rec.count("churn.batches", 1)
        rec.gauge("churn.batch_size", len(batch))
        rec.gauge("churn.n", engine.instance.n)
        return result, stats
