"""The differential harness: incremental vs. from-scratch under churn.

The headline invariant of ISSUE 6.  For every mutation batch the harness
drives two independent paths to an answer and cross-checks them:

* **Incremental** — a live :class:`~repro.core.incremental.IncrementalRMGP`
  fed through a :class:`~repro.streaming.feed.MutationFeed` (warm-started
  assignment, dirty frontier seeded from touched neighborhoods, in-place
  CSR patching).
* **From-scratch** — the batch prefix is *pure-applied*
  (:func:`~repro.streaming.mutations.apply_mutations`) to the base
  instance and handed to ``repro.partition(..., solver=...)`` cold.

After each batch three properties must hold:

1. **Validity** — the incremental assignment is a pure Nash equilibrium
   of the *pure* mutated instance (note: not merely of the engine's own
   instance — checking against the independently-constructed instance
   also catches any divergence between the engine's in-place patching
   and the mutation algebra's semantics).
2. **Quality** — its Eq. 1 cost is within the pinned
   :data:`DIFFERENTIAL_COST_RATIO` of the from-scratch solve.  Both
   sides are equilibria of the same potential game, so neither is
   optimal — the ratio bounds how far warm-started convergence may
   drift from cold-started convergence, and Theorem 2's
   price-of-anarchy bound caps it in theory (the pinned constant is far
   tighter than PoA on the tested families).
3. **Accounting** — the reported ``vertices_moved`` equals the actual
   assignment diff across the resolve (recomputed here from the
   label-space assignments, so the engine cannot self-certify).

A failed check never raises mid-run: the harness completes the stream
and returns a :class:`DifferentialReport` whose ``failures`` carry exact
per-batch numbers — property-based tests shrink the mutation stream
against ``report.ok``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api import partition
from repro.core.equilibrium import equilibrium_report, price_of_anarchy_bound
from repro.core.incremental import IncrementalRMGP
from repro.core.instance import RMGPInstance
from repro.core.objective import objective
from repro.streaming.feed import MutationFeed
from repro.streaming.mutations import Mutation, apply_mutations

#: Pinned incremental/from-scratch Eq. 1 cost ratio for *curated*
#: deterministic streams (the CI smoke and the per-solver seeded
#: suites).  Both sides reach *some* pure Nash equilibrium; different
#: basins give different costs, and on adversarial random streams the
#: gap can legitimately approach the instance's price-of-anarchy bound
#: (observed up to ~2.7 on 24-player instances whose PoA bound is ~13)
#: — that drift is a *measured quantity* (the churn bench's
#: quality-drift series), not a bug.  Property-based tests therefore
#: pass ``cost_ratio="poa"`` to use Theorem 2's per-instance bound
#: (sound for any stream), while the deterministic streams pin this
#: constant, which holds with ample margin on them; loosen it
#: deliberately, never silently.
DIFFERENTIAL_COST_RATIO = 1.5

#: Equilibrium tolerance for the validity check — matches the engine's
#: deviation tolerance scale, not the certifier's stricter default.
EQUILIBRIUM_ATOL = 1e-9


@dataclass(frozen=True)
class BatchCheck:
    """Cross-checked outcome of one mutation batch."""

    batch_index: int
    size: int
    n: int
    incremental_cost: float
    scratch_cost: float
    cost_ratio: float
    is_equilibrium: bool
    max_regret: float
    vertices_moved: int
    movement_consistent: bool
    failures: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass(frozen=True)
class DifferentialReport:
    """All batch checks of one mutation stream."""

    solver: str
    checks: Tuple[BatchCheck, ...]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[str]:
        return [
            f"batch {check.batch_index}: {message}"
            for check in self.checks
            for message in check.failures
        ]

    def __str__(self) -> str:
        if self.ok:
            worst = max(
                (check.cost_ratio for check in self.checks), default=1.0
            )
            return (
                f"differential ok: {len(self.checks)} batches vs "
                f"{self.solver}, worst cost ratio {worst:.4f}"
            )
        return "; ".join(self.failures)


def differential_check(
    instance: RMGPInstance,
    batches: Sequence[Sequence[Mutation]],
    solver: str = "gt",
    seed: int = 0,
    cost_ratio="poa",
    solver_kwargs: Optional[Dict[str, Any]] = None,
    movement_penalty: Optional[float] = None,
) -> DifferentialReport:
    """Run a mutation stream through both paths and cross-check each batch.

    Parameters
    ----------
    instance:
        The base (pre-stream) instance; never mutated.
    batches:
        The stream, already split into batches (one resolve per batch).
    solver / solver_kwargs / seed:
        The from-scratch reference kernel — any
        :data:`repro.core.registry.SOLVERS` name.
    cost_ratio:
        Maximum allowed ``incremental_cost / scratch_cost``.  The
        default ``"poa"`` bounds each batch by the mutated instance's
        :func:`~repro.core.equilibrium.price_of_anarchy_bound` — the
        sound choice for adversarial randomized streams, where the
        equilibrium-quality gap is theory-bounded but not small.
        Curated deterministic streams pin the much tighter
        :data:`DIFFERENTIAL_COST_RATIO` (or any explicit float).
    movement_penalty:
        Forwarded to the incremental resolve.  A positive penalty trades
        equilibrium quality for fewer moves, so the validity check is
        skipped (the assignment is an equilibrium of the *switching-cost*
        game, not the plain one) while the cost check still applies.
    """
    # The engine mutates its instance's graph in place (and
    # instance.with_cost shares the graph object), so it must run on a
    # private copy — apply_mutations([]) is exactly that deep-enough
    # clone — or the "from-scratch" side would silently re-solve the
    # already-mutated graph and the differential would be vacuous.
    engine = IncrementalRMGP(apply_mutations(instance, []), seed=seed)
    feed = MutationFeed(engine)
    kwargs = dict(solver_kwargs or {})
    checks: List[BatchCheck] = []
    for index, batch in enumerate(batches):
        result, stats = feed.apply(
            batch, movement_penalty=movement_penalty
        )
        failures: List[str] = []

        # The independent reference instance for this prefix.
        mutated = feed.log.replay(instance)
        incremental = engine.instance.assignment_to_labels(engine.assignment)
        inc_assignment = mutated.labels_to_assignment(incremental)

        report = equilibrium_report(
            mutated, inc_assignment, tolerance=EQUILIBRIUM_ATOL
        )
        if movement_penalty is None and not report.is_equilibrium:
            failures.append(
                f"incremental assignment is not an equilibrium of the "
                f"mutated instance (max regret {report.max_regret:.3e}, "
                f"{len(report.unstable_players)} unstable players)"
            )

        inc_cost = objective(mutated, inc_assignment).total
        scratch = partition(mutated, solver=solver, seed=seed, **kwargs)
        scratch_cost = scratch.value.total
        if scratch_cost > 0:
            ratio = inc_cost / scratch_cost
        else:
            ratio = 1.0 if inc_cost <= EQUILIBRIUM_ATOL else float("inf")
        if cost_ratio == "poa":
            # inc <= PoA·OPT and scratch >= OPT, so inc/scratch <= PoA.
            limit = price_of_anarchy_bound(mutated)
        else:
            limit = float(cost_ratio)
        if ratio > limit + EQUILIBRIUM_ATOL:
            failures.append(
                f"cost ratio {ratio:.4f} exceeds pinned {limit:.4f} "
                f"(incremental {inc_cost:.6g} vs {solver} "
                f"{scratch_cost:.6g})"
            )

        # Movement accounting must match an independent label-space diff
        # against the pre-resolve (post-mutation) labels the feed
        # captured — including batch-new vertices that moved off their
        # initial class during the resolve.
        actual_moved = sum(
            1
            for node, label in incremental.items()
            if repr(stats.baseline[node]) != repr(label)
        )
        movement_consistent = actual_moved == stats.vertices_moved
        if not movement_consistent:
            failures.append(
                f"movement accounting reports {stats.vertices_moved} "
                f"moved, label diff says {actual_moved}"
            )

        checks.append(
            BatchCheck(
                batch_index=index,
                size=len(batch),
                n=mutated.n,
                incremental_cost=inc_cost,
                scratch_cost=scratch_cost,
                cost_ratio=ratio,
                is_equilibrium=report.is_equilibrium,
                max_regret=report.max_regret,
                vertices_moved=stats.vertices_moved,
                movement_consistent=movement_consistent,
                failures=tuple(failures),
            )
        )
    return DifferentialReport(solver=solver, checks=tuple(checks))
