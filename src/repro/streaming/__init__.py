"""Graph mutation streams: incremental equilibria under churn.

The paper motivates *real-time* partitioning because social graphs are
never static — queries arrive against a graph mutating under them
(Section 1), and SPAR (PAPERS.md) argues that under churn the metric
that matters next to Eq. 1 cost is how many vertices change shard per
mutation batch.  This package supplies the three layers of that story:

* :mod:`repro.streaming.mutations` — the typed mutation algebra
  (edge/vertex add/remove, cost-row update, α drift), invertible and
  applicable both to a live :class:`~repro.core.incremental.IncrementalRMGP`
  engine and, purely, to an :class:`~repro.core.instance.RMGPInstance`.
* :mod:`repro.streaming.feed` — :class:`MutationFeed` /
  :class:`MutationLog`: batched application with dirty-frontier seeding
  and SPAR-style movement accounting.
* :mod:`repro.streaming.harness` — the differential harness pinning
  incremental-vs-from-scratch equivalence (the CI-gated invariant of
  ISSUE 6).
"""

from repro.streaming.feed import BatchStats, MutationFeed, MutationLog
from repro.streaming.harness import (
    DIFFERENTIAL_COST_RATIO,
    BatchCheck,
    DifferentialReport,
    differential_check,
)
from repro.streaming.mutations import (
    AddEdge,
    AddVertex,
    AlphaDrift,
    Mutation,
    RemoveEdge,
    RemoveVertex,
    UpdateCostRow,
    apply_mutations,
    invert_stream,
    random_mutation_stream,
)

__all__ = [
    "AddEdge",
    "AddVertex",
    "AlphaDrift",
    "BatchCheck",
    "BatchStats",
    "DIFFERENTIAL_COST_RATIO",
    "DifferentialReport",
    "Mutation",
    "MutationFeed",
    "MutationLog",
    "RemoveEdge",
    "RemoveVertex",
    "UpdateCostRow",
    "apply_mutations",
    "differential_check",
    "invert_stream",
    "random_mutation_stream",
]
