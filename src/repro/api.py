"""The unified solve surface: ``repro.partition(instance, solver=...)``.

Every algorithm variant in the reproduction is reachable through one
call::

    import repro
    from repro.api import SolveOptions

    result = repro.partition(instance, solver="gt",
                             options=SolveOptions(seed=7, init="closest"))

``partition`` dispatches through the :data:`repro.core.registry.SOLVERS`
registry, applies the common :class:`SolveOptions` knobs (rejecting any
the chosen variant does not understand), and forwards solver-specific
keyword arguments (``capacities=``, ``threads=``, ``damping=``, ...)
untouched.  The legacy ``solve_*`` functions remain as deprecation shims
that call the same implementations, so both paths produce byte-identical
assignments under a fixed seed.

See ``docs/API.md`` for the full surface, the trace/metric schema and a
migration table from the old signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

import numpy as np

from repro.core.registry import (
    SOLVERS,
    accepted_parameters,
    canonical_solver_name,
)
from repro.core.result import PartitionResult
from repro.errors import ConfigurationError
from repro.obs.recorder import Recorder
from repro.runtime.budget import RuntimeBudget
from repro.runtime.token import CancelToken

if False:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.instance import RMGPInstance


@dataclass(frozen=True)
class SolveOptions:
    """Common solver knobs; ``None`` means "use the variant's default".

    Defaults intentionally stay ``None`` rather than copying any one
    solver's defaults: the variants differ (RMGP_b initializes randomly,
    the optimized variants use ``"closest"``), and ``partition()`` must
    reproduce each legacy entry point exactly.

    Attributes
    ----------
    alpha:
        Override the instance's preference parameter (the instance is
        cloned via :meth:`RMGPInstance.with_alpha`).
    init / order / seed / max_rounds / warm_start:
        Forwarded to the solver when it supports the knob; explicitly
        setting one a variant lacks (e.g. ``order`` for ``"vec"``)
        raises :class:`ConfigurationError` instead of silently ignoring.
    recorder:
        An :class:`repro.obs.Recorder` receiving spans/metrics; leave
        ``None`` for the ambient recorder (a no-op unless inside
        ``obs.recording()``).
    deadline_seconds / round_budget_seconds / cancel_token:
        Real-time knobs.  ``partition`` assembles them into a
        :class:`repro.runtime.RuntimeBudget` handed to the solver, which
        then stops at the first round boundary past the deadline (or
        once the token is cancelled) and returns its best-so-far valid
        assignment with ``converged=False`` and ``stop_reason`` set.
        Mutually exclusive with an explicit ``budget``.
    budget:
        A pre-built :class:`~repro.runtime.RuntimeBudget` (e.g. one on a
        manual :class:`~repro.runtime.SteppingClock` for tests).
    checkpoint_every / checkpoint_path:
        Write a :class:`~repro.runtime.SolveCheckpoint` to
        ``checkpoint_path`` every ``checkpoint_every`` rounds (and once
        more on interrupt).
    resume_from:
        A checkpoint path or :class:`~repro.runtime.SolveCheckpoint` to
        resume from; the solve replays the interrupted trajectory
        byte-identically.
    backend / workers:
        Parallel execution backend (``"pure"``/``"shm"``/``"numba"``)
        and shm worker-pool size for the solvers that support them
        (``is``/``vec``/``gt``/``sync``).  ``workers`` defaults to the
        ``REPRO_WORKERS`` environment variable, then ``os.cpu_count()``;
        ``workers=1`` is a documented serial fallback (the pure path
        runs, ``extra`` records why).  Validated at construction:
        ``workers < 1`` or an unknown backend raises
        :class:`ConfigurationError`.  Assignments are byte-identical to
        the pure path on every backend.
    """

    alpha: Optional[float] = None
    init: Optional[str] = None
    order: Optional[str] = None
    seed: Optional[int] = None
    max_rounds: Optional[int] = None
    warm_start: Optional[np.ndarray] = None
    recorder: Optional[Recorder] = None
    deadline_seconds: Optional[float] = None
    round_budget_seconds: Optional[float] = None
    cancel_token: Optional[CancelToken] = None
    budget: Optional[RuntimeBudget] = None
    checkpoint_every: Optional[int] = None
    checkpoint_path: Optional[str] = None
    resume_from: Optional[Any] = None
    backend: Optional[str] = None
    workers: Optional[int] = None
    exact_scale: Optional[int] = None

    # Assembled into a RuntimeBudget by partition(); never forwarded to
    # the solver as keyword arguments themselves.
    _BUDGET_FIELDS = ("deadline_seconds", "round_budget_seconds", "cancel_token")

    # Fields holding live in-process objects: they cannot ride the wire,
    # a checkpoint, or a JSON config.  to_dict() rejects them when set.
    _RUNTIME_ONLY_FIELDS = ("recorder", "cancel_token", "budget")

    # Wire-safe fields and their JSON types.  bool is excluded from the
    # numeric fields explicitly (it is an int subclass in Python).
    # (No annotation: this is a class constant, not a dataclass field.)
    _WIRE_TYPES = {
        "alpha": (float, int),
        "init": (str,),
        "order": (str,),
        "seed": (int,),
        "max_rounds": (int,),
        "warm_start": (list, tuple),
        "deadline_seconds": (float, int),
        "round_budget_seconds": (float, int),
        "checkpoint_every": (int,),
        "checkpoint_path": (str,),
        "resume_from": (str,),
        "backend": (str,),
        "workers": (int,),
        "exact_scale": (int,),
    }

    def __post_init__(self) -> None:
        # Validate the parallel knobs eagerly — a typo'd backend or a
        # nonsensical worker count should fail at construction, not deep
        # inside a solve after the instance was built.  resolve_backend
        # is the single source of truth for both rules.
        if self.backend is not None or self.workers is not None:
            from repro.parallel.backend import resolve_backend

            resolve_backend(self.backend, self.workers)
        if self.exact_scale is not None and (
            isinstance(self.exact_scale, bool)
            or not isinstance(self.exact_scale, int)
            or self.exact_scale < 1
        ):
            raise ConfigurationError(
                f"exact_scale must be a positive integer; got "
                f"{self.exact_scale!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-ready form of the explicitly-set wire fields.

        The same schema everywhere: ``from_dict(to_dict(o))`` rebuilds
        an equal options object for library callers, CLI ``--json``
        payloads, checkpoints and the ``POST /v1/solve`` wire body.
        Fields holding live objects (``recorder``, ``cancel_token``,
        ``budget``) and non-path ``resume_from`` values cannot be
        serialized — setting one raises :class:`ConfigurationError`
        naming the field.
        """
        import os

        payload: Dict[str, Any] = {}
        for name in self._RUNTIME_ONLY_FIELDS:
            if getattr(self, name) is not None:
                raise ConfigurationError(
                    f"options.{name}: holds a live in-process object and "
                    "cannot be serialized; pass it only to in-process "
                    "partition() calls"
                )
        for field in fields(self):
            value = getattr(self, field.name)
            if value is None or field.name in self._RUNTIME_ONLY_FIELDS:
                continue
            if field.name == "warm_start":
                payload["warm_start"] = [
                    int(x) for x in np.asarray(value).tolist()
                ]
            elif field.name == "resume_from":
                if not isinstance(value, (str, os.PathLike)):
                    raise ConfigurationError(
                        "options.resume_from: only checkpoint *paths* are "
                        f"serializable; got {type(value).__name__}"
                    )
                payload["resume_from"] = os.fspath(value)
            elif field.name in ("alpha", "deadline_seconds",
                                "round_budget_seconds"):
                payload[field.name] = float(value)
            else:
                payload[field.name] = value
        return payload

    @classmethod
    def from_dict(
        cls, payload: Any, field_prefix: str = "options"
    ) -> "SolveOptions":
        """Rebuild :class:`SolveOptions` from :meth:`to_dict` output.

        Strict by design — the wire must not silently drop a typo'd
        knob: unknown keys and ill-typed values raise
        :class:`ConfigurationError` with the offending field path
        (``field_prefix`` lets callers report e.g.
        ``request.options.seed``).
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"{field_prefix}: expected an object/dict, got "
                f"{type(payload).__name__}"
            )
        kwargs: Dict[str, Any] = {}
        for key, value in payload.items():
            path = f"{field_prefix}.{key}"
            expected = cls._WIRE_TYPES.get(key)
            if expected is None:
                known = ", ".join(sorted(cls._WIRE_TYPES))
                raise ConfigurationError(
                    f"{path}: unknown field (expected one of: {known})"
                )
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, expected):
                names = "/".join(
                    t.__name__ for t in expected if t is not tuple
                )
                raise ConfigurationError(
                    f"{path}: expected {names}, got "
                    f"{type(value).__name__} ({value!r})"
                )
            if key == "warm_start":
                if not all(
                    isinstance(x, int) and not isinstance(x, bool)
                    for x in value
                ):
                    raise ConfigurationError(
                        f"{path}: expected a list of integers"
                    )
                kwargs["warm_start"] = np.asarray(value, dtype=np.int64)
            elif key in ("alpha", "deadline_seconds", "round_budget_seconds"):
                kwargs[key] = float(value)
            else:
                kwargs[key] = value
        try:
            return cls(**kwargs)
        except ConfigurationError as exc:
            raise ConfigurationError(f"{field_prefix}: {exc}") from exc

    def solver_kwargs(self) -> Dict[str, Any]:
        """The explicitly-set per-solver knobs (everything but alpha)."""
        set_values = {}
        for field in fields(self):
            if field.name == "alpha" or field.name in self._BUDGET_FIELDS:
                continue
            value = getattr(self, field.name)
            if value is not None:
                set_values[field.name] = value
        return set_values


def _validate_warm_start(warm_start: Any, instance: "RMGPInstance") -> np.ndarray:
    """Check a warm start is a usable assignment before dispatch.

    The kernels index arrays with the warm start unchecked, so a bad one
    would surface as an obscure ``IndexError`` (or worse, silently wrap
    with negative classes) deep inside a solver.
    """
    arr = np.asarray(warm_start)
    if arr.shape != (instance.n,):
        raise ConfigurationError(
            f"warm_start must have shape ({instance.n},) to cover every "
            f"player; got {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        raise ConfigurationError(
            f"warm_start must be an integer class assignment; got dtype "
            f"{arr.dtype}"
        )
    if arr.size and (arr.min() < 0 or arr.max() >= instance.k):
        raise ConfigurationError(
            f"warm_start classes must lie in [0, {instance.k}); got values "
            f"in [{int(arr.min())}, {int(arr.max())}]"
        )
    return arr


def _assemble_budget(
    options: SolveOptions, solver_kwargs: Dict[str, Any]
) -> Optional[RuntimeBudget]:
    """Merge the scalar real-time knobs into one RuntimeBudget (or None)."""
    scalars: Dict[str, Any] = {}
    for name in SolveOptions._BUDGET_FIELDS:
        from_options = getattr(options, name)
        from_kwargs = solver_kwargs.pop(name, None)
        if from_options is not None and from_kwargs is not None:
            raise ConfigurationError(
                f"[{name!r}] given both in options and as keyword arguments"
            )
        value = from_kwargs if from_kwargs is not None else from_options
        if value is not None:
            scalars[name] = value
    if not scalars:
        return None
    explicit = options.budget if options.budget is not None else (
        solver_kwargs.get("budget")
    )
    if explicit is not None:
        raise ConfigurationError(
            "pass either an explicit budget or the scalar knobs "
            f"({sorted(scalars)}), not both"
        )
    return RuntimeBudget(
        deadline_seconds=scalars.get("deadline_seconds"),
        round_budget_seconds=scalars.get("round_budget_seconds"),
        token=scalars.get("cancel_token"),
    )


def partition(
    instance: "RMGPInstance",
    solver: str = "gt",
    options: Optional[SolveOptions] = None,
    **solver_kwargs: Any,
) -> PartitionResult:
    """Partition ``instance`` with the chosen algorithm variant.

    Parameters
    ----------
    instance:
        The :class:`~repro.core.instance.RMGPInstance` to solve.
    solver:
        A registry name — short (``"b"``, ``"se"``, ``"is"``, ``"gt"``,
        ``"vec"``, ``"mg"``, ``"sync"``, ``"cap"``, ``"minpart"``) or
        long (``"baseline"``, ``"strategy_elimination"``, ...); see
        :data:`repro.core.registry.SOLVERS`.
    options:
        Shared knobs (:class:`SolveOptions`), or a plain dict in the
        :meth:`SolveOptions.to_dict` wire schema (validated by
        :meth:`SolveOptions.from_dict`).  Unset fields fall back to the
        variant's own defaults.
    solver_kwargs:
        Variant-specific arguments forwarded verbatim (``capacities=``,
        ``min_participants=``, ``threads=``, ``coloring=``, ``plan=``,
        ``damping=``, ``track_potential=``, ...).  ``mutations=`` (a
        sequence from :mod:`repro.streaming.mutations`) is understood
        for *every* solver: the incremental solver (``"inc"``) replays
        them live against its warm engine, any other variant solves the
        pure-mutated instance from scratch — both compose with
        ``resume_from`` and the deadline/cancel knobs.

    Returns
    -------
    PartitionResult
        The shared result type — identical field semantics for every
        variant (see :class:`repro.core.result.PartitionResult`).
    """
    if solver not in SOLVERS:
        raise ConfigurationError(
            f"unknown solver {solver!r}; expected one of {sorted(SOLVERS)}"
        )
    impl = SOLVERS[solver]
    if options is None:
        options = SolveOptions()
    elif isinstance(options, dict):
        # The wire/config form: one schema for library callers, the CLI
        # and the HTTP server (see SolveOptions.from_dict).
        options = SolveOptions.from_dict(options)
    if options.alpha is not None and options.alpha != instance.alpha:
        instance = instance.with_alpha(options.alpha)

    budget = _assemble_budget(options, solver_kwargs)

    accepted = accepted_parameters(impl)
    mutations = solver_kwargs.pop("mutations", None)
    if mutations is not None and "mutations" not in accepted:
        # Non-incremental variants solve the pure-mutated instance from
        # scratch; lazy import keeps core/api free of streaming unless
        # the knob is actually used.
        from repro.streaming.mutations import apply_mutations

        instance = apply_mutations(instance, mutations)
        mutations = None
    if mutations is not None:
        solver_kwargs["mutations"] = mutations
    kwargs: Dict[str, Any] = {}
    for name, value in options.solver_kwargs().items():
        if name not in accepted:
            raise ConfigurationError(
                f"solver {canonical_solver_name(solver)!r} does not accept "
                f"option {name!r}"
            )
        kwargs[name] = value
    conflicts = kwargs.keys() & solver_kwargs.keys()
    if conflicts:
        raise ConfigurationError(
            f"{sorted(conflicts)} given both in options and as keyword "
            "arguments"
        )
    unknown = set(solver_kwargs) - accepted
    if unknown:
        raise ConfigurationError(
            f"solver {canonical_solver_name(solver)!r} does not accept "
            f"{sorted(unknown)}"
        )
    kwargs.update(solver_kwargs)
    if budget is not None:
        if "budget" not in accepted:
            raise ConfigurationError(
                f"solver {canonical_solver_name(solver)!r} does not support "
                "real-time budgets"
            )
        kwargs["budget"] = budget
    if kwargs.get("warm_start") is not None:
        kwargs["warm_start"] = _validate_warm_start(
            kwargs["warm_start"], instance
        )
    return impl(instance, **kwargs)
