"""The unified solve surface: ``repro.partition(instance, solver=...)``.

Every algorithm variant in the reproduction is reachable through one
call::

    import repro
    from repro.api import SolveOptions

    result = repro.partition(instance, solver="gt",
                             options=SolveOptions(seed=7, init="closest"))

``partition`` dispatches through the :data:`repro.core.registry.SOLVERS`
registry, applies the common :class:`SolveOptions` knobs (rejecting any
the chosen variant does not understand), and forwards solver-specific
keyword arguments (``capacities=``, ``threads=``, ``damping=``, ...)
untouched.  The legacy ``solve_*`` functions remain as deprecation shims
that call the same implementations, so both paths produce byte-identical
assignments under a fixed seed.

See ``docs/API.md`` for the full surface, the trace/metric schema and a
migration table from the old signatures.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

import numpy as np

from repro.core.registry import SOLVERS, canonical_solver_name
from repro.core.result import PartitionResult
from repro.errors import ConfigurationError
from repro.obs.recorder import Recorder

if False:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.instance import RMGPInstance


@dataclass(frozen=True)
class SolveOptions:
    """Common solver knobs; ``None`` means "use the variant's default".

    Defaults intentionally stay ``None`` rather than copying any one
    solver's defaults: the variants differ (RMGP_b initializes randomly,
    the optimized variants use ``"closest"``), and ``partition()`` must
    reproduce each legacy entry point exactly.

    Attributes
    ----------
    alpha:
        Override the instance's preference parameter (the instance is
        cloned via :meth:`RMGPInstance.with_alpha`).
    init / order / seed / max_rounds / warm_start:
        Forwarded to the solver when it supports the knob; explicitly
        setting one a variant lacks (e.g. ``order`` for ``"vec"``)
        raises :class:`ConfigurationError` instead of silently ignoring.
    recorder:
        An :class:`repro.obs.Recorder` receiving spans/metrics; leave
        ``None`` for the ambient recorder (a no-op unless inside
        ``obs.recording()``).
    """

    alpha: Optional[float] = None
    init: Optional[str] = None
    order: Optional[str] = None
    seed: Optional[int] = None
    max_rounds: Optional[int] = None
    warm_start: Optional[np.ndarray] = None
    recorder: Optional[Recorder] = None

    def solver_kwargs(self) -> Dict[str, Any]:
        """The explicitly-set per-solver knobs (everything but alpha)."""
        set_values = {}
        for field in fields(self):
            if field.name == "alpha":
                continue
            value = getattr(self, field.name)
            if value is not None:
                set_values[field.name] = value
        return set_values


_SIGNATURES: Dict[Any, frozenset] = {}


def _accepted_parameters(impl) -> frozenset:
    accepted = _SIGNATURES.get(impl)
    if accepted is None:
        accepted = frozenset(inspect.signature(impl).parameters)
        _SIGNATURES[impl] = accepted
    return accepted


def partition(
    instance: "RMGPInstance",
    solver: str = "gt",
    options: Optional[SolveOptions] = None,
    **solver_kwargs: Any,
) -> PartitionResult:
    """Partition ``instance`` with the chosen algorithm variant.

    Parameters
    ----------
    instance:
        The :class:`~repro.core.instance.RMGPInstance` to solve.
    solver:
        A registry name — short (``"b"``, ``"se"``, ``"is"``, ``"gt"``,
        ``"vec"``, ``"mg"``, ``"sync"``, ``"cap"``, ``"minpart"``) or
        long (``"baseline"``, ``"strategy_elimination"``, ...); see
        :data:`repro.core.registry.SOLVERS`.
    options:
        Shared knobs (:class:`SolveOptions`).  Unset fields fall back to
        the variant's own defaults.
    solver_kwargs:
        Variant-specific arguments forwarded verbatim (``capacities=``,
        ``min_participants=``, ``threads=``, ``coloring=``, ``plan=``,
        ``damping=``, ``track_potential=``, ...).

    Returns
    -------
    PartitionResult
        The shared result type — identical field semantics for every
        variant (see :class:`repro.core.result.PartitionResult`).
    """
    if solver not in SOLVERS:
        raise ConfigurationError(
            f"unknown solver {solver!r}; expected one of {sorted(SOLVERS)}"
        )
    impl = SOLVERS[solver]
    options = options or SolveOptions()
    if options.alpha is not None and options.alpha != instance.alpha:
        instance = instance.with_alpha(options.alpha)

    accepted = _accepted_parameters(impl)
    kwargs: Dict[str, Any] = {}
    for name, value in options.solver_kwargs().items():
        if name not in accepted:
            raise ConfigurationError(
                f"solver {canonical_solver_name(solver)!r} does not accept "
                f"option {name!r}"
            )
        kwargs[name] = value
    conflicts = kwargs.keys() & solver_kwargs.keys()
    if conflicts:
        raise ConfigurationError(
            f"{sorted(conflicts)} given both in options and as keyword "
            "arguments"
        )
    unknown = set(solver_kwargs) - accepted
    if unknown:
        raise ConfigurationError(
            f"solver {canonical_solver_name(solver)!r} does not accept "
            f"{sorted(unknown)}"
        )
    kwargs.update(solver_kwargs)
    return impl(instance, **kwargs)
